"""Decoupled positional encoding: why truncated KV caches stay usable.

Trains the small NumPy RoPE transformer on the synthetic copy corpora,
then streams held-out documents past the context window under the three
overflow schemes of the paper's Section 4.3.5:

* TT   — token truncation + full recomputation (quality reference),
* CA   — CachedAttention's decoupled-PE KV truncation (no recompute),
* NKVT — naive truncation of position-embedded KV (the failure mode).

Prints the Table-1-style perplexities and a Table-2-style word-recall
accuracy.  First run trains for a couple of minutes and caches the weights
under ``.model_cache``.

Run:  python examples/truncation_quality.py
"""

from dataclasses import replace
from pathlib import Path

from repro.analysis import format_table, percent
from repro.model import (
    COPY_CORPORA,
    ModelConfig,
    Scheme,
    TrainConfig,
    VOCAB_SIZE,
    evaluate_corpus,
    make_copy_corpus,
    make_trained_model,
    run_word_recall_benchmark,
)

CACHE_DIR = Path(__file__).resolve().parent.parent / ".model_cache"


def main() -> None:
    model_config = ModelConfig(
        vocab_size=VOCAB_SIZE, d_model=64, n_layers=2, n_heads=8, d_ff=64,
        context_window=96,
    )
    train_config = TrainConfig(
        steps=3000, batch_size=16, seq_len=96, lr=1e-3, lr_half_life=1500
    )
    print("training (or loading cached) model ...")
    model = make_trained_model(
        "mixed", model_config, train_config, cache_dir=CACHE_DIR, verbose=True
    )
    print(f"model: {model.n_params:,} parameters, window {model_config.context_window}")

    schemes = (Scheme.CA, Scheme.TT, Scheme.NKVT)
    rows = []
    for name, spec in COPY_CORPORA.items():
        docs = make_copy_corpus(replace(spec, doc_sentences=24, seed=99), 10)
        ppl = {s: evaluate_corpus(model, docs, s).perplexity for s in schemes}
        rows.append([name, f"{ppl[Scheme.CA]:.2f}", f"{ppl[Scheme.TT]:.2f}",
                     f"{ppl[Scheme.NKVT]:.1f}"])
    print()
    print(
        format_table(
            ["corpus", "CA", "TT", "NKVT"],
            rows,
            title="Perplexity after context overflow (cf. paper Table 1)",
        )
    )

    print()
    acc = {
        s: run_word_recall_benchmark(model, s, n_cases=15).accuracy
        for s in schemes
    }
    print(
        format_table(
            ["scheme", "word-recall accuracy"],
            [[s.value, percent(acc[s])] for s in schemes],
            title="Word recall after overflow (cf. paper Table 2 / LongEval)",
        )
    )
    print(
        "\nCA matches TT without recomputing a single token; NKVT's"
        "\nposition-scrambled cache loses both fluency and retrieval."
    )


if __name__ == "__main__":
    main()
