"""CachedAttention running on a *real* model — no simulation.

Serves a multi-turn conversation with the trained NumPy transformer twice:
once with CachedAttention (the stored decoupled-PE KV cache is reused, so
each turn prefills only its new tokens) and once with the recomputation
baseline.  The replies are bit-for-bit identical — the paper's correctness
claim for decoupled-positional-encoding reuse — while the cached server
computes a fraction of the tokens.  Context-window overflow is handled by
truncating the stored cache directly, mid-conversation.

Run:  python examples/real_model_chat.py
"""

from pathlib import Path

import numpy as np

from repro.analysis import format_table, percent
from repro.model import (
    ModelConfig,
    TinyChatServer,
    TrainConfig,
    VOCAB_SIZE,
    decode,
    encode,
    make_trained_model,
)

CACHE_DIR = Path(__file__).resolve().parent.parent / ".model_cache"


def main() -> None:
    model_config = ModelConfig(
        vocab_size=VOCAB_SIZE, d_model=64, n_layers=2, n_heads=8, d_ff=64,
        context_window=96,
    )
    train_config = TrainConfig(
        steps=3000, batch_size=16, seq_len=96, lr=1e-3, lr_half_life=1500
    )
    print("training (or loading cached) model ...")
    model = make_trained_model(
        "mixed", model_config, train_config, cache_dir=CACHE_DIR
    )

    # A conversation whose "user messages" introduce made-up words the
    # model can only continue by reading its own context.
    turns = [
        "the word mivon means ",
        "recall mivon and qelta. mivon ",
        "again mivon qelta zuret. qelta ",
        "one more time with zuret mivon. zuret ",
    ]

    cached = TinyChatServer(model, cached=True)
    recompute = TinyChatServer(model, cached=False)

    rows = []
    all_equal = True
    for i, text in enumerate(turns):
        prompt = encode(text)
        a = cached.serve_turn(0, prompt, max_new_tokens=8)
        b = recompute.serve_turn(0, prompt, max_new_tokens=8)
        equal = np.array_equal(a.reply, b.reply)
        all_equal &= equal
        rows.append(
            [
                i + 1,
                repr(decode(a.reply)),
                a.prefilled_tokens,
                b.prefilled_tokens,
                a.reused_tokens,
                "yes" if equal else "NO",
            ]
        )
    print()
    print(
        format_table(
            ["turn", "reply (cached)", "CA prefill", "RE prefill",
             "CA reused", "identical"],
            rows,
            title="CachedAttention vs recomputation on a real model",
        )
    )
    saved = 1 - cached.prefilled_tokens_total / recompute.prefilled_tokens_total
    print(
        f"\nreplies identical: {all_equal}; "
        f"prefill computation saved by caching: {percent(saved)}"
    )

    # Overflow demo: keep talking until the 96-token window overflows —
    # the stored cache is truncated in place and serving continues.
    overflow_server = TinyChatServer(model, context_window=64)
    total_dropped = 0
    for i in range(6):
        result = overflow_server.serve_turn(
            7, encode("more words flow here "), max_new_tokens=4
        )
        total_dropped += result.truncated_tokens
    print(
        f"\noverflow demo: 6 turns against a 64-token window dropped "
        f"{total_dropped} tokens via direct KV-cache truncation; "
        f"cache now holds {overflow_server.stored_cache_tokens} entries "
        "and the session never recomputed its history."
    )


if __name__ == "__main__":
    main()
