"""Provision AttentionStore capacity for a workload (Section 4.3.6).

Computes the paper's provisioning quantities — CCpS, DSpUT, CCpUT — for a
workload and model, then sweeps the provisioned-capacity ratio RCC/CCpUT
to find the knee where the hit rate saturates (the paper finds ~98 % at a
ratio of 0.25 with a 1-hour TTL).

Run:  python examples/capacity_planning.py
"""

from repro.analysis import capacity_plan, format_table, percent
from repro.config import EngineConfig, StoreConfig
from repro.engine import ServingEngine
from repro.models import GiB, get_model
from repro.workload import generate_trace

TTL = 3600.0
RATIOS = (0.05, 0.1, 0.25, 0.5)


def main() -> None:
    model = get_model("llama-13b")
    trace = generate_trace(n_sessions=1200, seed=31)
    plan = capacity_plan(model, trace, ttl_seconds=TTL)
    print(f"model: {model.name} (window {model.context_window}, "
          f"{model.kv_bytes_per_token / 2**20:.2f} MiB KV/token)")
    print(f"CCpS  = {plan.ccps_bytes / GiB:.1f} GiB  (max cache per session)")
    print(f"DSpUT = {plan.dsput:.0f}  (distinct sessions per {TTL:.0f}s TTL)")
    print(f"CCpUT = {plan.ccput_bytes / GiB:,.0f} GiB  (capacity for ~100% hits)")

    rows = []
    for ratio in RATIOS:
        rcc = plan.rcc_bytes(ratio)
        dram = min(128 * GiB, rcc)
        store = StoreConfig(
            dram_bytes=dram,
            ssd_bytes=max(0, rcc - dram),
            ttl_seconds=TTL,
        )
        engine = ServingEngine(
            model,
            engine_config=EngineConfig(batch_size=model.default_batch_size),
            store_config=store,
        )
        summary = engine.run(trace).summary
        rows.append(
            [
                f"{ratio:.2f}",
                f"{rcc / GiB:,.0f}",
                percent(summary.hit_rate),
                f"{summary.mean_ttft:.3f}",
            ]
        )
    print()
    print(
        format_table(
            ["RCC/CCpUT", "capacity (GiB)", "hit rate", "TTFT (s)"],
            rows,
            title="Capacity sweep (cf. paper Figure 23)",
        )
    )
    print("\nThe hit rate saturates well below CCpUT: cached sessions have"
          "\nvery different hotness, so a fraction of the worst-case"
          "\ncapacity already captures nearly all reuse.")


if __name__ == "__main__":
    main()
