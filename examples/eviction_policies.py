"""Compare eviction policies under storage pressure (a mini Figure 21).

Runs the same multi-turn workload with the scheduler-aware policy, LRU and
FIFO under a storage configuration tight enough that eviction decisions
matter, and prints the hit-rate/GPU-time ladder the paper reports.

Run:  python examples/eviction_policies.py
"""

from repro.analysis import format_table, percent
from repro.config import EngineConfig, EvictionPolicyName, StoreConfig
from repro.engine import ServingEngine
from repro.models import GiB, TiB, get_model
from repro.workload import generate_trace


def main() -> None:
    model = get_model("llama-13b")
    trace = generate_trace(n_sessions=800, seed=17)
    print(f"workload: {len(trace)} sessions, {trace.n_turns_total} turns")
    rows = []
    for policy in (
        EvictionPolicyName.SCHEDULER_AWARE,
        EvictionPolicyName.LRU,
        EvictionPolicyName.FIFO,
    ):
        store = StoreConfig(
            dram_bytes=16 * GiB,
            ssd_bytes=int(0.4 * TiB),
            policy=policy,
            # Only the scheduler-aware policy can use queue hints to
            # prefetch; LRU/FIFO are history-only (Section 4.3.3).
            enable_prefetch=policy is EvictionPolicyName.SCHEDULER_AWARE,
        )
        engine = ServingEngine(
            model,
            engine_config=EngineConfig(batch_size=model.default_batch_size),
            store_config=store,
        )
        result = engine.run(trace)
        s = result.summary
        rows.append(
            [
                policy.value,
                percent(s.hit_rate),
                percent(s.dram_hit_rate),
                percent(s.disk_hit_rate),
                f"{s.mean_ttft:.3f}",
                f"{s.gpu_time / 3600:.2f}",
            ]
        )
    print()
    print(
        format_table(
            ["policy", "hit rate", "DRAM hits", "disk hits", "TTFT (s)", "GPU (h)"],
            rows,
            title="Eviction policies under storage pressure (16 GB / 0.4 TB)",
        )
    )
    print(
        "\nThe scheduler-aware policy protects sessions with queued jobs and"
        "\nprefetches them into DRAM, so almost every hit is a DRAM hit;"
        "\nLRU/FIFO leave hits on disk and evict sessions that return soon."
    )


if __name__ == "__main__":
    main()
