"""Quickstart: serve a multi-turn workload with and without CachedAttention.

Generates a small ShareGPT-like trace, runs the recomputation baseline
(RE) and CachedAttention (CA) on a simulated 2xA100 LLaMA-13B deployment,
and prints the headline comparison.

Run:  python examples/quickstart.py
"""

from repro.analysis import cost_saving, format_table, percent, run_cost
from repro.config import EngineConfig, HardwareConfig, StoreConfig
from repro.engine import ServingEngine
from repro.models import get_model
from repro.workload import generate_trace


def main() -> None:
    model = get_model("llama-13b")
    hardware = HardwareConfig().for_model(model)
    store = StoreConfig()  # 128 GB DRAM + 10 TB SSD, scheduler-aware
    trace = generate_trace(n_sessions=500, seed=7)
    print(
        f"workload: {len(trace)} sessions, {trace.n_turns_total} turns, "
        f"{trace.n_tokens_total:,} tokens"
    )

    cached = ServingEngine(
        model,
        hardware=hardware,
        engine_config=EngineConfig(batch_size=model.default_batch_size),
        store_config=store,
    ).run(trace)

    recompute = ServingEngine(
        model,
        hardware=hardware,
        engine_config=EngineConfig.recompute_baseline(
            batch_size=model.default_batch_size
        ),
    ).run(trace)

    ca, re = cached.summary, recompute.summary
    rows = [
        ["cache hit rate", percent(ca.hit_rate), "-"],
        ["mean TTFT (s)", f"{ca.mean_ttft:.3f}", f"{re.mean_ttft:.3f}"],
        [
            "prefill throughput (tok/s)",
            f"{ca.prefill_throughput:,.0f}",
            f"{re.prefill_throughput:,.0f}",
        ],
        ["GPU time (h)", f"{ca.gpu_time / 3600:.2f}", f"{re.gpu_time / 3600:.2f}"],
    ]
    print()
    print(format_table(["metric", "CachedAttention", "recompute"], rows))

    ca_cost = run_cost(cached, hardware, store)
    re_cost = run_cost(recompute, hardware, store)
    print(
        f"\ncost: CA ${ca_cost.total:,.0f} "
        f"(storage {percent(ca_cost.storage_fraction)}) "
        f"vs RE ${re_cost.total:,.0f} "
        f"-> saving {percent(cost_saving(ca_cost, re_cost))}"
    )
    print(
        f"TTFT reduction: {percent(1 - ca.mean_ttft / re.mean_ttft)}, "
        f"prefill speedup: {ca.prefill_throughput / re.prefill_throughput:.1f}x"
    )


if __name__ == "__main__":
    main()
