"""A guided tour of the AttentionStore API.

Walks through the life of conversation sessions' KV caches directly
against the store — no serving engine: saving, tier placement, scheduler-
aware prefetching and eviction, decoupled-PE truncation, the OF-baseline
invalidation, and TTL expiry.

Run:  python examples/attention_store_tour.py
"""

from repro.config import StoreConfig
from repro.models import GiB, get_model
from repro.sim import Channel
from repro.store import AttentionStore, ListQueueView, LookupStatus


def show(store: AttentionStore, label: str) -> None:
    dram = [i.session_id for i in store.dram_tier.iter_fifo()]
    disk = [i.session_id for i in store.disk_tier.iter_fifo()]
    print(f"  {label:<42} DRAM={dram} disk={disk}")


def main() -> None:
    model = get_model("llama-13b")
    # A deliberately tiny hierarchy: DRAM holds ~2 sessions, disk ~8.
    store = AttentionStore(
        StoreConfig(
            dram_bytes=4 * GiB,
            ssd_bytes=16 * GiB,
            dram_buffer_fraction=0.0,
        ),
        kv_bytes_per_token=model.kv_bytes_per_token,
        ssd_channel=Channel("ssd", 4e9),
    )
    tokens = 2000  # ~1.5 GiB of KV per session for LLaMA-13B

    print("1) Saving sessions fills DRAM, then spills to disk (eviction):")
    for sid in range(4):
        store.save(sid, tokens, now=float(sid))
        show(store, f"save(session={sid})")

    print("\n2) Lookups report the tier (loading cost differs 6x):")
    for sid in (3, 0, 99):
        result = store.lookup(sid, now=10.0)
        print(f"  lookup({sid}) -> {result.status.value}")

    print("\n3) Scheduler hints: upcoming jobs are prefetched disk -> DRAM")
    queue = ListQueueView([0, 1])  # sessions 0 and 1 run next
    issued = store.prefetch(queue, now=11.0)
    for sid, ready in issued:
        print(f"  prefetch(session={sid}) ready at t={ready:.2f}s")
        store.complete_fetch(sid)
    show(store, "after prefetch")

    print("\n4) Scheduler-aware eviction protects queued sessions:")
    store.save(7, tokens, now=12.0, queue=queue)
    show(store, "save(session=7) with sessions 0,1 queued")
    assert store.lookup(0, 13.0).status is LookupStatus.HIT_DRAM

    print("\n5) Decoupled-PE truncation keeps caches valid on overflow:")
    before = store.lookup(0, 14.0)
    store.truncate(0, keep_tokens=tokens // 2)
    after = store.lookup(0, 14.5)
    print(f"  session 0: {before.n_tokens} -> {after.n_tokens} tokens, still a hit")

    print("\n6) The OF baseline (embedded positions) loses the cache instead:")
    store.save(8, tokens, now=15.0, position_decoupled=False)
    ok = store.truncate(8, keep_tokens=tokens // 2)
    print(f"  truncate(embedded) -> valid={ok}, "
          f"lookup -> {store.lookup(8, 15.5).status.value}")

    print("\n7) TTL expiry (Section 4.3.6):")
    ttl_store = AttentionStore(
        StoreConfig(dram_bytes=4 * GiB, ssd_bytes=0, ttl_seconds=3600.0),
        kv_bytes_per_token=model.kv_bytes_per_token,
    )
    ttl_store.save(1, tokens, now=0.0)
    print(f"  t=1800s -> {ttl_store.lookup(1, 1800.0).status.value}")
    print(f"  t=7200s -> {ttl_store.lookup(1, 7200.0).status.value}")

    print("\nstats:", store.stats)


if __name__ == "__main__":
    main()
