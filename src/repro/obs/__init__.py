"""Observability for the CachedAttention simulator.

Three independent instruments, all zero-overhead when not attached:

* :mod:`repro.obs.spans` — a span tracer on the *simulated* clock.  The
  engine, store, channels and cluster emit nested spans for the turn
  lifecycle (queue wait, layer-wise preload, prefill compute, decode,
  async-save blocking, eviction spills, prefetches, migrations);
  :mod:`repro.obs.trace_export` renders them as Chrome-trace JSON that
  loads directly in Perfetto (``python -m repro.cli trace``).
* :mod:`repro.obs.registry` / :mod:`repro.obs.probes` — a metrics
  registry (counters, gauges, log-histograms) with per-tier store
  occupancy, channel utilisation and hit/miss/fallback rates, exported
  as stable-schema JSON or CSV.
* :mod:`repro.obs.profile` — host-side wall-clock sampling of the event
  loop (events/s, per-event-type cost) behind ``--profile``.

Attaching any instrument never changes simulation results: spans and
metrics are pure observations of state the simulator computes anyway, so
traced and untraced runs are bit-identical (guarded by a property test).
"""

from .profile import EventLoopProfiler, ProfileReport
from .registry import MetricsRegistry
from .probes import (
    collect_cluster_metrics,
    collect_engine_metrics,
    ingest_tracer_spans,
)
from .spans import AsyncSpan, CounterSample, Span, SpanTracer
from .trace_export import to_chrome_trace, write_chrome_trace

__all__ = [
    "AsyncSpan",
    "CounterSample",
    "EventLoopProfiler",
    "MetricsRegistry",
    "ProfileReport",
    "Span",
    "SpanTracer",
    "collect_cluster_metrics",
    "collect_engine_metrics",
    "ingest_tracer_spans",
    "to_chrome_trace",
    "write_chrome_trace",
]
