"""Host-side event-loop profiling (wall clock, sampled).

The simulator is deterministic on *simulated* time, but its host-side
cost — how many events per second the Python loop actually executes —
is what sweep wall-clock budgets are made of.  An
:class:`EventLoopProfiler` installs into ``Simulator.profiler`` and
wraps every event dispatch: it always counts events per callback
``__qualname__``, and times every ``sample_every``-th one with
``time.perf_counter`` so the steady-state overhead stays a couple of
percent.

Wall-clock reads here are deliberate and justified: they measure the
*host* cost of the loop and never enter simulated state, so profiled
runs remain bit-identical to unprofiled runs (the dispatch order and
the callbacks' arguments are untouched).  The determinism linter's
``wall-clock`` rule is suppressed line-by-line with that rationale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..analysis.report import format_table

if TYPE_CHECKING:
    from ..sim.events import Event
    from ..sim.loop import Simulator


@dataclass(frozen=True, slots=True)
class ProfileRow:
    """Estimated host cost of one event-callback type."""

    name: str
    count: int
    sampled: int
    mean_us: float
    est_total_s: float
    share: float


@dataclass(frozen=True, slots=True)
class ProfileReport:
    """Aggregate host-side cost of one simulation run."""

    wall_s: float
    n_events: int
    events_per_s: float
    sample_every: int
    rows: tuple[ProfileRow, ...]

    def format(self) -> str:
        """Aligned text table, costliest callback types first."""
        header = (
            f"event loop: {self.n_events} events in {self.wall_s:.3f}s wall "
            f"({self.events_per_s:,.0f} events/s, sampled 1/{self.sample_every})"
        )
        table = format_table(
            ("callback", "count", "sampled", "mean µs", "est total s", "share"),
            [
                (
                    row.name,
                    row.count,
                    row.sampled,
                    f"{row.mean_us:.2f}",
                    f"{row.est_total_s:.4f}",
                    f"{row.share * 100:.1f}%",
                )
                for row in self.rows
            ],
        )
        return f"{header}\n{table}"


class EventLoopProfiler:
    """Counts every event and samples wall-clock cost per callback type."""

    __slots__ = (
        "sample_every",
        "_counts",
        "_sampled",
        "_sampled_s",
        "_n_events",
        "_wall_start",
    )

    def __init__(self, sample_every: int = 16) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.sample_every = sample_every
        self._counts: dict[str, int] = {}
        self._sampled: dict[str, int] = {}
        self._sampled_s: dict[str, float] = {}
        self._n_events = 0
        self._wall_start: float | None = None

    def install(self, sim: "Simulator") -> None:
        """Attach to a simulator; its loop hands every event to us."""
        sim.profiler = self
        self._wall_start = time.perf_counter()  # repro-lint: allow=wall-clock (host-side profiling only; never enters simulated state)

    def run_event(self, event: "Event") -> None:
        """Dispatch one event, counting it and occasionally timing it.

        The callback runs exactly once either way; only the bookkeeping
        around it differs, so simulated state is untouched.
        """
        callback = event.callback
        name = getattr(callback, "__qualname__", None) or type(callback).__name__
        self._counts[name] = self._counts.get(name, 0) + 1
        self._n_events += 1
        if self._n_events % self.sample_every:
            callback()
            return
        start = time.perf_counter()  # repro-lint: allow=wall-clock (host-side profiling only; never enters simulated state)
        callback()
        elapsed = time.perf_counter() - start  # repro-lint: allow=wall-clock (host-side profiling only; never enters simulated state)
        self._sampled[name] = self._sampled.get(name, 0) + 1
        self._sampled_s[name] = self._sampled_s.get(name, 0.0) + elapsed

    def report(self) -> ProfileReport:
        """Summarise what ran so far (callable mid-run or after)."""
        if self._wall_start is None:
            wall = 0.0
        else:
            wall = time.perf_counter() - self._wall_start  # repro-lint: allow=wall-clock (host-side profiling only; never enters simulated state)
        estimates: dict[str, tuple[float, float]] = {}
        for name, count in self._counts.items():
            sampled = self._sampled.get(name, 0)
            mean_s = self._sampled_s.get(name, 0.0) / sampled if sampled else 0.0
            estimates[name] = (mean_s, mean_s * count)
        total_est = sum(est for _, est in estimates.values())
        rows = tuple(
            sorted(
                (
                    ProfileRow(
                        name=name,
                        count=count,
                        sampled=self._sampled.get(name, 0),
                        mean_us=estimates[name][0] * 1e6,
                        est_total_s=estimates[name][1],
                        share=estimates[name][1] / total_est if total_est else 0.0,
                    )
                    for name, count in self._counts.items()
                ),
                key=lambda row: (-row.est_total_s, row.name),
            )
        )
        return ProfileReport(
            wall_s=wall,
            n_events=self._n_events,
            events_per_s=self._n_events / wall if wall > 0 else 0.0,
            sample_every=self.sample_every,
            rows=rows,
        )
