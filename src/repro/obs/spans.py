"""Span tracing on the simulated clock.

A :class:`SpanTracer` collects three kinds of observation:

* **spans** — ``[start, end)`` intervals on a named *lane* (Chrome-trace
  thread) of a *track* (Chrome-trace process; one track per engine
  replica, plus ``"cluster"`` for the inter-host link);
* **counter samples** — point-in-time numeric series (per-tier store
  occupancy), rendered as Perfetto counter tracks;
* **async spans** — intervals that may overlap on one lane (whole-turn
  latency), rendered as Chrome async ("b"/"e") events.

Zero overhead when disabled: nothing holds a tracer by default — the
engine, store and channels each keep a ``tracer``/observer attribute that
is ``None`` until :meth:`SpanTracer.attach_engine` (or
:meth:`attach_cluster`) installs the hooks, so an untraced run pays one
attribute check per instrumentation point.  Tracing is pure observation
of values the simulator computes anyway; it never changes event order or
float arithmetic, so traced runs are bit-identical to untraced runs.

Span vocabulary (pinned by the golden-schema test):

==============  ========  ==========================================
name            category  meaning
==============  ========  ==========================================
``queue-wait``  queue     arrival -> prefill start of one turn
``preload``     kv        layer-wise KV pre-loading window (§3.2.1)
``prefill``     gpu       prefill compute (overlapped duration)
``decode``      gpu       one decode chunk of the running batch
``save-block``  gpu       residual async-save blocking (§3.2.2)
``xfer``        channel   one transfer occupying a bandwidth channel
``evict-spill`` store     DRAM -> disk demotion of a victim item
``prefetch``    store     scheduler-aware disk -> DRAM fetch (§3.3.1)
``migrate``     cluster   KV migration between replicas
``crash``       cluster   replica downtime window (crash -> restart)
``failover``    cluster   orphaned turn re-routed to a healthy replica
``drain``       cluster   graceful drain window (begin -> stopped)
``turn``        turn      whole-turn latency (async span)
==============  ========  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..cluster.engine import ClusterEngine
    from ..engine.engine import ServingEngine
    from ..sim.channel import Channel


@dataclass(frozen=True, slots=True)
class Span:
    """One closed interval on a lane of a track."""

    name: str
    cat: str
    start: float
    end: float
    lane: str
    track: str
    args: dict[str, object] | None = None


@dataclass(frozen=True, slots=True)
class CounterSample:
    """A point sample of one or more named series (Chrome "C" event)."""

    name: str
    time: float
    track: str
    values: tuple[tuple[str, float], ...]


@dataclass(frozen=True, slots=True)
class AsyncSpan:
    """An interval that may overlap others on the same lane."""

    name: str
    cat: str
    id: str
    start: float
    end: float
    track: str
    args: dict[str, object] | None = None


class SpanTracer:
    """Collects spans/counters/async spans from attached components."""

    __slots__ = ("spans", "counters", "async_spans")

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.counters: list[CounterSample] = []
        self.async_spans: list[AsyncSpan] = []

    def __len__(self) -> int:
        return len(self.spans) + len(self.counters) + len(self.async_spans)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        *,
        lane: str,
        track: str,
        args: dict[str, object] | None = None,
    ) -> None:
        """Record one ``[start, end)`` interval (``end >= start``)."""
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts: {end} < {start}")
        self.spans.append(Span(name, cat, start, end, lane, track, args))

    def counter(
        self,
        name: str,
        time: float,
        *,
        track: str,
        values: tuple[tuple[str, float], ...],
    ) -> None:
        """Record a point sample of one or more named series."""
        self.counters.append(CounterSample(name, time, track, values))

    def async_span(
        self,
        name: str,
        cat: str,
        id_: str,
        start: float,
        end: float,
        *,
        track: str,
        args: dict[str, object] | None = None,
    ) -> None:
        """Record an interval allowed to overlap others on its lane."""
        if end < start:
            raise ValueError(f"async span {name!r} ends before it starts")
        self.async_spans.append(AsyncSpan(name, cat, id_, start, end, track, args))

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach_engine(self, engine: "ServingEngine") -> None:
        """Install span hooks on one engine, its channels and its store.

        The engine's ``name`` ("engine" standalone, "replica-<i>" in a
        cluster) becomes the track all of its spans land on.
        """
        engine.tracer = self
        track = engine.name
        for channel in (engine.pcie_h2d, engine.pcie_d2h, engine.ssd):
            self.observe_channel(channel, track)
        if engine.store is not None:
            engine.store.tracer = self
            engine.store.trace_track = track

    def attach_cluster(self, cluster: "ClusterEngine") -> None:
        """Install span hooks on every replica plus the inter-host link."""
        for engine in cluster.engines:
            self.attach_engine(engine)
        cluster.tracer = self
        self.observe_channel(cluster.net, "cluster")

    def observe_channel(self, channel: "Channel", track: str) -> None:
        """Emit an ``xfer`` span for every transfer the channel serves."""

        def on_transfer(
            ch: "Channel", start: float, end: float, n_bytes: int, fault: bool
        ) -> None:
            args: dict[str, object] = {"bytes": n_bytes}
            if fault:
                args["fault"] = True
            self.span(
                "xfer",
                "channel",
                start,
                end,
                lane=ch.name,
                track=track,
                args=args,
            )

        channel.on_transfer = on_transfer
