"""Probes: read simulator state into a :class:`MetricsRegistry`.

These run *after* a serving run (they read aggregate state; nothing here
touches the event loop), translating engine/store/channel internals into
the registry's stable export namespace:

* ``turns.*`` / ``hits.*`` — lookup outcome counters and hit/miss/
  fallback rates from the run summary;
* ``store.<tier>.*`` — per-tier occupancy (used/capacity bytes, item
  count, occupancy fraction);
* ``store.stats.*`` — every :class:`~repro.store.attention_store.
  StoreStats` counter (evictions, prefetches, faults, migrations);
* ``channel.<name>.*`` — bytes moved, busy seconds, and utilisation over
  the run's makespan;
* ``sim.*`` — events processed;
* ``span.<name>`` histograms — span durations ingested from a tracer.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from .registry import MetricsRegistry
from .spans import SpanTracer

if TYPE_CHECKING:
    from ..cluster.engine import ClusterEngine
    from ..engine.engine import ServingEngine
    from ..sim.channel import Channel
    from ..store.attention_store import AttentionStore


def collect_engine_metrics(
    engine: "ServingEngine",
    registry: MetricsRegistry | None = None,
    prefix: str = "",
) -> MetricsRegistry:
    """Populate a registry from one engine after its run drained.

    ``prefix`` namespaces the metrics (a cluster probe uses the replica
    name) and is applied to every name emitted here.
    """
    registry = registry if registry is not None else MetricsRegistry()
    summary = engine.metrics.summarise()

    registry.counter(f"{prefix}turns.served", summary.n_turns)
    registry.counter(f"{prefix}turns.lookups", summary.n_lookups)
    registry.counter(f"{prefix}hits.hbm", summary.hits_hbm)
    registry.counter(f"{prefix}hits.dram", summary.hits_dram)
    registry.counter(f"{prefix}hits.disk", summary.hits_disk)
    registry.counter(f"{prefix}misses", summary.misses)
    registry.counter(f"{prefix}fallbacks", summary.fallbacks)
    registry.gauge(f"{prefix}rates.hit", summary.hit_rate)
    registry.gauge(f"{prefix}rates.dram_hit", summary.dram_hit_rate)
    registry.gauge(f"{prefix}rates.disk_hit", summary.disk_hit_rate)
    registry.gauge(
        f"{prefix}rates.fallback",
        summary.fallbacks / summary.n_lookups if summary.n_lookups else 0.0,
    )
    registry.gauge(f"{prefix}latency.mean_ttft_s", summary.mean_ttft)
    registry.gauge(f"{prefix}latency.p95_ttft_s", summary.p95_ttft)
    registry.gauge(f"{prefix}latency.mean_queue_delay_s", summary.mean_queue_delay)
    registry.gauge(f"{prefix}gpu.busy_s", summary.total_gpu_busy_time)
    registry.gauge(f"{prefix}run.makespan_s", summary.makespan)
    registry.counter(f"{prefix}sim.events_processed", engine.sim.events_processed)

    if engine.store is not None:
        _collect_store(engine.store, registry, prefix, summary.makespan)
    for channel in (engine.pcie_h2d, engine.pcie_d2h, engine.ssd):
        _collect_channel(channel, registry, prefix, summary.makespan)
    return registry


def collect_cluster_metrics(cluster: "ClusterEngine") -> MetricsRegistry:
    """Cluster-level registry: pooled rates plus per-replica namespaces."""
    registry = MetricsRegistry()
    result = cluster.result()
    summary = result.summary
    registry.gauge("cluster.rates.hit", summary.hit_rate)
    registry.gauge(
        "cluster.aggregate_prefill_throughput",
        result.aggregate_prefill_throughput,
    )
    registry.counter("cluster.migrations", result.migrations)
    registry.counter("cluster.migrated_bytes", result.migrated_bytes)
    registry.counter("cluster.scatter_drops", result.scatter_drops)
    registry.counter("cluster.sim.events_processed", result.events_processed)
    # Replica-lifecycle outcomes (all zero without a fault schedule).
    registry.counter("cluster.crashes", result.crashes)
    registry.counter("cluster.restarts", result.restarts)
    registry.counter("cluster.drains", result.drains)
    registry.counter("cluster.lost_turns", result.lost_turns)
    registry.counter("cluster.failovers", result.failovers)
    registry.counter("cluster.failover_retries", result.failover_retries)
    registry.counter("cluster.parked_turns", result.parked_turns)
    registry.counter(
        "cluster.failover_recompute_tokens", result.failover_recompute_tokens
    )
    registry.gauge("cluster.total_downtime_s", result.total_downtime_s)
    registry.gauge("cluster.mttr_s", result.mttr_s)
    _collect_channel(cluster.net, registry, "cluster.", summary.makespan)
    for engine in cluster.engines:
        collect_engine_metrics(engine, registry, prefix=f"{engine.name}.")
    return registry


def ingest_tracer_spans(
    tracer: SpanTracer, registry: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Fold span durations into per-name histograms and counters.

    Gives the registry the latency *distributions* behind the trace —
    ``span.prefill`` / ``span.decode`` / ``span.queue-wait`` quantiles —
    without the engine hot path writing a single registry entry.
    """
    registry = registry if registry is not None else MetricsRegistry()
    for span in tracer.spans:
        registry.counter(f"span.{span.name}.count")
        registry.observe(f"span.{span.name}", span.end - span.start)
    for aspan in tracer.async_spans:
        registry.counter(f"span.{aspan.name}.count")
        registry.observe(f"span.{aspan.name}", aspan.end - aspan.start)
    return registry


def _collect_store(
    store: "AttentionStore",
    registry: MetricsRegistry,
    prefix: str,
    makespan: float,
) -> None:
    for tier in (store.hbm_tier, store.dram_tier, store.disk_tier):
        name = f"{prefix}store.{tier.tier.value}"
        registry.gauge(f"{name}.used_bytes", tier.used_bytes)
        registry.gauge(f"{name}.capacity_bytes", tier.capacity_bytes)
        registry.gauge(f"{name}.items", len(tier))
        registry.gauge(
            f"{name}.occupancy",
            tier.used_bytes / tier.capacity_bytes if tier.capacity_bytes else 0.0,
        )
    for field in dataclasses.fields(store.stats):
        registry.counter(
            f"{prefix}store.stats.{field.name}",
            getattr(store.stats, field.name),
        )
    del makespan  # reserved for rate-style store metrics


def _collect_channel(
    channel: "Channel",
    registry: MetricsRegistry,
    prefix: str,
    makespan: float,
) -> None:
    name = f"{prefix}channel.{channel.name}"
    registry.counter(f"{name}.bytes_moved", channel.bytes_moved)
    registry.gauge(f"{name}.busy_s", channel.busy_time)
    registry.gauge(f"{name}.utilisation", channel.utilisation(makespan))
