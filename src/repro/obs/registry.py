"""Metrics registry: counters, gauges and log-histograms with exporters.

A :class:`MetricsRegistry` is a flat namespace of dot-separated metric
names (``store.dram.used_bytes``, ``channel.pcie-h2d.utilisation``) in
three kinds:

* **counters** — monotonically accumulated totals (hits, evictions);
* **gauges** — last-written point values (occupancy fractions);
* **histograms** — streaming distributions backed by the same mergeable
  :class:`~repro.engine.streaming.LogHistogramQuantile` the streaming
  metrics collector uses (bounded ~0.5 % quantile error, O(bins) memory).

Export schema (``schema_version`` 1, stable — a golden test pins it):

.. code-block:: json

    {"schema_version": 1,
     "counters":   {"<name>": <number>, ...},
     "gauges":     {"<name>": <number>, ...},
     "histograms": {"<name>": {"count": n, "p50": x, "p95": x,
                               "p99": x, "max": x}, ...}}

Keys are sorted, so two snapshots of the same run compare bytewise.  The
CSV form flattens the same data to ``kind,name,field,value`` rows.
"""

from __future__ import annotations

import json

from ..engine.streaming import LogHistogramQuantile

SCHEMA_VERSION = 1

#: Quantiles reported per histogram, as (field name, q) pairs.
_HISTOGRAM_QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
    ("max", 1.0),
)


class MetricsRegistry:
    """Accumulates named counters, gauges and histograms."""

    __slots__ = ("_counters", "_gauges", "_hists")

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._hists: dict[str, LogHistogramQuantile] = {}

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._hists)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def counter(self, name: str, value: float = 1) -> None:
        """Add ``value`` (>= 0) to the counter ``name``."""
        if value < 0:
            raise ValueError(f"counter {name!r} increment must be >= 0, got {value}")
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest value."""
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold one observation into the histogram ``name``."""
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = LogHistogramQuantile()
        hist.add(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counter_value(self, name: str) -> float:
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> float | None:
        return self._gauges.get(name)

    def histogram(self, name: str) -> LogHistogramQuantile | None:
        return self._hists.get(name)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters add, gauges take the other's
        latest value, histograms merge exactly (bin counts add)."""
        for name, value in other._counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        self._gauges.update(other._gauges)
        for name, hist in other._hists.items():
            mine = self._hists.get(name)
            if mine is None:
                mine = self._hists[name] = LogHistogramQuantile(
                    hist.min_value, hist.growth
                )
            mine.merge(hist)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """The stable-schema dict form (see module docstring)."""
        histograms: dict[str, dict[str, float]] = {}
        for name in sorted(self._hists):
            hist = self._hists[name]
            entry: dict[str, float] = {"count": float(len(hist))}
            for field, q in _HISTOGRAM_QUANTILES:
                entry[field] = hist.quantile(q)
            histograms[name] = entry
        return {
            "schema_version": SCHEMA_VERSION,
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": histograms,
        }

    def to_json(self) -> str:
        """The snapshot as deterministic, sorted-key JSON text."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"

    def to_csv(self) -> str:
        """The snapshot flattened to ``kind,name,field,value`` rows.

        Rows are sorted; ``field`` is ``value`` for counters/gauges and
        the quantile field name for histogram entries.
        """
        lines = ["kind,name,field,value"]
        for name in sorted(self._counters):
            lines.append(f"counter,{name},value,{self._counters[name]!r}")
        for name in sorted(self._gauges):
            lines.append(f"gauge,{name},value,{self._gauges[name]!r}")
        for name in sorted(self._hists):
            hist = self._hists[name]
            lines.append(f"histogram,{name},count,{len(hist)}")
            for field, q in _HISTOGRAM_QUANTILES:
                lines.append(f"histogram,{name},{field},{hist.quantile(q)!r}")
        return "\n".join(lines) + "\n"
