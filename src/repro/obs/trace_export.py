"""Chrome-trace / Perfetto JSON export of recorded spans.

Produces the Trace Event Format understood by ``chrome://tracing`` and
https://ui.perfetto.dev: a ``traceEvents`` list of

* ``M`` metadata events naming processes (tracks: one per engine replica
  plus ``"cluster"``) and threads (lanes: ``gpu``, ``queue``, ``kv-load``,
  channel names, ``store``, ...);
* ``X`` complete events for spans (``ts``/``dur`` in microseconds of
  simulated time);
* ``C`` counter events for sampled series (per-tier store occupancy);
* ``b``/``e`` async events for whole-turn latency spans.

The schema is stable and pinned by a golden-file test: span names, the
per-phase required fields, and timestamp monotonicity (metadata first,
then all events sorted by ``ts``) are a contract downstream tooling can
rely on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from .spans import SpanTracer

#: Simulated seconds -> trace microseconds.
_US = 1e6

#: Lane hosting counter events (Perfetto renders "C" events per name, the
#: tid only groups them under a thread).
COUNTER_LANE = "counters"

#: Lane hosting async whole-turn spans.
ASYNC_LANE = "turns"


def _us(t: float) -> float:
    """Simulated seconds to microseconds, rounded to sub-µs precision so
    the JSON stays compact and platform-independent."""
    return round(t * _US, 3)


def to_chrome_trace(tracers: Sequence[SpanTracer] | SpanTracer) -> dict[str, object]:
    """Render one or more tracers as a Chrome-trace JSON object.

    Multiple tracers merge into one trace; tracks with the same name merge
    into the same process (a cluster run typically uses a single tracer
    attached to every replica, so merging is the degenerate one-element
    case).
    """
    if isinstance(tracers, SpanTracer):
        tracers = [tracers]

    # Collect the track/lane universe first so pids and tids are assigned
    # deterministically (sorted order), independent of emission order.
    tracks: set[str] = set()
    lanes_by_track: dict[str, set[str]] = {}
    for tracer in tracers:
        for span in tracer.spans:
            tracks.add(span.track)
            lanes_by_track.setdefault(span.track, set()).add(span.lane)
        for sample in tracer.counters:
            tracks.add(sample.track)
            lanes_by_track.setdefault(sample.track, set()).add(COUNTER_LANE)
        for aspan in tracer.async_spans:
            tracks.add(aspan.track)
            lanes_by_track.setdefault(aspan.track, set()).add(ASYNC_LANE)

    pid_of = {track: pid for pid, track in enumerate(sorted(tracks))}
    tid_of: dict[tuple[str, str], int] = {}
    meta: list[dict[str, object]] = []
    for track in sorted(tracks):
        pid = pid_of[track]
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": track},
            }
        )
        for tid, lane in enumerate(sorted(lanes_by_track[track])):
            tid_of[(track, lane)] = tid
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )

    events: list[dict[str, object]] = []
    for tracer in tracers:
        for span in tracer.spans:
            event: dict[str, object] = {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": _us(span.start),
                "dur": _us(span.end - span.start),
                "pid": pid_of[span.track],
                "tid": tid_of[(span.track, span.lane)],
            }
            if span.args is not None:
                event["args"] = span.args
            events.append(event)
        for sample in tracer.counters:
            events.append(
                {
                    "name": sample.name,
                    "ph": "C",
                    "ts": _us(sample.time),
                    "pid": pid_of[sample.track],
                    "tid": tid_of[(sample.track, COUNTER_LANE)],
                    "args": dict(sample.values),
                }
            )
        for aspan in tracer.async_spans:
            common: dict[str, object] = {
                "name": aspan.name,
                "cat": aspan.cat,
                "id": aspan.id,
                "pid": pid_of[aspan.track],
                "tid": tid_of[(aspan.track, ASYNC_LANE)],
            }
            begin = dict(common, ph="b", ts=_us(aspan.start))
            if aspan.args is not None:
                begin["args"] = aspan.args
            events.append(begin)
            events.append(dict(common, ph="e", ts=_us(aspan.end)))

    # Stable, monotonic timeline: metadata first, then events by (ts,
    # emission order) — Python's sort is stable, so equal timestamps keep
    # the deterministic order they were recorded in.
    events.sort(key=_ts_of)
    return {
        "displayTimeUnit": "ms",
        "traceEvents": [*meta, *events],
    }


def _ts_of(event: dict[str, object]) -> float:
    ts = event["ts"]
    assert isinstance(ts, float)
    return ts


def write_chrome_trace(
    path: Path | str, tracers: Sequence[SpanTracer] | SpanTracer
) -> int:
    """Write the merged trace to ``path``; return the event count."""
    trace = to_chrome_trace(tracers)
    with open(path, "w") as fh:
        json.dump(trace, fh, indent=1, sort_keys=True)
        fh.write("\n")
    trace_events = trace["traceEvents"]
    assert isinstance(trace_events, list)
    return len(trace_events)


def iter_event_names(trace: dict[str, object]) -> Iterable[str]:
    """Names of all non-metadata events in an exported trace (test hook)."""
    trace_events = trace["traceEvents"]
    assert isinstance(trace_events, list)
    for event in trace_events:
        if event.get("ph") != "M":
            name = event["name"]
            assert isinstance(name, str)
            yield name
