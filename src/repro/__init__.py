"""CachedAttention / AttentionStore — full reproduction.

Reproduces "Cost-Efficient Large Language Model Serving for Multi-turn
Conversations with CachedAttention" (USENIX ATC 2024): a serving engine
whose KV caches survive across conversation turns in a DRAM/SSD hierarchy
(AttentionStore), with layer-wise pre-loading, asynchronous saving,
scheduler-aware fetching/eviction, and decoupled-positional-encoding KV
truncation.

Top-level packages:

* :mod:`repro.workload` — synthetic ShareGPT-like multi-turn traces.
* :mod:`repro.sim` — discrete-event simulation substrate.
* :mod:`repro.hardware` — roofline GPU/transfer performance model.
* :mod:`repro.store` — AttentionStore (tiers, policies, prefetch).
* :mod:`repro.engine` — continuous-batching serving engine (RE vs CA).
* :mod:`repro.faults` — fault injection and graceful degradation.
* :mod:`repro.runner` — deterministic process-parallel sweep runner.
* :mod:`repro.model` — trainable NumPy RoPE transformer for the quality
  experiments (decoupled vs embedded positional encodings).
* :mod:`repro.analysis` — cost/capacity analysis and report formatting.
"""

from .config import (
    EngineConfig,
    EvictionPolicyName,
    GPUSpec,
    HardwareConfig,
    ServingMode,
    StoreConfig,
    TruncationPolicyName,
)
from .faults import DegradedWindow, FaultConfig, TierLossEvent, fault_profile
from .models import (
    EVALUATION_MODELS,
    MODEL_REGISTRY,
    GiB,
    MiB,
    ModelSpec,
    TiB,
    get_model,
    register_model,
)

__version__ = "1.0.0"

__all__ = [
    "DegradedWindow",
    "EVALUATION_MODELS",
    "EngineConfig",
    "EvictionPolicyName",
    "FaultConfig",
    "GPUSpec",
    "GiB",
    "HardwareConfig",
    "MODEL_REGISTRY",
    "MiB",
    "ModelSpec",
    "ServingMode",
    "StoreConfig",
    "TiB",
    "TierLossEvent",
    "TruncationPolicyName",
    "__version__",
    "fault_profile",
    "get_model",
    "register_model",
]
