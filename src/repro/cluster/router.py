"""Session routers for multi-instance cluster serving.

A router picks which replica serves a request.  It is consulted once per
turn: at session arrival (``home`` is None) and again after every think
time, so a policy can rebalance mid-conversation.  All routers break ties
by the lowest replica index, which keeps cluster runs deterministic.

The interesting policy is :class:`AffinityRouter` — CachedAttention's KV
caches make routing *stateful*: a session's history lives in exactly one
replica's AttentionStore, so sending the session anywhere else forfeits
the cache hit (or forces a migration over the inter-host network).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Sequence

from .config import RouterName

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine.engine import ServingEngine


class NoRoutableReplica(LookupError):
    """Every replica is unroutable (crashed, draining or stopped)."""


class Router(ABC):
    """Picks the replica index that serves a session's next turn."""

    name: RouterName

    def __init__(self, engines: "Sequence[ServingEngine]") -> None:
        if not engines:
            raise ValueError("a router needs at least one replica")
        self.engines = engines
        # Cluster-installed availability predicate: replicas it rejects
        # (down or draining) are never returned.  None = all routable,
        # which keeps single-host and healthy-cluster routing decisions
        # byte-identical to the predicate-free code path.
        self.routable: Callable[[int], bool] | None = None

    @abstractmethod
    def route(self, session_id: int, home: int | None) -> int:
        """Return the replica index for this turn.

        ``home`` is the replica that served the session's previous turn
        (None for a new session).

        Raises:
            NoRoutableReplica: when no replica is currently routable.
        """

    def _is_routable(self, index: int) -> bool:
        return self.routable is None or self.routable(index)

    def least_loaded(self) -> int:
        """Index of the routable replica with the fewest queued + admitted
        tokens, lowest index winning ties (deterministic)."""
        if self.routable is None:
            loads = [engine.load_tokens for engine in self.engines]
            return loads.index(min(loads))
        best = -1
        best_load = 0
        for index, engine in enumerate(self.engines):
            if not self.routable(index):
                continue
            load = engine.load_tokens
            if best < 0 or load < best_load:
                best, best_load = index, load
        if best < 0:
            raise NoRoutableReplica("no healthy replica to route to")
        return best


class RoundRobinRouter(Router):
    """Scatter requests over the replicas in strict rotation.

    Oblivious to both load and cache placement; over partitioned
    AttentionStores it sends most turns away from their KV and the hit
    rate collapses — the baseline the affinity router is measured against.
    """

    name = RouterName.ROUND_ROBIN

    def __init__(self, engines: "Sequence[ServingEngine]") -> None:
        super().__init__(engines)
        self._next = 0

    def route(self, session_id: int, home: int | None) -> int:
        for _ in range(len(self.engines)):
            index = self._next
            self._next = (self._next + 1) % len(self.engines)
            if self._is_routable(index):
                return index
        raise NoRoutableReplica("no healthy replica to route to")


class LeastLoadedRouter(Router):
    """Send every request to the currently least-loaded replica.

    Balances queue depth well but ignores cache placement, so multi-turn
    sessions still wander between replicas whenever loads shift.
    """

    name = RouterName.LEAST_LOADED

    def route(self, session_id: int, home: int | None) -> int:
        return self.least_loaded()


class AffinityRouter(Router):
    """Cache-aware routing: keep a session on the replica holding its KV.

    New sessions go to the least-loaded replica.  Returning sessions go
    home — unless the home replica's load exceeds the cluster minimum by
    more than ``spill_tokens``, in which case the session spills to the
    least-loaded replica and the cluster migrates its KV cache there.
    """

    name = RouterName.AFFINITY

    def __init__(
        self, engines: "Sequence[ServingEngine]", spill_tokens: int = 16384
    ) -> None:
        super().__init__(engines)
        if spill_tokens < 0:
            raise ValueError(f"spill_tokens must be >= 0, got {spill_tokens}")
        self.spill_tokens = spill_tokens

    def route(self, session_id: int, home: int | None) -> int:
        if home is None or not self._is_routable(home):
            # New session — or the home replica is down/draining, so
            # affinity is forfeit and the session lands wherever load is
            # lowest (its history recomputes or migrates there).
            return self.least_loaded()
        target = self.least_loaded()
        home_load = self.engines[home].load_tokens
        if home_load - self.engines[target].load_tokens > self.spill_tokens:
            return target
        return home


def make_router(
    name: RouterName,
    engines: "Sequence[ServingEngine]",
    *,
    spill_tokens: int = 16384,
) -> Router:
    """Instantiate a router by configuration name."""
    if name is RouterName.ROUND_ROBIN:
        return RoundRobinRouter(engines)
    if name is RouterName.LEAST_LOADED:
        return LeastLoadedRouter(engines)
    if name is RouterName.AFFINITY:
        return AffinityRouter(engines, spill_tokens=spill_tokens)
    raise ValueError(f"unknown router {name!r}")
