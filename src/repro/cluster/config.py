"""Configuration for multi-instance cluster serving.

A cluster runs N serving-engine replicas (each a full multi-GPU host with
its own PCIe links and AttentionStore partition) behind a session router.
:class:`ClusterConfig` sizes the cluster and names the routing policy;
:class:`RouterName` enumerates the available routers.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class RouterName(str, Enum):
    """Session-routing policies for a serving cluster.

    * ``ROUND_ROBIN`` — scatter every request over the replicas in turn,
      ignoring both load and cache placement (the locality-oblivious
      baseline: over partitioned stores it destroys the hit rate).
    * ``LEAST_LOADED`` — send each request to the replica with the fewest
      queued + admitted tokens, ignoring cache placement.
    * ``AFFINITY`` — cache-aware routing: send a session back to the
      replica whose AttentionStore holds its KV, spilling to the least
      loaded replica (with KV migration over the inter-host network) only
      when the home replica is overloaded.
    """

    ROUND_ROBIN = "rr"
    LEAST_LOADED = "least-loaded"
    AFFINITY = "affinity"


@dataclass(frozen=True, slots=True)
class ClusterConfig:
    """Sizing and routing knobs for a serving cluster.

    ``net_bandwidth`` models the effective inter-host link used for KV
    migrations (default ~100 Gb Ethernet).  ``affinity_spill_tokens`` is
    the load imbalance — home-replica load minus minimum replica load, in
    tokens — above which the affinity router gives up locality and spills
    a session to the least-loaded replica.  ``partition_store`` divides
    the configured DRAM/SSD store capacity evenly across replicas (each
    host owns a private shard, as in a real deployment); when False every
    replica gets the full configured capacity.

    The failover knobs govern recovery from scheduled replica crashes
    (:class:`~repro.faults.ReplicaFaultSchedule`).  With ``failover``
    True (the default), turns orphaned by a crash are re-routed to a
    healthy replica after ``failover_detection_s``, retrying with
    exponential backoff (``failover_backoff_s`` doubling per attempt,
    capped at ``failover_backoff_cap_s``) while no replica is routable;
    the new home recomputes the session history.  With ``failover``
    False (naive restart), orphaned turns wait out the downtime and are
    resubmitted to the restarted replica, whose surviving SSD KV is
    re-admitted.  ``drain_poll_s`` is how often a draining replica
    re-checks for idle sessions it can migrate out.
    """

    n_instances: int = 1
    router: RouterName = RouterName.AFFINITY
    net_bandwidth: float = 12.5e9
    affinity_spill_tokens: int = 16384
    partition_store: bool = True
    failover: bool = True
    failover_detection_s: float = 0.5
    failover_backoff_s: float = 0.5
    failover_backoff_cap_s: float = 8.0
    drain_poll_s: float = 5.0

    def __post_init__(self) -> None:
        if self.n_instances <= 0:
            raise ValueError(
                f"n_instances must be positive, got {self.n_instances}"
            )
        if self.net_bandwidth <= 0:
            raise ValueError(
                f"net_bandwidth must be positive, got {self.net_bandwidth}"
            )
        if self.affinity_spill_tokens < 0:
            raise ValueError(
                "affinity_spill_tokens must be >= 0, got "
                f"{self.affinity_spill_tokens}"
            )
        if self.failover_detection_s < 0:
            raise ValueError(
                "failover_detection_s must be >= 0, got "
                f"{self.failover_detection_s}"
            )
        if self.failover_backoff_s <= 0:
            raise ValueError(
                "failover_backoff_s must be positive, got "
                f"{self.failover_backoff_s}"
            )
        if self.failover_backoff_cap_s < self.failover_backoff_s:
            raise ValueError(
                f"failover_backoff_cap_s ({self.failover_backoff_cap_s}) "
                f"must be >= failover_backoff_s ({self.failover_backoff_s})"
            )
        if self.drain_poll_s <= 0:
            raise ValueError(
                f"drain_poll_s must be positive, got {self.drain_poll_s}"
            )
