"""Configuration for multi-instance cluster serving.

A cluster runs N serving-engine replicas (each a full multi-GPU host with
its own PCIe links and AttentionStore partition) behind a session router.
:class:`ClusterConfig` sizes the cluster and names the routing policy;
:class:`RouterName` enumerates the available routers.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class RouterName(str, Enum):
    """Session-routing policies for a serving cluster.

    * ``ROUND_ROBIN`` — scatter every request over the replicas in turn,
      ignoring both load and cache placement (the locality-oblivious
      baseline: over partitioned stores it destroys the hit rate).
    * ``LEAST_LOADED`` — send each request to the replica with the fewest
      queued + admitted tokens, ignoring cache placement.
    * ``AFFINITY`` — cache-aware routing: send a session back to the
      replica whose AttentionStore holds its KV, spilling to the least
      loaded replica (with KV migration over the inter-host network) only
      when the home replica is overloaded.
    """

    ROUND_ROBIN = "rr"
    LEAST_LOADED = "least-loaded"
    AFFINITY = "affinity"


@dataclass(frozen=True, slots=True)
class ClusterConfig:
    """Sizing and routing knobs for a serving cluster.

    ``net_bandwidth`` models the effective inter-host link used for KV
    migrations (default ~100 Gb Ethernet).  ``affinity_spill_tokens`` is
    the load imbalance — home-replica load minus minimum replica load, in
    tokens — above which the affinity router gives up locality and spills
    a session to the least-loaded replica.  ``partition_store`` divides
    the configured DRAM/SSD store capacity evenly across replicas (each
    host owns a private shard, as in a real deployment); when False every
    replica gets the full configured capacity.
    """

    n_instances: int = 1
    router: RouterName = RouterName.AFFINITY
    net_bandwidth: float = 12.5e9
    affinity_spill_tokens: int = 16384
    partition_store: bool = True

    def __post_init__(self) -> None:
        if self.n_instances <= 0:
            raise ValueError(
                f"n_instances must be positive, got {self.n_instances}"
            )
        if self.net_bandwidth <= 0:
            raise ValueError(
                f"net_bandwidth must be positive, got {self.net_bandwidth}"
            )
        if self.affinity_spill_tokens < 0:
            raise ValueError(
                "affinity_spill_tokens must be >= 0, got "
                f"{self.affinity_spill_tokens}"
            )
