"""Multi-instance cluster serving with cache-aware session routing.

Runs N serving-engine replicas — each with private GPUs, PCIe links and an
AttentionStore partition — on one shared discrete-event simulator behind a
pluggable router.  The affinity router keeps sessions on the replica that
holds their KV cache, migrating caches over a modelled inter-host network
only when load forces a spill; round-robin and least-loaded routers are the
locality-oblivious baselines it is measured against.
"""

from .config import ClusterConfig, RouterName
from .engine import ClusterEngine, ClusterResult
from .lifecycle import ReplicaLifecycle, ReplicaState
from .router import (
    AffinityRouter,
    LeastLoadedRouter,
    NoRoutableReplica,
    RoundRobinRouter,
    Router,
    make_router,
)

__all__ = [
    "AffinityRouter",
    "ClusterConfig",
    "ClusterEngine",
    "ClusterResult",
    "LeastLoadedRouter",
    "NoRoutableReplica",
    "ReplicaLifecycle",
    "ReplicaState",
    "RoundRobinRouter",
    "Router",
    "RouterName",
    "make_router",
]
