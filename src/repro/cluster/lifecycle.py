"""Replica lifecycle: the crash/restart/drain state machine.

Each replica of a :class:`~repro.cluster.ClusterEngine` carries one
:class:`ReplicaLifecycle` tracking its health state and downtime
accounting.  The cluster drives transitions from the run's
:class:`~repro.faults.ReplicaFaultSchedule`; the router consults
:attr:`ReplicaLifecycle.routable` so sessions never land on a dead or
draining replica.
"""

from __future__ import annotations

from enum import Enum


class ReplicaState(str, Enum):
    """Health state of one cluster replica.

    * ``UP`` — serving and routable.
    * ``DOWN`` — crashed: volatile KV and in-flight work are gone; the
      SSD tier physically survives, offline until restart.
    * ``DRAINING`` — gracefully shutting down: no longer admitting
      sessions, migrating live ones to healthy peers.
    * ``STOPPED`` — drain complete; permanently out of rotation.
    """

    UP = "up"
    DOWN = "down"
    DRAINING = "draining"
    STOPPED = "stopped"


class ReplicaLifecycle:
    """One replica's state transitions and downtime accounting.

    Legal transitions::

        UP ──crash──▶ DOWN ──restart──▶ UP
        UP ──begin_drain──▶ DRAINING ──finish_drain──▶ STOPPED
        DRAINING ──crash──▶ DOWN      (the drain is cancelled)

    Any other transition raises ``ValueError`` — a schedule that, say,
    crashes an already-down replica is a configuration bug, not a
    degradation to model.
    """

    def __init__(self) -> None:
        self.state = ReplicaState.UP
        self.crashes = 0
        self.restarts = 0
        #: Seconds spent DOWN over completed crash/restart cycles.
        self.total_downtime = 0.0
        self.crashed_at: float | None = None
        self.drain_started_at: float | None = None
        self.drain_finished_at: float | None = None

    @property
    def routable(self) -> bool:
        """Whether the router may send sessions here (UP only)."""
        return self.state is ReplicaState.UP

    @property
    def reachable(self) -> bool:
        """Whether the replica's store can be read (UP or DRAINING)."""
        return self.state in (ReplicaState.UP, ReplicaState.DRAINING)

    @property
    def mttr(self) -> float:
        """Mean time to recovery over completed crash/restart cycles."""
        return self.total_downtime / self.restarts if self.restarts else 0.0

    def crash(self, now: float) -> None:
        if self.state not in (ReplicaState.UP, ReplicaState.DRAINING):
            raise ValueError(f"cannot crash a {self.state.value} replica")
        if self.state is ReplicaState.DRAINING:
            # The crash pre-empts the drain; a later restart returns the
            # replica to UP, not DRAINING.
            self.drain_started_at = None
        self.state = ReplicaState.DOWN
        self.crashed_at = now
        self.crashes += 1

    def restart(self, now: float) -> None:
        if self.state is not ReplicaState.DOWN:
            raise ValueError(f"cannot restart a {self.state.value} replica")
        assert self.crashed_at is not None
        self.total_downtime += now - self.crashed_at
        self.crashed_at = None
        self.state = ReplicaState.UP
        self.restarts += 1

    def begin_drain(self, now: float) -> None:
        if self.state is not ReplicaState.UP:
            raise ValueError(f"cannot drain a {self.state.value} replica")
        self.state = ReplicaState.DRAINING
        self.drain_started_at = now

    def finish_drain(self, now: float) -> None:
        if self.state is not ReplicaState.DRAINING:
            raise ValueError(
                f"cannot finish draining a {self.state.value} replica"
            )
        self.state = ReplicaState.STOPPED
        self.drain_finished_at = now
