"""Multi-instance cluster serving on one shared discrete-event simulator.

A :class:`ClusterEngine` runs N :class:`~repro.engine.ServingEngine`
replicas — each a full multi-GPU host with its own PCIe links, SSD and
AttentionStore partition — against a single simulated clock, fronted by a
pluggable session router.  Sessions arrive at the cluster, not a replica:
the router picks a replica per turn, and when it moves a returning session
away from the replica holding its KV cache the cluster either migrates the
cache over a modelled inter-host network link (affinity routing) or drops
the now-stale copy (locality-oblivious routers), preserving the invariant
that a session's KV lives in at most one store.

With ``n_instances=1`` every router degenerates to "route everything to
replica 0" and the cluster reproduces a standalone engine bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from ..config import EngineConfig, HardwareConfig, ServingMode, StoreConfig
from ..engine.engine import RunResult, ServingEngine, TurnCounter
from ..engine.metrics import MetricsCollector, RunSummary
from ..engine.session import SessionState
from ..faults import FaultConfig, FaultInjector, ReplicaCrash
from ..models import ModelSpec
from ..runner.seeds import seed_for
from ..sanitize import install_cluster, sanitize_enabled
from ..sim.channel import Channel, ChannelPair, FaultyTransfer
from ..sim.loop import Simulator
from ..store.item import Tier
from ..workload.trace import Conversation, Trace
from .config import ClusterConfig, RouterName
from .lifecycle import ReplicaLifecycle, ReplicaState
from .router import NoRoutableReplica, make_router

if TYPE_CHECKING:
    from ..obs.spans import SpanTracer


@dataclass(frozen=True, slots=True)
class ClusterResult:
    """Aggregate outcome of one cluster serving run.

    ``summary`` pools every replica's per-turn records into one
    cluster-level :class:`~repro.engine.RunSummary`; ``replicas`` keeps
    the per-replica results for imbalance analysis.
    """

    summary: RunSummary
    replicas: tuple[RunResult, ...]
    router: RouterName
    n_instances: int
    #: KV caches moved between replicas (affinity spills).
    migrations: int
    migrated_bytes: int
    #: Stale KV copies dropped on a locality-oblivious reroute.
    scatter_drops: int
    #: Bytes carried by the inter-host network link.
    net_bytes: int
    events_processed: int
    # Replica-lifecycle outcomes (all zero without a fault schedule):
    #: Scheduled replica crashes that actually fired.
    crashes: int = 0
    restarts: int = 0
    #: Graceful drains started.
    drains: int = 0
    #: In-flight turns interrupted by a crash (each is later failed over
    #: or parked and resubmitted — lost work, never a lost answer).
    lost_turns: int = 0
    #: Sessions re-homed to a healthy replica after a crash.
    failovers: int = 0
    #: Routing retries while no replica was routable.
    failover_retries: int = 0
    #: Turns that waited out a downtime for naive restart (failover off).
    parked_turns: int = 0
    #: History tokens recomputed because their session failed over.
    failover_recompute_tokens: int = 0
    #: Seconds of replica downtime over completed crash/restart cycles.
    total_downtime_s: float = 0.0

    @property
    def mttr_s(self) -> float:
        """Mean time to recovery per completed crash/restart cycle."""
        return self.total_downtime_s / self.restarts if self.restarts else 0.0

    @property
    def hit_rate(self) -> float:
        """Cluster-wide AttentionStore hit rate over lookups."""
        return self.summary.hit_rate

    @property
    def aggregate_prefill_throughput(self) -> float:
        """Prompt tokens served per *wall-clock* second across the cluster.

        Unlike :attr:`RunSummary.prefill_throughput` (tokens per GPU-busy
        second, a per-device efficiency figure), this scales with replica
        count and is the scaling metric of the cluster experiment.
        """
        if self.summary.makespan <= 0:
            return 0.0
        return self.summary.prompt_tokens_total / self.summary.makespan


class ClusterEngine:
    """N serving-engine replicas behind a session router, one event loop."""

    def __init__(
        self,
        model: ModelSpec,
        cluster: ClusterConfig | None = None,
        hardware: HardwareConfig | None = None,
        engine_config: EngineConfig | None = None,
        store_config: StoreConfig | None = None,
        warmup_turns: int = 0,
        fault_config: FaultConfig | None = None,
        streaming_metrics: bool = False,
        sanitize: bool | None = None,
    ) -> None:
        self.cluster = cluster or ClusterConfig()
        n = self.cluster.n_instances
        self.model = model
        hardware = hardware or HardwareConfig().for_model(model)
        engine_config = engine_config or EngineConfig(
            batch_size=model.default_batch_size
        )
        if engine_config.mode is ServingMode.CACHED:
            base_store: StoreConfig | None = store_config or StoreConfig()
        else:
            base_store = None

        # The replica crash/drain schedule is cluster-level: events are
        # validated against the replica count here and stripped from the
        # per-replica configs below (a lone engine has nothing to crash).
        schedule = fault_config.replica_schedule if fault_config is not None else None
        if schedule is not None and not schedule.enabled:
            schedule = None
        if schedule is not None:
            schedule.validate_for(n)
        self.schedule = schedule

        self.sim = Simulator()
        self.turn_counter = TurnCounter()
        # One shared inter-host link: concurrent migrations contend on it.
        self.net = Channel("cluster-net", self.cluster.net_bandwidth)
        self.engines: list[ServingEngine] = []
        for i in range(n):
            replica_faults = fault_config
            if fault_config is not None:
                seed = fault_config.seed
                if n > 1:
                    # Independent fault streams per host, still
                    # deterministic.  Hash-derived so replica seeds are
                    # uncorrelated (seed+i gave neighbouring replicas
                    # overlapping decision streams); a single instance
                    # keeps the base seed, bit-identical to a standalone
                    # engine.
                    seed = seed_for(fault_config.seed, f"replica-{i}")
                replica_faults = replace(
                    fault_config, seed=seed, replica_schedule=None
                )
            self.engines.append(
                ServingEngine(
                    model,
                    hardware=hardware,
                    engine_config=engine_config,
                    store_config=self._partition_store(base_store, n),
                    warmup_turns=warmup_turns,
                    fault_config=replica_faults,
                    sim=self.sim,
                    pcie_h2d=Channel(f"pcie-h2d-{i}", hardware.pcie_bandwidth),
                    pcie_d2h=Channel(f"pcie-d2h-{i}", hardware.pcie_bandwidth),
                    ssd=Channel("ssd", hardware.ssd_bandwidth),
                    turn_counter=self.turn_counter,
                    streaming_metrics=streaming_metrics,
                    name=f"replica-{i}",
                )
            )
        for engine in self.engines:
            engine.next_turn_hook = self._route_next_turn
        self.router = make_router(
            self.cluster.router,
            self.engines,
            spill_tokens=self.cluster.affinity_spill_tokens,
        )
        # Which replica served each session's previous turn — the
        # affinity router's cache-placement oracle (KV lives in at most
        # one store, and always the home replica's).
        self._home: dict[int, int] = {}
        # Replica health; the router only ever returns UP replicas.
        self.lifecycles = [ReplicaLifecycle() for _ in range(n)]
        self.router.routable = self._replica_routable
        # The shared inter-host link draws faults from its own
        # hash-seeded stream — it belongs to no single host.
        self.net_faults: FaultInjector | None = None
        if fault_config is not None and fault_config.net_fault_rate > 0.0:
            self.net_faults = FaultInjector(
                replace(
                    fault_config,
                    seed=seed_for(fault_config.seed, "cluster-net"),
                    replica_schedule=None,
                )
            )
            self.net.fault_hook = self.net_faults
        # Lifecycle counters (see ClusterResult for meanings).
        self.crashes = 0
        self.restarts = 0
        self.drains = 0
        self.lost_turns = 0
        self.failovers = 0
        self.failover_retries = 0
        self.parked_turns = 0
        # Turns waiting out a downtime (naive restart mode), as
        # (session_id, original arrival time) in interruption order.
        self._parked: list[tuple[int, float]] = []
        # Optional span tracer (repro.obs): installed from outside via
        # SpanTracer.attach_cluster; pure observation of migrations.
        self.tracer: "SpanTracer | None" = None
        self.sanitized = sanitize if sanitize is not None else sanitize_enabled()
        if self.sanitized:
            install_cluster(self)

    def _partition_store(
        self, base: StoreConfig | None, n_instances: int
    ) -> StoreConfig | None:
        """Shard the store capacity evenly across replicas."""
        if base is None or n_instances == 1 or not self.cluster.partition_store:
            return base
        return replace(
            base,
            dram_bytes=base.dram_bytes // n_instances,
            ssd_bytes=base.ssd_bytes // n_instances,
            hbm_cache_bytes=base.hbm_cache_bytes // n_instances,
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> ClusterResult:
        """Replay ``trace`` against the cluster and return pooled results."""
        self.schedule_trace(trace)
        self.sim.run()
        return self.result()

    def schedule_trace(self, trace: Trace) -> None:
        """Schedule every session arrival (routing happens at arrival time,
        so load-based routers see the loads of the moment, not of time 0)."""
        if len(trace) == 0:
            raise ValueError("cannot run an empty trace")
        for conv in trace:
            self.sim.at(conv.arrival_time, self._arrival_starter(conv))
        for engine in self.engines:
            engine.schedule_maintenance()
        self._schedule_lifecycle()

    def result(self) -> ClusterResult:
        """Aggregate per-replica and cluster-level results after the run."""
        replicas = tuple(engine.result() for engine in self.engines)
        merged = MetricsCollector.merged([e.metrics for e in self.engines])
        store_stats = [r.store_stats for r in replicas if r.store_stats is not None]
        return ClusterResult(
            summary=merged.summarise(),
            replicas=replicas,
            router=self.cluster.router,
            n_instances=self.cluster.n_instances,
            migrations=sum(s.migrations_in for s in store_stats),
            migrated_bytes=sum(s.migrated_bytes_out for s in store_stats),
            scatter_drops=sum(s.scatter_drops for s in store_stats),
            net_bytes=self.net.bytes_moved,
            events_processed=self.sim.events_processed,
            crashes=self.crashes,
            restarts=self.restarts,
            drains=self.drains,
            lost_turns=self.lost_turns,
            failovers=self.failovers,
            failover_retries=self.failover_retries,
            parked_turns=self.parked_turns,
            failover_recompute_tokens=sum(
                engine.failover_recompute_tokens for engine in self.engines
            ),
            total_downtime_s=sum(
                life.total_downtime for life in self.lifecycles
            ),
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _replica_routable(self, index: int) -> bool:
        return self.lifecycles[index].routable

    def _retry_backoff(self, attempt: int) -> float:
        """Backoff before routing retry ``attempt`` (1-based), capped."""
        cfg = self.cluster
        return min(
            cfg.failover_backoff_cap_s,
            cfg.failover_backoff_s * (2 ** (attempt - 1)),
        )

    def _arrival_starter(self, conv: Conversation) -> Callable[[], None]:
        def start() -> None:
            self._start_arrival(conv, 1)

        return start

    def _start_arrival(self, conv: Conversation, attempt: int) -> None:
        try:
            index = self.router.route(conv.session_id, None)
        except NoRoutableReplica:
            # Every replica is down or draining; hold the arrival and
            # retry with capped exponential backoff until one restarts.
            self.failover_retries += 1
            self.sim.after(
                self._retry_backoff(attempt),
                lambda: self._start_arrival(conv, attempt + 1),
            )
            return
        self._home[conv.session_id] = index
        self.engines[index].start_session(conv)

    def _route_next_turn(self, source: ServingEngine, session: SessionState) -> None:
        """Route one returning session (installed as every replica's
        ``next_turn_hook``, firing when the user's think time elapses).

        ``source`` served the previous turn, but the session may have
        been re-homed since (a failover or drain while the user was
        thinking), so routing always starts from the current owner.
        """
        session_id = session.session_id
        home = self._home[session_id]
        owner = self.engines[home]
        if self.lifecycles[home].state is ReplicaState.DOWN:
            # The home replica crashed while the user was thinking.  The
            # router already knows (the crash handler marked it — no
            # detection delay), so fail the session over immediately, or
            # park the turn until restart when failover is disabled.
            now = self.sim.now
            if self.cluster.failover:
                self._failover_turn(session_id, now, now, 1)
            else:
                self._parked.append((session_id, now))
                self.parked_turns += 1
            return
        try:
            target_index = self.router.route(session_id, home)
        except NoRoutableReplica:
            self.failover_retries += 1
            self.sim.after(
                self.cluster.failover_backoff_s,
                lambda: self._route_next_turn(source, session),
            )
            return
        if target_index == home:
            owner.submit_next_turn(session)
            return
        target = self.engines[target_index]
        self._home[session_id] = target_index
        target.adopt_session(owner.release_session(session_id))
        # A draining home must preserve the KV ("migrate, then stop"),
        # even under routers that would normally scatter-drop it.
        self._move_kv(
            owner,
            target,
            session_id,
            force=self.lifecycles[home].state is ReplicaState.DRAINING,
        )
        target.submit_next_turn(session)

    def _move_kv(
        self,
        source: ServingEngine,
        target: ServingEngine,
        session_id: int,
        force: bool = False,
    ) -> None:
        """Reconcile KV placement after a session changed replicas.

        Affinity spills migrate the cache over the inter-host link (disk
        items are staged through the source SSD first); oblivious routers
        drop the stale copy instead — a truncation on the new replica
        would silently invalidate any remote leftover, so at most one
        store may ever hold a session's KV.  ``force`` migrates under any
        router: a draining replica's sessions take their KV with them.
        """
        if source.store is None or target.store is None:
            return
        if self.router.name is not RouterName.AFFINITY and not force:
            source.store.discard_stale(session_id)
            return
        # A shared-prefix session migrates its *reference*: the suffix item
        # moves, and the prefix travels with it only when the target does
        # not already hold a block for the same content hash (the whole
        # point of content addressing — the second migration is free).
        shared = source.store.shared_ref_of(session_id)
        item = source.store.extract(session_id)
        if item is None:
            return
        shared_hash: str | None = None
        shared_tokens = 0
        move_bytes = item.n_bytes
        if shared is not None:
            shared_hash, shared_tokens = shared
            if not target.store.has_shared(shared_hash):
                move_bytes += source.store.item_bytes(shared_tokens)
        now = self.sim.now
        link: Channel | ChannelPair = self.net
        if item.tier is Tier.DISK:
            link = ChannelPair(source.ssd, self.net)
        try:
            done = link.transfer(now, move_bytes)
        except FaultyTransfer:
            # The migrating copy is lost in transit; the next turn
            # recomputes its history at the target (graceful degradation).
            source.store.record_migration_loss()
            return
        if self.tracer is not None:
            self.tracer.span(
                "migrate",
                "cluster",
                now,
                done,
                lane="cluster-net",
                track="cluster",
                args={
                    "session": session_id,
                    "from": source.name,
                    "to": target.name,
                    "tokens": item.n_tokens,
                    "bytes": move_bytes,
                },
            )
        target.store.admit_migrated(
            session_id,
            item.n_tokens,
            now,
            ready_at=done,
            position_decoupled=item.position_decoupled,
            queue=target.queue,
            pinned=target.active_sessions,
            shared_hash=shared_hash,
            shared_tokens=shared_tokens,
        )

    # ------------------------------------------------------------------
    # Replica lifecycle (crash / restart / drain)
    # ------------------------------------------------------------------
    def _schedule_lifecycle(self) -> None:
        """Arm the run's replica crash/restart/drain events."""
        if self.schedule is None:
            return
        for crash in self.schedule.crashes:
            self.sim.at(crash.at, lambda c=crash: self._crash_replica(c))
            self.sim.at(
                crash.restart_at, lambda c=crash: self._restart_replica(c)
            )
        for drain in self.schedule.drains:
            self.sim.at(drain.at, lambda d=drain: self._begin_drain(d.replica))

    def _crash_replica(self, crash: ReplicaCrash) -> None:
        """Kill one replica: volatile KV and in-flight turns are gone.

        Interrupted turns are failed over to healthy peers (after the
        detection delay) or, with failover disabled, parked until the
        replica restarts.  Sessions mid-think keep their timers; their
        next turn is handled by :meth:`_route_next_turn` when it fires.
        """
        index = crash.replica
        life = self.lifecycles[index]
        if life.state in (ReplicaState.DOWN, ReplicaState.STOPPED):
            return  # already dead, or drained out of the cluster
        now = self.sim.now
        life.crash(now)
        self.crashes += 1
        interrupted = self.engines[index].crash(now)
        self.lost_turns += len(interrupted)
        if self.tracer is not None:
            self.tracer.span(
                "crash",
                "cluster",
                now,
                crash.restart_at,
                lane="lifecycle",
                track="cluster",
                args={
                    "replica": index,
                    "lost_turns": len(interrupted),
                    "downtime_s": crash.downtime,
                },
            )
        for request in interrupted:
            if self.cluster.failover:
                self.sim.after(
                    self.cluster.failover_detection_s,
                    lambda sid=request.session_id, at=request.arrival_time: (
                        self._failover_turn(sid, at, now, 1)
                    ),
                )
            else:
                self._parked.append((request.session_id, request.arrival_time))
                self.parked_turns += 1

    def _failover_turn(
        self,
        session_id: int,
        arrival_time: float,
        orphaned_at: float,
        attempt: int,
    ) -> None:
        """Re-route one turn orphaned by a crash to a healthy replica.

        Retries with capped exponential backoff while no replica is
        routable.  The resubmitted turn keeps its original arrival time
        (recorded queueing delay spans the outage) and carries the
        failover flag, so the new home recomputes the history — the
        surviving SSD copy is unreachable until the dead replica
        restarts, and exactly-one-copy forbids a second one.  If the home
        replica restarts before any peer frees up, the turn is served
        there normally against the re-admitted SSD copy.
        """
        home = self._home[session_id]
        owner = self.engines[home]
        session = owner.sessions[session_id]
        try:
            target_index = self.router.route(session_id, None)
        except NoRoutableReplica:
            self.failover_retries += 1
            self.sim.after(
                self._retry_backoff(attempt),
                lambda: self._failover_turn(
                    session_id, arrival_time, orphaned_at, attempt + 1
                ),
            )
            return
        target = self.engines[target_index]
        failed_over = target_index != home
        if failed_over:
            self._home[session_id] = target_index
            target.adopt_session(owner.release_session(session_id))
            # No KV moves: the dead replica's store is empty (volatile
            # wiped, SSD parked offline), and the restart-time
            # re-admission drops this session's copy.
            self.failovers += 1
            if self.tracer is not None:
                self.tracer.span(
                    "failover",
                    "cluster",
                    orphaned_at,
                    self.sim.now,
                    lane="lifecycle",
                    track="cluster",
                    args={
                        "session": session_id,
                        "from": home,
                        "to": target_index,
                        "retries": attempt - 1,
                    },
                )
        target.submit_next_turn(
            session, failover=failed_over, arrival_time=arrival_time
        )

    def _restart_replica(self, crash: ReplicaCrash) -> None:
        """Bring a crashed replica back: re-admit its surviving SSD KV
        (minus sessions that failed over meanwhile) and resubmit any
        turns parked through the downtime."""
        index = crash.replica
        life = self.lifecycles[index]
        if life.state is not ReplicaState.DOWN:
            return  # the matching crash was skipped
        now = self.sim.now
        life.restart(now)
        self.restarts += 1
        engine = self.engines[index]
        engine.restart(now, keep=lambda sid: self._home.get(sid) == index)
        if not self._parked:
            return
        still_parked: list[tuple[int, float]] = []
        for session_id, arrival in self._parked:
            if self._home.get(session_id) != index:
                still_parked.append((session_id, arrival))
                continue
            engine.submit_next_turn(
                engine.sessions[session_id], arrival_time=arrival
            )
        self._parked = still_parked

    def _begin_drain(self, index: int) -> None:
        """Start a graceful drain: stop admitting, then migrate out."""
        life = self.lifecycles[index]
        if life.state is not ReplicaState.UP:
            return  # down or already stopped; nothing to drain
        life.begin_drain(self.sim.now)
        self.drains += 1
        self._drain_step(index)

    def _drain_step(self, index: int) -> None:
        """One drain pass: migrate idle sessions out; poll until empty.

        Sessions with an in-flight turn finish it here first (a draining
        replica keeps serving what it admitted — it just takes no more);
        the periodic poll catches them once idle.  When only finished
        sessions remain, their leftover KV is dropped and the replica
        stops.
        """
        life = self.lifecycles[index]
        if life.state is not ReplicaState.DRAINING:
            return  # crashed mid-drain; the restart cancelled the drain
        engine = self.engines[index]
        busy = engine.active_sessions
        for session_id in sorted(engine.sessions):
            session = engine.sessions[session_id]
            if session.finished or session_id in busy:
                continue
            if engine.queue.position(session_id) is not None:
                continue
            try:
                target_index = self.router.route(session_id, None)
            except NoRoutableReplica:
                break  # no healthy peer right now; retry at the next poll
            target = self.engines[target_index]
            self._home[session_id] = target_index
            target.adopt_session(engine.release_session(session_id))
            self._move_kv(engine, target, session_id, force=True)
        if any(not s.finished for s in engine.sessions.values()):
            self.sim.after(
                self.cluster.drain_poll_s, lambda: self._drain_step(index)
            )
            return
        if engine.store is not None:
            engine.store.decommission()
        now = self.sim.now
        started = life.drain_started_at
        life.finish_drain(now)
        if self.tracer is not None:
            self.tracer.span(
                "drain",
                "cluster",
                started if started is not None else now,
                now,
                lane="lifecycle",
                track="cluster",
                args={"replica": index},
            )
