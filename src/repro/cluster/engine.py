"""Multi-instance cluster serving on one shared discrete-event simulator.

A :class:`ClusterEngine` runs N :class:`~repro.engine.ServingEngine`
replicas — each a full multi-GPU host with its own PCIe links, SSD and
AttentionStore partition — against a single simulated clock, fronted by a
pluggable session router.  Sessions arrive at the cluster, not a replica:
the router picks a replica per turn, and when it moves a returning session
away from the replica holding its KV cache the cluster either migrates the
cache over a modelled inter-host network link (affinity routing) or drops
the now-stale copy (locality-oblivious routers), preserving the invariant
that a session's KV lives in at most one store.

With ``n_instances=1`` every router degenerates to "route everything to
replica 0" and the cluster reproduces a standalone engine bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from ..config import EngineConfig, HardwareConfig, ServingMode, StoreConfig
from ..engine.engine import RunResult, ServingEngine, TurnCounter
from ..engine.metrics import MetricsCollector, RunSummary
from ..engine.session import SessionState
from ..faults import FaultConfig
from ..models import ModelSpec
from ..sanitize import install_cluster, sanitize_enabled
from ..sim.channel import Channel, ChannelPair, FaultyTransfer
from ..sim.loop import Simulator
from ..store.item import Tier
from ..workload.trace import Conversation, Trace
from .config import ClusterConfig, RouterName
from .router import make_router

if TYPE_CHECKING:
    from ..obs.spans import SpanTracer


@dataclass(frozen=True, slots=True)
class ClusterResult:
    """Aggregate outcome of one cluster serving run.

    ``summary`` pools every replica's per-turn records into one
    cluster-level :class:`~repro.engine.RunSummary`; ``replicas`` keeps
    the per-replica results for imbalance analysis.
    """

    summary: RunSummary
    replicas: tuple[RunResult, ...]
    router: RouterName
    n_instances: int
    #: KV caches moved between replicas (affinity spills).
    migrations: int
    migrated_bytes: int
    #: Stale KV copies dropped on a locality-oblivious reroute.
    scatter_drops: int
    #: Bytes carried by the inter-host network link.
    net_bytes: int
    events_processed: int

    @property
    def hit_rate(self) -> float:
        """Cluster-wide AttentionStore hit rate over lookups."""
        return self.summary.hit_rate

    @property
    def aggregate_prefill_throughput(self) -> float:
        """Prompt tokens served per *wall-clock* second across the cluster.

        Unlike :attr:`RunSummary.prefill_throughput` (tokens per GPU-busy
        second, a per-device efficiency figure), this scales with replica
        count and is the scaling metric of the cluster experiment.
        """
        if self.summary.makespan <= 0:
            return 0.0
        return self.summary.prompt_tokens_total / self.summary.makespan


class ClusterEngine:
    """N serving-engine replicas behind a session router, one event loop."""

    def __init__(
        self,
        model: ModelSpec,
        cluster: ClusterConfig | None = None,
        hardware: HardwareConfig | None = None,
        engine_config: EngineConfig | None = None,
        store_config: StoreConfig | None = None,
        warmup_turns: int = 0,
        fault_config: FaultConfig | None = None,
        streaming_metrics: bool = False,
        sanitize: bool | None = None,
    ) -> None:
        self.cluster = cluster or ClusterConfig()
        n = self.cluster.n_instances
        self.model = model
        hardware = hardware or HardwareConfig().for_model(model)
        engine_config = engine_config or EngineConfig(
            batch_size=model.default_batch_size
        )
        if engine_config.mode is ServingMode.CACHED:
            base_store: StoreConfig | None = store_config or StoreConfig()
        else:
            base_store = None

        self.sim = Simulator()
        self.turn_counter = TurnCounter()
        # One shared inter-host link: concurrent migrations contend on it.
        self.net = Channel("cluster-net", self.cluster.net_bandwidth)
        self.engines: list[ServingEngine] = []
        for i in range(n):
            replica_faults = fault_config
            if fault_config is not None and n > 1:
                # Independent fault streams per host, still deterministic.
                replica_faults = replace(fault_config, seed=fault_config.seed + i)
            self.engines.append(
                ServingEngine(
                    model,
                    hardware=hardware,
                    engine_config=engine_config,
                    store_config=self._partition_store(base_store, n),
                    warmup_turns=warmup_turns,
                    fault_config=replica_faults,
                    sim=self.sim,
                    pcie_h2d=Channel(f"pcie-h2d-{i}", hardware.pcie_bandwidth),
                    pcie_d2h=Channel(f"pcie-d2h-{i}", hardware.pcie_bandwidth),
                    ssd=Channel("ssd", hardware.ssd_bandwidth),
                    turn_counter=self.turn_counter,
                    streaming_metrics=streaming_metrics,
                    name=f"replica-{i}",
                )
            )
        for engine in self.engines:
            engine.next_turn_hook = self._route_next_turn
        self.router = make_router(
            self.cluster.router,
            self.engines,
            spill_tokens=self.cluster.affinity_spill_tokens,
        )
        # Which replica served each session's previous turn — the
        # affinity router's cache-placement oracle (KV lives in at most
        # one store, and always the home replica's).
        self._home: dict[int, int] = {}
        # Optional span tracer (repro.obs): installed from outside via
        # SpanTracer.attach_cluster; pure observation of migrations.
        self.tracer: "SpanTracer | None" = None
        self.sanitized = sanitize if sanitize is not None else sanitize_enabled()
        if self.sanitized:
            install_cluster(self)

    def _partition_store(
        self, base: StoreConfig | None, n_instances: int
    ) -> StoreConfig | None:
        """Shard the store capacity evenly across replicas."""
        if base is None or n_instances == 1 or not self.cluster.partition_store:
            return base
        return replace(
            base,
            dram_bytes=base.dram_bytes // n_instances,
            ssd_bytes=base.ssd_bytes // n_instances,
            hbm_cache_bytes=base.hbm_cache_bytes // n_instances,
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> ClusterResult:
        """Replay ``trace`` against the cluster and return pooled results."""
        self.schedule_trace(trace)
        self.sim.run()
        return self.result()

    def schedule_trace(self, trace: Trace) -> None:
        """Schedule every session arrival (routing happens at arrival time,
        so load-based routers see the loads of the moment, not of time 0)."""
        if len(trace) == 0:
            raise ValueError("cannot run an empty trace")
        for conv in trace:
            self.sim.at(conv.arrival_time, self._arrival_starter(conv))
        for engine in self.engines:
            engine.schedule_maintenance()

    def result(self) -> ClusterResult:
        """Aggregate per-replica and cluster-level results after the run."""
        replicas = tuple(engine.result() for engine in self.engines)
        merged = MetricsCollector.merged([e.metrics for e in self.engines])
        store_stats = [r.store_stats for r in replicas if r.store_stats is not None]
        return ClusterResult(
            summary=merged.summarise(),
            replicas=replicas,
            router=self.cluster.router,
            n_instances=self.cluster.n_instances,
            migrations=sum(s.migrations_in for s in store_stats),
            migrated_bytes=sum(s.migrated_bytes_out for s in store_stats),
            scatter_drops=sum(s.scatter_drops for s in store_stats),
            net_bytes=self.net.bytes_moved,
            events_processed=self.sim.events_processed,
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _arrival_starter(self, conv: Conversation) -> Callable[[], None]:
        def start() -> None:
            index = self.router.route(conv.session_id, None)
            self._home[conv.session_id] = index
            self.engines[index].start_session(conv)

        return start

    def _route_next_turn(self, source: ServingEngine, session: SessionState) -> None:
        """Route one returning session (installed as every replica's
        ``next_turn_hook``, firing when the user's think time elapses)."""
        session_id = session.session_id
        home = self._home[session_id]
        target_index = self.router.route(session_id, home)
        if target_index == home:
            source.submit_next_turn(session)
            return
        target = self.engines[target_index]
        self._home[session_id] = target_index
        target.adopt_session(source.release_session(session_id))
        self._move_kv(source, target, session_id)
        target.submit_next_turn(session)

    def _move_kv(
        self, source: ServingEngine, target: ServingEngine, session_id: int
    ) -> None:
        """Reconcile KV placement after a session changed replicas.

        Affinity spills migrate the cache over the inter-host link (disk
        items are staged through the source SSD first); oblivious routers
        drop the stale copy instead — a truncation on the new replica
        would silently invalidate any remote leftover, so at most one
        store may ever hold a session's KV.
        """
        if source.store is None or target.store is None:
            return
        if self.router.name is not RouterName.AFFINITY:
            source.store.discard_stale(session_id)
            return
        item = source.store.extract(session_id)
        if item is None:
            return
        now = self.sim.now
        link: Channel | ChannelPair = self.net
        if item.tier is Tier.DISK:
            link = ChannelPair(source.ssd, self.net)
        try:
            done = link.transfer(now, item.n_bytes)
        except FaultyTransfer:
            # The migrating copy is lost in transit; the next turn
            # recomputes its history at the target (graceful degradation).
            source.store.record_migration_loss()
            return
        if self.tracer is not None:
            self.tracer.span(
                "migrate",
                "cluster",
                now,
                done,
                lane="cluster-net",
                track="cluster",
                args={
                    "session": session_id,
                    "from": source.name,
                    "to": target.name,
                    "tokens": item.n_tokens,
                    "bytes": item.n_bytes,
                },
            )
        target.store.admit_migrated(
            session_id,
            item.n_tokens,
            now,
            ready_at=done,
            position_decoupled=item.position_decoupled,
            queue=target.queue,
            pinned=target.active_sessions,
        )
