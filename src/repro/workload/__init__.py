"""Synthetic multi-turn conversation workloads (ShareGPT-like)."""

from .arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    make_arrival_process,
)
from .generator import generate_trace, stream_trace
from .spec import LognormalSpec, WorkloadSpec
from .stats import (
    TurnStats,
    fraction_multi_turn,
    mean_turns,
    per_turn_token_stats,
    repetition_fraction,
    session_length_percentiles,
    session_length_survival,
    turn_count_histogram,
)
from .trace import Conversation, Trace, Turn, merge_traces

__all__ = [
    "ArrivalProcess",
    "Conversation",
    "DiurnalArrivals",
    "LognormalSpec",
    "MMPPArrivals",
    "PoissonArrivals",
    "Trace",
    "Turn",
    "TurnStats",
    "WorkloadSpec",
    "fraction_multi_turn",
    "generate_trace",
    "make_arrival_process",
    "mean_turns",
    "merge_traces",
    "per_turn_token_stats",
    "repetition_fraction",
    "session_length_percentiles",
    "session_length_survival",
    "stream_trace",
    "turn_count_histogram",
]
