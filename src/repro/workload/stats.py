"""Trace statistics mirroring the paper's workload analysis.

Provides the numbers behind Figure 2 (turn-count and session-length
distributions) and Figure 4a (historical- vs new-token shares per turn).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from .trace import Trace


@dataclass(frozen=True)
class TurnStats:
    """Per-turn-index token statistics (Figure 4a).

    ``mean_history`` / ``mean_new`` are the average historical and new
    (question) token counts observed at each turn index, and
    ``history_fraction`` is history / (history + new).
    """

    turn_index: int
    mean_history: float
    mean_new: float
    n_observations: int

    @property
    def history_fraction(self) -> float:
        total = self.mean_history + self.mean_new
        return self.mean_history / total if total else 0.0


def turn_count_histogram(trace: Trace) -> dict[int, int]:
    """Number of conversations per turn count (Figure 2a)."""
    return dict(sorted(Counter(c.n_turns for c in trace).items()))


def fraction_multi_turn(trace: Trace) -> float:
    """Share of conversations with more than one turn (paper: 0.73)."""
    if not len(trace):
        raise ValueError("empty trace")
    return sum(c.is_multi_turn for c in trace) / len(trace)


def mean_turns(trace: Trace) -> float:
    """Average turns per conversation (paper: 5.75)."""
    if not len(trace):
        raise ValueError("empty trace")
    return trace.n_turns_total / len(trace)


def session_length_survival(trace: Trace, thresholds: list[int]) -> dict[int, float]:
    """Fraction of sessions longer than each threshold (Figure 2b).

    The paper reports 47 % of sessions above 2K tokens and 30 % above 4K.
    """
    if not len(trace):
        raise ValueError("empty trace")
    lengths = np.array([c.total_tokens for c in trace])
    return {t: float(np.mean(lengths > t)) for t in thresholds}


def session_length_percentiles(
    trace: Trace, percentiles: list[float] | None = None
) -> dict[float, float]:
    """Percentiles of the session-length distribution."""
    if percentiles is None:
        percentiles = [50.0, 90.0, 99.0]
    lengths = np.array([c.total_tokens for c in trace])
    values = np.percentile(lengths, percentiles)
    return dict(zip(percentiles, (float(v) for v in values)))


def per_turn_token_stats(trace: Trace, max_turn: int = 20) -> list[TurnStats]:
    """Historical vs new token counts by turn index (Figure 4a).

    For turn index ``j`` (0-based), the history is everything said in turns
    ``0..j-1`` and the new tokens are the turn-``j`` user message.
    """
    history_sums = np.zeros(max_turn)
    new_sums = np.zeros(max_turn)
    counts = np.zeros(max_turn, dtype=np.int64)
    for conv in trace:
        upto = min(conv.n_turns, max_turn)
        history = 0
        for j in range(upto):
            history_sums[j] += history
            new_sums[j] += conv.turns[j].q_tokens
            counts[j] += 1
            history += conv.turns[j].total_tokens
    return [
        TurnStats(
            turn_index=j,
            mean_history=float(history_sums[j] / counts[j]),
            mean_new=float(new_sums[j] / counts[j]),
            n_observations=int(counts[j]),
        )
        for j in range(max_turn)
        if counts[j] > 0
    ]


def repetition_fraction(trace: Trace) -> float:
    """Share of all prefilled tokens that are recomputed history under RE.

    Under recomputation, turn ``j`` prefills ``history + q_j`` tokens, of
    which ``history`` are repeats.  This is the aggregate version of the
    paper's "up to 99 % of prefilling cost is repetitive" observation.
    """
    repeated = 0
    total = 0
    for conv in trace:
        history = 0
        for turn in conv.turns:
            repeated += history
            total += history + turn.q_tokens
            history += turn.total_tokens
    return repeated / total if total else 0.0
