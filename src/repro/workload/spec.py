"""Statistical specification of a ShareGPT-like workload.

The real ShareGPT dataset is not shipped with this reproduction; instead we
generate synthetic traces whose marginals match the statistics the paper
publishes about ShareGPT:

* 73 % of conversations are multi-turn (Figure 2a);
* the mean number of turns per conversation is 5.75 (Section 4.2);
* 47 % of sessions exceed 2K tokens and 30 % exceed 4K (Figure 2b);
* session arrivals follow a Poisson process with rate λ (Section 4.1,
  default λ = 1.0 sessions/second).

Turn counts are drawn as: single-turn with probability ``1 - p_multi``,
otherwise ``2 + Geometric(p_turn)`` capped at ``max_turns`` (the paper's
Figure 2a excludes conversations over 40 turns).  Per-turn question and
answer lengths are lognormal, which reproduces the heavy right tail of the
session-length distribution in Figure 2b.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class LognormalSpec:
    """A lognormal distribution parameterised by its underlying normal."""

    mu: float
    sigma: float
    minimum: int = 1
    maximum: int = 8192

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")
        if self.minimum < 1:
            raise ValueError(f"minimum must be >= 1, got {self.minimum}")
        if self.maximum < self.minimum:
            raise ValueError("maximum must be >= minimum")

    @property
    def mean(self) -> float:
        """Mean of the (untruncated) lognormal."""
        return math.exp(self.mu + self.sigma**2 / 2.0)


@dataclass(frozen=True)
class WorkloadSpec:
    """Knobs defining a synthetic multi-turn conversation workload.

    Attributes:
        n_sessions: number of conversation sessions to generate.
        arrival_rate: Poisson session-arrival rate (sessions/second).
        p_multi_turn: probability a conversation has more than one turn.
        mean_turns: target mean turns per conversation (drives the geometric
            parameter of the multi-turn branch).
        max_turns: truncation point for the turn-count distribution.
        q_tokens: distribution of user-message lengths.
        a_tokens: distribution of response lengths.
        think_time_mean: mean user think time between turns, seconds.
        think_time_sigma: lognormal sigma of the think time.
        seed: RNG seed for reproducible traces.
        shared_prefix_fraction: fraction of sessions whose first turn
            starts with a fleet-shared prefix (system prompt / few-shot
            template / RAG preamble).  0 disables sharing entirely and
            generates byte-identical traces to a spec without the knob.
        shared_prefix_len: tokens in each shared prefix template, added
            on top of the drawn first-turn question length.
        n_shared_prefixes: number of distinct prefix templates the
            sharing sessions draw from (uniformly).
    """

    n_sessions: int = 9000
    arrival_rate: float = 1.0
    p_multi_turn: float = 0.73
    mean_turns: float = 5.75
    max_turns: int = 40
    q_tokens: LognormalSpec = LognormalSpec(mu=4.4, sigma=0.9, minimum=4, maximum=4096)
    a_tokens: LognormalSpec = LognormalSpec(mu=5.52, sigma=1.1, minimum=8, maximum=4096)
    think_time_mean: float = 60.0
    think_time_sigma: float = 0.8
    seed: int = 2024
    shared_prefix_fraction: float = 0.0
    shared_prefix_len: int = 0
    n_shared_prefixes: int = 1

    def __post_init__(self) -> None:
        if self.n_sessions <= 0:
            raise ValueError(f"n_sessions must be positive, got {self.n_sessions}")
        if self.arrival_rate <= 0:
            raise ValueError(
                f"arrival_rate must be positive, got {self.arrival_rate}"
            )
        if not (0.0 <= self.p_multi_turn <= 1.0):
            raise ValueError(
                f"p_multi_turn must be in [0, 1], got {self.p_multi_turn}"
            )
        if self.max_turns < 2:
            raise ValueError(f"max_turns must be >= 2, got {self.max_turns}")
        if self.mean_turns <= 1.0:
            raise ValueError(f"mean_turns must exceed 1, got {self.mean_turns}")
        if self.multi_turn_mean < 2.0:
            raise ValueError(
                "mean_turns is too small for the configured p_multi_turn: the "
                "multi-turn branch would need a mean below 2 turns"
            )
        if self.think_time_mean <= 0:
            raise ValueError(
                f"think_time_mean must be positive, got {self.think_time_mean}"
            )
        if not (0.0 <= self.shared_prefix_fraction <= 1.0):
            raise ValueError(
                "shared_prefix_fraction must be in [0, 1], got "
                f"{self.shared_prefix_fraction}"
            )
        if self.shared_prefix_len < 0:
            raise ValueError(
                f"shared_prefix_len must be >= 0, got {self.shared_prefix_len}"
            )
        if self.shared_prefix_fraction > 0 and self.shared_prefix_len == 0:
            raise ValueError(
                "shared_prefix_fraction > 0 requires a positive "
                "shared_prefix_len"
            )
        if self.n_shared_prefixes < 1:
            raise ValueError(
                f"n_shared_prefixes must be >= 1, got {self.n_shared_prefixes}"
            )

    @property
    def multi_turn_mean(self) -> float:
        """Mean turn count of the multi-turn branch implied by the targets.

        With ``E[turns] = (1 - p) * 1 + p * m`` solved for ``m``.
        """
        if self.p_multi_turn == 0:
            return 2.0
        return (self.mean_turns - (1.0 - self.p_multi_turn)) / self.p_multi_turn

    @property
    def geometric_p(self) -> float:
        """Success probability of the ``2 + Geometric(p)`` turn draw.

        A geometric on {0, 1, ...} with success probability p has mean
        ``(1 - p) / p``; we need ``2 + (1 - p) / p = multi_turn_mean``.
        """
        return 1.0 / (self.multi_turn_mean - 1.0)

    @property
    def mean_turn_tokens(self) -> float:
        """Expected question + answer tokens in one turn (untruncated)."""
        return self.q_tokens.mean + self.a_tokens.mean

    @property
    def think_time_mu(self) -> float:
        """Underlying-normal mu giving the configured lognormal mean."""
        return math.log(self.think_time_mean) - self.think_time_sigma**2 / 2.0
