"""Synthetic ShareGPT-like trace generation.

See :mod:`repro.workload.spec` for the distributional assumptions and the
paper statistics they are fit to.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from .arrivals import ArrivalProcess, PoissonArrivals
from .spec import LognormalSpec, WorkloadSpec
from .trace import Conversation, Trace, Turn


def _draw_lengths(rng: np.random.Generator, spec: LognormalSpec, n: int) -> np.ndarray:
    """Draw ``n`` integer token lengths from a clipped lognormal."""
    raw = rng.lognormal(mean=spec.mu, sigma=spec.sigma, size=n)
    return np.clip(np.rint(raw).astype(np.int64), spec.minimum, spec.maximum)


def _draw_turn_counts(rng: np.random.Generator, spec: WorkloadSpec, n: int) -> np.ndarray:
    """Draw turn counts: 1 w.p. (1 - p_multi), else 2 + Geometric."""
    multi = rng.random(n) < spec.p_multi_turn
    # numpy's geometric is on {1, 2, ...} with mean 1/p; shift to {0, 1, ...}.
    extra = rng.geometric(spec.geometric_p, size=n) - 1
    counts = np.where(multi, 2 + extra, 1)
    return np.minimum(counts, spec.max_turns)


def generate_trace(
    spec: WorkloadSpec | None = None,
    arrival_process: ArrivalProcess | None = None,
    **overrides: Any,
) -> Trace:
    """Generate a synthetic conversation trace.

    Args:
        spec: workload specification; defaults to the paper's ShareGPT-like
            settings.  Keyword ``overrides`` replace individual fields, e.g.
            ``generate_trace(n_sessions=500, seed=7)``.
        arrival_process: session arrival process; defaults to the paper's
            Poisson process at ``spec.arrival_rate`` (see
            :mod:`repro.workload.arrivals` for bursty/diurnal options).

    Returns:
        A :class:`~repro.workload.trace.Trace` with ``spec.n_sessions``
        conversations and lognormal turn lengths.

    The returned trace is fully materialised — every conversation object
    exists before the engine sees the first arrival.  For replays too
    large to hold in memory, :func:`stream_trace` generates the same
    *kind* of workload lazily (block-seeded, so it is a different random
    sequence for the same seed) and can be passed straight to
    ``ServingEngine.run``.
    """
    if spec is None:
        spec = WorkloadSpec()
    if overrides:
        from dataclasses import replace

        spec = replace(spec, **overrides)

    rng = np.random.default_rng(spec.seed)
    n = spec.n_sessions

    if arrival_process is None:
        arrival_process = PoissonArrivals(rate=spec.arrival_rate)
    arrivals = arrival_process.sample(n, rng)
    turn_counts = _draw_turn_counts(rng, spec, n)

    total_turns = int(turn_counts.sum())
    q_lengths = _draw_lengths(rng, spec.q_tokens, total_turns)
    a_lengths = _draw_lengths(rng, spec.a_tokens, total_turns)
    think_times = rng.lognormal(
        mean=spec.think_time_mu, sigma=spec.think_time_sigma, size=total_turns
    )
    # Shared-prefix draws come *after* every pre-existing draw and only
    # when sharing is on: a share-free spec consumes the exact same RNG
    # stream as before the knob existed (bit-identical traces).
    shared_flags, prefix_ids = _draw_shared_prefixes(rng, spec, n)

    conversations: list[Conversation] = []
    cursor = 0
    for session_id in range(n):
        k = int(turn_counts[session_id])
        prefix_tokens = (
            spec.shared_prefix_len if bool(shared_flags[session_id]) else 0
        )
        turns = tuple(
            Turn(
                q_tokens=int(q_lengths[cursor + j])
                + (prefix_tokens if j == 0 else 0),
                a_tokens=int(a_lengths[cursor + j]),
                think_time=0.0 if j == 0 else float(think_times[cursor + j]),
            )
            for j in range(k)
        )
        cursor += k
        conversations.append(
            Conversation(
                session_id=session_id,
                arrival_time=float(arrivals[session_id]),
                turns=turns,
                shared_prefix_id=int(prefix_ids[session_id]) if prefix_tokens else 0,
                shared_prefix_tokens=prefix_tokens,
            )
        )

    metadata = {
        "generator": "repro.workload.generator",
        "n_sessions": spec.n_sessions,
        "arrival_rate": spec.arrival_rate,
        "arrival_process": type(arrival_process).__name__,
        "seed": spec.seed,
    }
    if spec.shared_prefix_fraction > 0:
        metadata["shared_prefix_fraction"] = spec.shared_prefix_fraction
        metadata["shared_prefix_len"] = spec.shared_prefix_len
        metadata["n_shared_prefixes"] = spec.n_shared_prefixes
    return Trace(conversations=conversations, metadata=metadata)


def _draw_shared_prefixes(
    rng: np.random.Generator, spec: WorkloadSpec, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Which sessions share a prefix, and which template each one uses.

    The prefix tokens are *added on top of* the drawn first-turn question
    length (a template prepends to whatever the user asks), so the
    non-prefix draws are untouched and remain comparable across share
    ratios.  With sharing off this consumes no RNG at all.
    """
    if spec.shared_prefix_fraction <= 0:
        zeros = np.zeros(n, dtype=np.int64)
        return zeros, zeros
    shared_flags = rng.random(n) < spec.shared_prefix_fraction
    prefix_ids = rng.integers(0, spec.n_shared_prefixes, size=n)
    return shared_flags, prefix_ids


#: Sessions drawn per block by :func:`stream_trace`.  Large enough that
#: the vectorised numpy draws amortise, small enough that one block is
#: negligible next to the engine's live-session state.
DEFAULT_STREAM_BLOCK = 4096


def stream_trace(
    spec: WorkloadSpec | None = None,
    *,
    block_sessions: int = DEFAULT_STREAM_BLOCK,
    **overrides: Any,
) -> Iterator[Conversation]:
    """Generate a conversation workload lazily, in arrival order.

    Yields the same *kind* of workload as :func:`generate_trace` — same
    turn-count, token-length and think-time distributions — but draws it
    in fixed-size blocks from per-block random substreams, so:

    * **O(block) memory** — at most one block of numpy draws exists at a
      time; the conversations themselves are yielded one by one and can
      be dropped by the consumer as sessions finish.  Paired with the
      engine's streaming ``schedule_trace`` path, a 100K-session replay
      never materialises more than the live sessions plus one block.
    * **Prefix stability** — block ``b`` is drawn from the substream
      ``SeedSequence(seed, spawn_key=(b,))``, independent of
      ``n_sessions``.  Streams with the same seed agree conversation-
      for-conversation on their common prefix, so a short smoke run is
      a prefix of the full run.
    * **Monotone arrivals** — arrivals are a Poisson process (cumulative
      exponential gaps, the paper's baseline) whose offset carries
      across blocks, so yielded arrival times never decrease — the
      ordering contract the engine's streamed-arrival chain validates.

    Because the substreams differ from :func:`generate_trace`'s single
    sequential stream, the two functions produce *different* (equally
    distributed) workloads for the same seed.  Materialising a stream
    (``Trace(conversations=list(stream_trace(...)))``) and replaying it
    gives bit-identical results to feeding the stream directly.

    Args:
        spec: workload specification (defaults to the paper's settings);
            keyword ``overrides`` replace individual fields.  Arrivals
            are always Poisson at ``spec.arrival_rate`` — bursty/diurnal
            processes sample sequentially and are not prefix-stable, so
            they remain exclusive to :func:`generate_trace`.
        block_sessions: sessions drawn per substream block.
    """
    if spec is None:
        spec = WorkloadSpec()
    if overrides:
        from dataclasses import replace

        spec = replace(spec, **overrides)
    if block_sessions <= 0:
        raise ValueError(f"block_sessions must be positive, got {block_sessions}")

    n = spec.n_sessions
    mean_gap = 1.0 / spec.arrival_rate
    arrival_offset = 0.0
    session_id = 0
    for block_index in range(0, -(-n // block_sessions)):
        block_n = min(block_sessions, n - block_index * block_sessions)
        rng = np.random.default_rng(
            np.random.SeedSequence(spec.seed, spawn_key=(block_index,))
        )
        # Same draw order as generate_trace, scoped to this block.  Every
        # draw uses the *full* block size even when only a prefix is
        # yielded (the final block of a short stream): sizing a draw by
        # ``block_n`` would leave the substream at a different position
        # for the next draw and break prefix stability against a longer
        # stream that fills the same block.
        arrivals = arrival_offset + np.cumsum(
            rng.exponential(mean_gap, size=block_sessions)
        )
        arrival_offset = float(arrivals[-1])
        turn_counts = _draw_turn_counts(rng, spec, block_sessions)
        total_turns = int(turn_counts.sum())
        q_lengths = _draw_lengths(rng, spec.q_tokens, total_turns)
        a_lengths = _draw_lengths(rng, spec.a_tokens, total_turns)
        think_times = rng.lognormal(
            mean=spec.think_time_mu, sigma=spec.think_time_sigma, size=total_turns
        )
        # Appended after all pre-existing draws and gated on the knob —
        # full-block-sized like everything else, so the substream position
        # (hence prefix stability) is preserved.
        shared_flags, prefix_ids = _draw_shared_prefixes(
            rng, spec, block_sessions
        )
        cursor = 0
        for i in range(block_n):
            k = int(turn_counts[i])
            prefix_tokens = spec.shared_prefix_len if bool(shared_flags[i]) else 0
            turns = tuple(
                Turn(
                    q_tokens=int(q_lengths[cursor + j])
                    + (prefix_tokens if j == 0 else 0),
                    a_tokens=int(a_lengths[cursor + j]),
                    think_time=0.0 if j == 0 else float(think_times[cursor + j]),
                )
                for j in range(k)
            )
            cursor += k
            yield Conversation(
                session_id=session_id,
                arrival_time=float(arrivals[i]),
                turns=turns,
                shared_prefix_id=int(prefix_ids[i]) if prefix_tokens else 0,
                shared_prefix_tokens=prefix_tokens,
            )
            session_id += 1
