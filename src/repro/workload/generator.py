"""Synthetic ShareGPT-like trace generation.

See :mod:`repro.workload.spec` for the distributional assumptions and the
paper statistics they are fit to.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .arrivals import ArrivalProcess, PoissonArrivals
from .spec import LognormalSpec, WorkloadSpec
from .trace import Conversation, Trace, Turn


def _draw_lengths(rng: np.random.Generator, spec: LognormalSpec, n: int) -> np.ndarray:
    """Draw ``n`` integer token lengths from a clipped lognormal."""
    raw = rng.lognormal(mean=spec.mu, sigma=spec.sigma, size=n)
    return np.clip(np.rint(raw).astype(np.int64), spec.minimum, spec.maximum)


def _draw_turn_counts(rng: np.random.Generator, spec: WorkloadSpec, n: int) -> np.ndarray:
    """Draw turn counts: 1 w.p. (1 - p_multi), else 2 + Geometric."""
    multi = rng.random(n) < spec.p_multi_turn
    # numpy's geometric is on {1, 2, ...} with mean 1/p; shift to {0, 1, ...}.
    extra = rng.geometric(spec.geometric_p, size=n) - 1
    counts = np.where(multi, 2 + extra, 1)
    return np.minimum(counts, spec.max_turns)


def generate_trace(
    spec: WorkloadSpec | None = None,
    arrival_process: ArrivalProcess | None = None,
    **overrides: Any,
) -> Trace:
    """Generate a synthetic conversation trace.

    Args:
        spec: workload specification; defaults to the paper's ShareGPT-like
            settings.  Keyword ``overrides`` replace individual fields, e.g.
            ``generate_trace(n_sessions=500, seed=7)``.
        arrival_process: session arrival process; defaults to the paper's
            Poisson process at ``spec.arrival_rate`` (see
            :mod:`repro.workload.arrivals` for bursty/diurnal options).

    Returns:
        A :class:`~repro.workload.trace.Trace` with ``spec.n_sessions``
        conversations and lognormal turn lengths.
    """
    if spec is None:
        spec = WorkloadSpec()
    if overrides:
        from dataclasses import replace

        spec = replace(spec, **overrides)

    rng = np.random.default_rng(spec.seed)
    n = spec.n_sessions

    if arrival_process is None:
        arrival_process = PoissonArrivals(rate=spec.arrival_rate)
    arrivals = arrival_process.sample(n, rng)
    turn_counts = _draw_turn_counts(rng, spec, n)

    total_turns = int(turn_counts.sum())
    q_lengths = _draw_lengths(rng, spec.q_tokens, total_turns)
    a_lengths = _draw_lengths(rng, spec.a_tokens, total_turns)
    think_times = rng.lognormal(
        mean=spec.think_time_mu, sigma=spec.think_time_sigma, size=total_turns
    )

    conversations: list[Conversation] = []
    cursor = 0
    for session_id in range(n):
        k = int(turn_counts[session_id])
        turns = tuple(
            Turn(
                q_tokens=int(q_lengths[cursor + j]),
                a_tokens=int(a_lengths[cursor + j]),
                think_time=0.0 if j == 0 else float(think_times[cursor + j]),
            )
            for j in range(k)
        )
        cursor += k
        conversations.append(
            Conversation(
                session_id=session_id,
                arrival_time=float(arrivals[session_id]),
                turns=turns,
            )
        )

    return Trace(
        conversations=conversations,
        metadata={
            "generator": "repro.workload.generator",
            "n_sessions": spec.n_sessions,
            "arrival_rate": spec.arrival_rate,
            "arrival_process": type(arrival_process).__name__,
            "seed": spec.seed,
        },
    )
