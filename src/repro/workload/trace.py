"""Conversation trace data model.

A *trace* is the workload input to the serving simulator: a set of
conversation sessions, each with an arrival time and a sequence of turns.
Each turn carries the number of user-prompt tokens (``q_tokens``), the
number of response tokens the model will generate (``a_tokens``) and the
user *think time* — the delay between receiving the previous response and
sending this turn's message.  Turn arrival times therefore depend on service
completion and are computed by the engine, not stored in the trace.

Traces serialise to and from JSON so that generated workloads can be saved
and replayed exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class Turn:
    """One conversation turn: a user message and the model's response.

    Attributes:
        q_tokens: tokens in the user's new message.
        a_tokens: tokens in the model's response.
        think_time: seconds between the previous response finishing and this
            turn's request being issued (0 for the first turn).
    """

    q_tokens: int
    a_tokens: int
    think_time: float = 0.0

    def __post_init__(self) -> None:
        if self.q_tokens <= 0:
            raise ValueError(f"q_tokens must be positive, got {self.q_tokens}")
        if self.a_tokens <= 0:
            raise ValueError(f"a_tokens must be positive, got {self.a_tokens}")
        if self.think_time < 0:
            raise ValueError(f"think_time must be >= 0, got {self.think_time}")

    @property
    def total_tokens(self) -> int:
        return self.q_tokens + self.a_tokens


@dataclass(frozen=True, slots=True)
class Conversation:
    """A multi-turn conversation session.

    Attributes:
        session_id: unique identifier within the trace.
        arrival_time: simulated wall-clock second when turn 0 arrives.
        turns: the conversation's turns in order.
        shared_prefix_id: which fleet-shared prefix template the first
            turn starts with (meaningful only with a positive
            ``shared_prefix_tokens``).
        shared_prefix_tokens: leading tokens of turn 0's question that are
            identical across every session using the same template —
            already *included* in ``turns[0].q_tokens``, never added on
            top.  0 means the session shares nothing.
    """

    session_id: int
    arrival_time: float
    turns: tuple[Turn, ...]
    shared_prefix_id: int = 0
    shared_prefix_tokens: int = 0

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError(f"arrival_time must be >= 0, got {self.arrival_time}")
        if not self.turns:
            raise ValueError("a conversation needs at least one turn")
        if self.shared_prefix_id < 0:
            raise ValueError(
                f"shared_prefix_id must be >= 0, got {self.shared_prefix_id}"
            )
        if self.shared_prefix_tokens < 0:
            raise ValueError(
                "shared_prefix_tokens must be >= 0, got "
                f"{self.shared_prefix_tokens}"
            )
        if 0 < self.shared_prefix_tokens and (
            self.shared_prefix_tokens >= self.turns[0].q_tokens
        ):
            raise ValueError(
                f"shared_prefix_tokens {self.shared_prefix_tokens} must leave "
                f"at least one private token in turn 0's "
                f"{self.turns[0].q_tokens}-token question"
            )

    @property
    def n_turns(self) -> int:
        return len(self.turns)

    @property
    def is_multi_turn(self) -> bool:
        return self.n_turns > 1

    @property
    def total_tokens(self) -> int:
        """Session length: all question and answer tokens across all turns."""
        return sum(t.total_tokens for t in self.turns)

    def history_tokens_before(self, turn_index: int) -> int:
        """Tokens accumulated in the session before ``turn_index`` starts."""
        if not (0 <= turn_index < self.n_turns):
            raise IndexError(
                f"turn_index {turn_index} out of range for {self.n_turns} turns"
            )
        return sum(t.total_tokens for t in self.turns[:turn_index])


@dataclass
class Trace:
    """A full workload: conversations sorted by arrival time."""

    conversations: list[Conversation] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.conversations.sort(key=lambda c: (c.arrival_time, c.session_id))
        seen: set[int] = set()
        for conv in self.conversations:
            if conv.session_id in seen:
                raise ValueError(f"duplicate session_id {conv.session_id}")
            seen.add(conv.session_id)

    def __len__(self) -> int:
        return len(self.conversations)

    def __iter__(self) -> Iterator[Conversation]:
        return iter(self.conversations)

    @property
    def n_turns_total(self) -> int:
        return sum(c.n_turns for c in self.conversations)

    @property
    def n_tokens_total(self) -> int:
        return sum(c.total_tokens for c in self.conversations)

    def to_json(self) -> str:
        """Serialise the trace to a JSON string."""
        conversations = []
        for c in self.conversations:
            entry: dict = {
                "session_id": c.session_id,
                "arrival_time": c.arrival_time,
                "turns": [
                    [t.q_tokens, t.a_tokens, t.think_time] for t in c.turns
                ],
            }
            if c.shared_prefix_tokens > 0:
                # Emitted only when set, so share-free traces serialise
                # byte-identically to the pre-sharing schema.
                entry["shared_prefix"] = [
                    c.shared_prefix_id,
                    c.shared_prefix_tokens,
                ]
            conversations.append(entry)
        payload = {"metadata": self.metadata, "conversations": conversations}
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        """Parse a trace previously produced by :meth:`to_json`."""
        payload = json.loads(text)
        conversations = []
        for c in payload["conversations"]:
            prefix_id, prefix_tokens = c.get("shared_prefix", (0, 0))
            conversations.append(
                Conversation(
                    session_id=c["session_id"],
                    arrival_time=c["arrival_time"],
                    turns=tuple(Turn(q, a, think) for q, a, think in c["turns"]),
                    shared_prefix_id=prefix_id,
                    shared_prefix_tokens=prefix_tokens,
                )
            )
        return cls(conversations=conversations, metadata=payload.get("metadata", {}))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        return cls.from_json(Path(path).read_text())


def merge_traces(traces: Iterable[Trace]) -> Trace:
    """Combine traces, re-numbering sessions to keep ids unique."""
    conversations: list[Conversation] = []
    next_id = 0
    for trace in traces:
        for conv in trace:
            conversations.append(
                Conversation(
                    session_id=next_id,
                    arrival_time=conv.arrival_time,
                    turns=conv.turns,
                    shared_prefix_id=conv.shared_prefix_id,
                    shared_prefix_tokens=conv.shared_prefix_tokens,
                )
            )
            next_id += 1
    return Trace(conversations=conversations)
