"""Session arrival processes.

The paper generates arrivals from a Poisson process (Section 4.1,
following vLLM/FastServe).  Real conversation traffic is burstier and has
time-of-day structure, both of which stress AttentionStore differently —
bursts deepen the scheduler queue (more look-ahead for prefetching),
troughs cool the cache.  This module provides three processes:

* :class:`PoissonArrivals` — the paper's baseline;
* :class:`MMPPArrivals` — a 2-state Markov-modulated Poisson process
  (quiet/bursty) with a configurable burst intensity;
* :class:`DiurnalArrivals` — a sinusoidally-modulated rate with a
  configurable period and depth, sampled by thinning.

All produce ``n`` arrival times with the same *mean* rate, so results are
comparable across processes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

import numpy as np


class ArrivalProcess(ABC):
    """Generates session arrival times at a configured mean rate."""

    @abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``n`` strictly increasing arrival times (seconds)."""

    def _check(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals (exponential inter-arrival times)."""

    rate: float = 1.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check(n)
        return np.cumsum(rng.exponential(1.0 / self.rate, size=n))


@dataclass(frozen=True)
class MMPPArrivals(ArrivalProcess):
    """2-state Markov-modulated Poisson process.

    The process alternates between a quiet state and a burst state whose
    rates are ``rate / burst_factor`` and ``rate * burst_factor`` scaled so
    the long-run mean equals ``rate`` given the expected state residencies.

    Attributes:
        rate: target mean arrival rate.
        burst_factor: rate multiplier of the burst state (> 1).
        mean_quiet: expected seconds spent in the quiet state per visit.
        mean_burst: expected seconds spent in the burst state per visit.
    """

    rate: float = 1.0
    burst_factor: float = 4.0
    mean_quiet: float = 300.0
    mean_burst: float = 60.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.burst_factor <= 1.0:
            raise ValueError(
                f"burst_factor must exceed 1, got {self.burst_factor}"
            )
        if self.mean_quiet <= 0 or self.mean_burst <= 0:
            raise ValueError("state residencies must be positive")

    def _state_rates(self) -> tuple[float, float]:
        """(quiet, burst) rates whose time-weighted mean equals ``rate``."""
        w_quiet = self.mean_quiet / (self.mean_quiet + self.mean_burst)
        w_burst = 1.0 - w_quiet
        burst_rate = self.rate * self.burst_factor
        # Solve w_quiet * quiet + w_burst * burst == rate for quiet.
        quiet_rate = (self.rate - w_burst * burst_rate) / w_quiet
        return max(quiet_rate, self.rate * 0.01), burst_rate

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check(n)
        quiet_rate, burst_rate = self._state_rates()
        times = np.empty(n)
        now = 0.0
        in_burst = False
        state_end = rng.exponential(self.mean_quiet)
        for i in range(n):
            while True:
                current = burst_rate if in_burst else quiet_rate
                gap = rng.exponential(1.0 / current)
                if now + gap <= state_end:
                    now += gap
                    break
                # Cross into the next state and keep sampling.
                now = state_end
                in_burst = not in_burst
                mean = self.mean_burst if in_burst else self.mean_quiet
                state_end = now + rng.exponential(mean)
            times[i] = now
        return times


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidally-modulated Poisson arrivals, sampled by thinning.

    Instantaneous rate: ``rate * (1 + depth * sin(2*pi*t / period))``.

    Attributes:
        rate: mean arrival rate.
        period: modulation period in seconds (86400 = a day).
        depth: modulation depth in [0, 1).
    """

    rate: float = 1.0
    period: float = 86_400.0
    depth: float = 0.6

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if not (0.0 <= self.depth < 1.0):
            raise ValueError(f"depth must be in [0, 1), got {self.depth}")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check(n)
        peak = self.rate * (1.0 + self.depth)
        times = np.empty(n)
        now = 0.0
        i = 0
        while i < n:
            now += rng.exponential(1.0 / peak)
            instantaneous = self.rate * (
                1.0 + self.depth * np.sin(2.0 * np.pi * now / self.period)
            )
            if rng.random() < instantaneous / peak:
                times[i] = now
                i += 1
        return times


def make_arrival_process(name: str, rate: float, **kwargs: Any) -> ArrivalProcess:
    """Factory: ``"poisson"``, ``"mmpp"`` or ``"diurnal"``."""
    if name == "poisson":
        return PoissonArrivals(rate=rate, **kwargs)
    if name == "mmpp":
        return MMPPArrivals(rate=rate, **kwargs)
    if name == "diurnal":
        return DiurnalArrivals(rate=rate, **kwargs)
    raise ValueError(
        f"unknown arrival process {name!r}; expected poisson, mmpp or diurnal"
    )
