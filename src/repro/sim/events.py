"""Deterministic event queue for the discrete-event simulator.

Events are ordered by ``(time, sequence_number)`` so that simultaneous
events fire in scheduling order, making every simulation run exactly
reproducible for a given seed.

Two implementations share the :class:`Event` type and the queue API
(``push``/``pop``/``peek_time``/``collect_batch``/``__len__``):

* :class:`EventQueue` — the production **calendar queue**: a sorted
  *ready run* consumed by index, a fixed array of unsorted near-horizon
  *buckets*, and an *overflow* binary heap for far-future timers.  Push
  and pop are O(1) amortized for the near-horizon events that dominate
  replay, and the (time, seq) total order is preserved exactly because
  every tier boundary is decided by one monotone bucket-index function
  (see DESIGN.md §12).  The bucket width adapts to the *sampled local
  event density* at each window refill and is held steady when too few
  events are pending to estimate one — naive span-based sizing collapses
  on self-scheduling event chains (every push overflows, every pop
  rescans the wheel) and on replays that pre-schedule thousands of
  arrivals spanning hours (the whole near term lands in one bucket).
* :class:`LegacyEventQueue` — the original single binary heap, kept as
  the differential-testing oracle and the baseline for the scheduler
  microbenchmarks.

Hot-path notes: queue entries are plain ``[time, seq, event]`` lists so
ordering uses C-level lexicographic comparison (seq is unique, so the
event object itself is never compared); :class:`Event` is a ``__slots__``
class recycled through a bounded free list (a million-event replay would
otherwise allocate one per scheduled callback); and both queues maintain
a live-event counter on push/pop/cancel so ``__len__``/``__bool__`` are
O(1) instead of scanning the structure.

Cancellation is lazy (O(1)): a cancelled event stays where it is and is
skipped on pop.  To stop lazy deletion from bloating long drains, the
calendar queue triggers a compaction sweep when stale (cancelled but
still stored) entries outnumber live ones.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Callable

# One queue entry: [time, seq, event].  A mutable list (not a tuple) so
# collect_batch can null out the event slot when handing the event to the
# dispatch loop — that keeps the event's reference count predictable,
# which is what makes free-list recycling safe (see Simulator.run).
_Entry = list[Any]

#: Buckets in the calendar wheel.  Also the refill sample size: one
#: wheel's worth of heap entries estimates the local event density.
_N_BUCKETS = 512
#: Bucket width before the first density estimate.
_INITIAL_WIDTH = 0.01
#: Density target: average events per bucket when the width is fit to a
#: refill sample.  >1 trades slightly larger promoted runs for fewer
#: empty-bucket cursor steps.
_EVENTS_PER_BUCKET = 2.0
#: Minimum refill sample size that carries density information; smaller
#: refills keep the previous width (a self-scheduling chain pending one
#: event at a time must not shrink the window to a point).
_WIDTH_SAMPLE_MIN = 16
#: Narrowest bucket width the adaptive refit will pick; keeps the index
#: arithmetic finite when every sampled event shares one timestamp.
_MIN_WIDTH = 1e-9
#: Compaction threshold: sweep when stale entries outnumber live ones
#: and there are at least this many of them (avoids thrashing tiny
#: queues where a single cancel flips the ratio).
_COMPACT_MIN_STALE = 256
#: Maximum recycled Event objects kept on the free list.
_FREE_LIST_CAP = 4096


class Event:
    """A scheduled callback.

    ``cancelled`` events stay in the queue but are skipped when popped —
    O(1) cancellation, standard lazy-deletion pattern.  Cancelling
    notifies the owning queue so its live-event counter stays exact.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        cancelled: bool = False,
        _queue: "EventQueue | LegacyEventQueue | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = cancelled
        self._queue = _queue

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            # Still pending in a queue: one fewer live event.
            queue._on_cancel()
            self._queue = None

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, seq={self.seq}, "
            f"cancelled={self.cancelled})"
        )


class EventQueue:
    """Calendar queue keyed by (time, insertion sequence).

    Layout — three tiers, earliest first:

    * ``_ready``: entries sorted ascending; ``_ready_pos`` is the
      consumption index (popping advances the index instead of shifting
      the list).  Holds the bucket currently being drained plus any
      pushes that land at or before the cursor bucket.
    * ``_wheel``: ``_N_BUCKETS`` unsorted lists.  Bucket ``b`` holds
      entries whose index ``int((t - base) * inv_width)`` equals ``b``;
      the index function is monotone non-decreasing in ``t``, so every
      entry in bucket ``b`` precedes every entry in bucket ``b+1`` and
      equal times always share a bucket.  A bucket is sorted once, when
      the cursor reaches it and it is promoted into ``_ready``.
    * ``_overflow``: binary heap for entries whose index falls beyond
      the wheel.  When ready and wheel are exhausted, the next window of
      heap entries is popped forward (each far-future event pays one
      heappush + one heappop over its lifetime — the heap is never
      rescanned) and the bucket width is refit to the sampled density.

    Pop order is therefore exactly ascending (time, seq): tiers are
    separated by the same monotone index function that routes pushes,
    and each tier yields sorted entries.  The one subtlety is an
    equal-time group whose index sits exactly at the wheel edge while
    the window moves: routing is *per-entry deterministic* (same time →
    same index → same tier), and an entry held back in the heap always
    has a higher sequence number than a same-time entry already in the
    wheel, so later-window delivery preserves (time, seq) order.
    """

    __slots__ = (
        "_ready",
        "_ready_pos",
        "_wheel",
        "_cursor",
        "_base",
        "_inv_width",
        "_overflow",
        "_next_seq",
        "_n_live",
        "_n_stale",
        "_free",
    )

    def __init__(self) -> None:
        self._ready: list[_Entry] = []
        self._ready_pos = 0
        self._wheel: list[list[_Entry]] = [[] for _ in range(_N_BUCKETS)]
        self._cursor = -1  # last bucket promoted into _ready
        self._base = 0.0
        self._inv_width = 1.0 / _INITIAL_WIDTH
        self._overflow: list[_Entry] = []
        self._next_seq = 0
        self._n_live = 0
        # Cancelled entries still physically stored (lazy deletion debt).
        self._n_stale = 0
        # Recycled Event objects (see Simulator.run's refcount guard).
        self._free: list[Event] = []

    def __len__(self) -> int:
        return self._n_live

    def __bool__(self) -> bool:
        return self._n_live > 0

    def physical_size(self) -> int:
        """Entries physically stored, including lazy-deleted ones."""
        return self._n_live + self._n_stale

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute time ``time``."""
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        seq = self._next_seq
        self._next_seq = seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.cancelled = False
            event._queue = self
        else:
            event = Event(time, seq, callback, False, self)
        entry: _Entry = [time, seq, event]
        dt = time - self._base
        idx = int(dt * self._inv_width) if dt > 0.0 else 0
        if idx <= self._cursor:
            # At or behind the cursor bucket: merge into the sorted ready
            # run.  lo=_ready_pos keeps the consumed prefix (whose entries
            # may already be recycled) out of the comparison range.
            insort(self._ready, entry, self._ready_pos)
        elif idx < _N_BUCKETS:
            self._wheel[idx].append(entry)
        else:
            heapq.heappush(self._overflow, entry)
        self._n_live += 1
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or None if empty."""
        if not self._settle():
            return None
        pos = self._ready_pos
        entry = self._ready[pos]
        self._ready_pos = pos + 1
        event: Event = entry[2]
        entry[2] = None  # the dispatch loop now owns the only queue ref
        self._n_live -= 1
        # Out of the queue: a late cancel() must not decrement again.
        event._queue = None
        return event

    def peek_time(self) -> float | None:
        """Time of the earliest live event without removing it.

        Cancelled entries encountered on the way to the head are
        discarded here; they were already subtracted from the live
        counter when cancelled, so this cleanup never touches
        ``__len__``.
        """
        if not self._settle():
            return None
        t: float = self._ready[self._ready_pos][0]
        return t

    def collect_batch(
        self,
        out: list[Event],
        limit: float | None = None,
        max_n: int | None = None,
    ) -> float | None:
        """Pop every live event sharing the earliest pending timestamp.

        Appends the events (scheduling order) to ``out`` and returns
        their shared time, or returns None — consuming nothing — when
        the queue is empty or the head is later than ``limit``.
        ``max_n`` caps how many events are popped (the remainder of the
        timestamp group stays queued, order intact).

        This is the peek-free fast path for ``Simulator.run``: one call
        settles the head, bounds-checks it and drains the timestamp
        group in a single pass.  (A group can straddle a window refill —
        the caller then sees consecutive batches at the same time, which
        dispatches in the same order and advances the clock once.)
        """
        ready = self._ready
        pos = self._ready_pos
        if pos < len(ready) and not ready[pos][2].cancelled:
            # Head already settled — the dominant case mid-drain; skip
            # the full settle walk (a method call per batch otherwise).
            pass
        elif not self._settle():
            return None
        else:
            ready = self._ready
            pos = self._ready_pos
        entry = ready[pos]
        t0: float = entry[0]
        if limit is not None and t0 > limit:
            return None
        if max_n is not None and max_n <= 0:
            return None
        n = len(ready)
        n_popped = 0
        while True:
            event: Event = entry[2]
            pos += 1
            if event.cancelled:
                self._n_stale -= 1
            else:
                entry[2] = None
                event._queue = None
                out.append(event)
                n_popped += 1
                if max_n is not None and n_popped >= max_n:
                    break
            if pos >= n:
                break
            entry = ready[pos]
            if entry[0] != t0:
                break
        self._ready_pos = pos
        self._n_live -= n_popped
        return t0

    def requeue_front(self, events: list[Event]) -> None:
        """Splice just-popped events back at the head of the queue.

        Used by ``Simulator.run`` to restore the un-dispatched remainder
        of a batch when a callback raises, so an aborted run leaves the
        queue exactly as the one-event-at-a-time loop would have.  The
        events must share one timestamp and be in ascending seq order
        (which a batch always is); pending entries at the same time can
        only be newer pushes, so inserting before them preserves order.
        """
        entries: list[_Entry] = []
        for event in events:
            if event.cancelled:
                continue
            event._queue = self
            entries.append([event.time, event.seq, event])
        pos = self._ready_pos
        self._ready[pos:pos] = entries
        self._n_live += len(entries)

    def _settle(self) -> bool:
        """Make ``_ready[_ready_pos]`` the earliest live entry.

        Skips stale (cancelled) entries, promotes the next non-empty
        bucket into the ready run when it drains, and pulls the next
        window out of the overflow heap when the whole wheel is spent.
        Returns False when no live entries remain.
        """
        ready = self._ready
        pos = self._ready_pos
        while True:
            n = len(ready)
            while pos < n:
                entry = ready[pos]
                if entry[2].cancelled:
                    self._n_stale -= 1
                    pos += 1
                else:
                    self._ready_pos = pos
                    return True
            # Ready run fully consumed: recycle the list and move on.
            ready.clear()
            pos = 0
            self._ready_pos = 0
            wheel = self._wheel
            cursor = self._cursor + 1
            while cursor < _N_BUCKETS and not wheel[cursor]:
                cursor += 1
            if cursor < _N_BUCKETS:
                bucket = wheel[cursor]
                ready.extend(bucket)
                bucket.clear()
                ready.sort()
                self._cursor = cursor
                continue
            self._cursor = _N_BUCKETS - 1
            if self._overflow:
                self._refill_from_overflow()
                continue
            return False

    def _refill_from_overflow(self) -> None:
        """Advance the wheel window to the overflow heap's next events.

        Pops a sample (up to one wheel's worth) to estimate the local
        event density, refits the bucket width to it, re-bases the wheel
        at the earliest pending time and then drains every heap entry
        that lands inside the new window.  Entries are routed by the
        same index function pushes use, so an entry is never placed
        inconsistently with a later push at the same time.  Each event
        passes through the heap at most once per window it skips —
        far-future timers are never rescanned in place.
        """
        overflow = self._overflow
        heappop = heapq.heappop
        k = len(overflow)
        if k > _N_BUCKETS:
            k = _N_BUCKETS
        sample = [heappop(overflow) for _ in range(k)]
        base = sample[0][0]
        span = sample[-1][0] - base
        if k >= _WIDTH_SAMPLE_MIN and span > 0.0:
            width = span / (k - 1) * _EVENTS_PER_BUCKET
            if width < _MIN_WIDTH:
                width = _MIN_WIDTH
            self._inv_width = 1.0 / width
        # else: keep the previous width — a handful of pending events
        # (e.g. a self-scheduling chain) carries no density information,
        # and shrinking the window to their span would send every
        # subsequent push to the heap and refill once per event.
        self._base = base
        self._cursor = -1
        inv_width = self._inv_width
        wheel = self._wheel
        heappush = heapq.heappush
        for entry in sample:
            idx = int((entry[0] - base) * inv_width)
            if idx < _N_BUCKETS:
                wheel[idx].append(entry)
            else:
                # Sampled but past the refitted window; back to the heap
                # (bounded by the sample size, so refills stay O(window)).
                heappush(overflow, entry)
        while overflow and int((overflow[0][0] - base) * inv_width) < _N_BUCKETS:
            entry = heappop(overflow)
            wheel[int((entry[0] - base) * inv_width)].append(entry)

    def _on_cancel(self) -> None:
        """Bookkeeping for a lazy-deleted entry; sweeps when debt wins."""
        self._n_live -= 1
        self._n_stale += 1
        if self._n_stale > self._n_live and self._n_stale >= _COMPACT_MIN_STALE:
            self._compact()

    def _compact(self) -> None:
        """Drop every stale entry from all three tiers.

        Keeps lazy deletion from bloating the structure: triggered when
        cancelled entries outnumber live ones, so total work is O(live)
        per sweep and amortized O(1) per cancel.
        """
        ready = self._ready
        ready[:] = [e for e in ready[self._ready_pos :] if not e[2].cancelled]
        self._ready_pos = 0
        wheel = self._wheel
        for b in range(self._cursor + 1, _N_BUCKETS):
            bucket = wheel[b]
            if bucket:
                bucket[:] = [e for e in bucket if not e[2].cancelled]
        overflow = [e for e in self._overflow if not e[2].cancelled]
        heapq.heapify(overflow)
        self._overflow = overflow
        self._n_stale = 0


class LegacyEventQueue:
    """The original single binary heap keyed by (time, seq).

    The oracle for the calendar queue's differential property tests and
    the baseline side of the scheduler microbenchmarks
    (``Simulator(legacy_core=True)`` runs the original per-event loop on
    it) — and, since the microbenchmarks showed it *beating* the
    calendar queue on the dispatch-dominated shapes engine replays
    produce (unique-timestamp dispatch, push/pop churn, steady chains;
    see DESIGN.md §12), also the ``core="heap"``/``core="auto"``
    production core: it implements the same batched-dispatch surface
    (``collect_batch``/``requeue_front``/``_free``) as
    :class:`EventQueue`.  Pop order is identical — exactly ascending
    (time, seq) — so the core choice can never change simulation
    results.
    """

    __slots__ = ("_heap", "_next_seq", "_n_live", "_free")

    def __init__(self) -> None:
        # Heap entries are [time, seq, event]: seq is unique, so the
        # event object itself is never compared.
        self._heap: list[_Entry] = []
        self._next_seq = 0
        self._n_live = 0
        # Recycled Event objects (see Simulator.run's refcount guard).
        # Only the batched dispatch loop feeds this; under the legacy
        # per-event loop it stays empty and push allocates as it always
        # did.
        self._free: list[Event] = []

    def __len__(self) -> int:
        return self._n_live

    def __bool__(self) -> bool:
        return self._n_live > 0

    def physical_size(self) -> int:
        """Entries physically stored, including lazy-deleted ones."""
        return len(self._heap)

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute time ``time``."""
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        seq = self._next_seq
        self._next_seq = seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.cancelled = False
            event._queue = self
        else:
            event = Event(time, seq, callback, False, self)
        heapq.heappush(self._heap, [time, seq, event])
        self._n_live += 1
        return event

    def collect_batch(
        self,
        out: list[Event],
        limit: float | None = None,
        max_n: int | None = None,
    ) -> float | None:
        """Pop every live event sharing the earliest pending timestamp.

        Same contract as :meth:`EventQueue.collect_batch`: appends the
        events in scheduling order (the heap yields equal times in seq
        order), returns their shared time, and consumes nothing when the
        queue is empty or the head is later than ``limit``.
        """
        heap = self._heap
        heappop = heapq.heappop
        while heap and heap[0][2].cancelled:
            heappop(heap)
        if not heap:
            return None
        t0: float = heap[0][0]
        if limit is not None and t0 > limit:
            return None
        if max_n is not None and max_n <= 0:
            return None
        n_popped = 0
        while heap and heap[0][0] == t0:
            entry = heappop(heap)
            event: Event = entry[2]
            if event.cancelled:
                continue
            entry[2] = None
            event._queue = None
            out.append(event)
            n_popped += 1
            if max_n is not None and n_popped >= max_n:
                break
        self._n_live -= n_popped
        return t0

    def requeue_front(self, events: list[Event]) -> None:
        """Splice just-popped events back into the queue.

        Mirror of :meth:`EventQueue.requeue_front` for aborted batches;
        the events carry their original (time, seq) keys, so pushing
        them back restores exactly the pre-batch order.
        """
        heappush = heapq.heappush
        n = 0
        for event in events:
            if event.cancelled:
                continue
            event._queue = self
            heappush(self._heap, [event.time, event.seq, event])
            n += 1
        self._n_live += n

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or None if empty."""
        heap = self._heap
        while heap:
            event: Event = heapq.heappop(heap)[2]
            if not event.cancelled:
                self._n_live -= 1
                # Out of the heap: a late cancel() must not decrement again.
                event._queue = None
                return event
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event without removing it.

        Cancelled events at the heap top are discarded here; they were
        already subtracted from the live counter when cancelled, so this
        cleanup never touches ``__len__``.
        """
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        t: float = heap[0][0]
        return t

    def _on_cancel(self) -> None:
        self._n_live -= 1
