"""Deterministic event queue for the discrete-event simulator.

Events are ordered by ``(time, sequence_number)`` so that simultaneous
events fire in scheduling order, making every simulation run exactly
reproducible for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.

    ``cancelled`` events stay in the heap but are skipped when popped —
    O(1) cancellation, standard lazy-deletion pattern.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """A min-heap of events keyed by (time, insertion sequence)."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return any(not e.cancelled for e in self._heap)

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute time ``time``."""
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        event = Event(time=time, seq=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
