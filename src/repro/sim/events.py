"""Deterministic event queue for the discrete-event simulator.

Events are ordered by ``(time, sequence_number)`` so that simultaneous
events fire in scheduling order, making every simulation run exactly
reproducible for a given seed.

Hot-path notes: the heap stores plain ``(time, seq, event)`` tuples so
ordering uses C-level tuple comparison instead of a generated dataclass
``__lt__``; :class:`Event` is a ``__slots__`` class (a million-event replay
allocates one per scheduled callback); and the queue maintains a live-event
counter on push/pop/cancel so ``__len__``/``__bool__`` are O(1) instead of
scanning the heap.
"""

from __future__ import annotations

import heapq
from typing import Callable


class Event:
    """A scheduled callback.

    ``cancelled`` events stay in the heap but are skipped when popped —
    O(1) cancellation, standard lazy-deletion pattern.  Cancelling
    notifies the owning queue so its live-event counter stays exact.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        cancelled: bool = False,
        _queue: "EventQueue | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = cancelled
        self._queue = _queue

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            # Still pending in a queue: one fewer live event.
            queue._n_live -= 1
            self._queue = None

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, seq={self.seq}, "
            f"cancelled={self.cancelled})"
        )


class EventQueue:
    """A min-heap of events keyed by (time, insertion sequence)."""

    __slots__ = ("_heap", "_next_seq", "_n_live")

    def __init__(self) -> None:
        # Heap entries are (time, seq, event): seq is unique, so the event
        # object itself is never compared.
        self._heap: list[tuple[float, int, Event]] = []
        self._next_seq = 0
        self._n_live = 0

    def __len__(self) -> int:
        return self._n_live

    def __bool__(self) -> bool:
        return self._n_live > 0

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute time ``time``."""
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, seq, callback, False, self)
        heapq.heappush(self._heap, (time, seq, event))
        self._n_live += 1
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or None if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                self._n_live -= 1
                # Out of the heap: a late cancel() must not decrement again.
                event._queue = None
                return event
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event without removing it.

        Cancelled events at the heap top are discarded here; they were
        already subtracted from the live counter when cancelled, so this
        cleanup never touches ``__len__``.
        """
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None
