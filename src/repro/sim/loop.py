"""The discrete-event simulation loop.

``Simulator.run`` dispatches in *timestamp batches*: one
``collect_batch`` call settles the queue head and drains every event
sharing that timestamp, the clock advances once per unique time, and
the ``profiler``/``event_hook`` attribute checks are hoisted out of the
per-event inner loop into a pre-selected dispatch branch.  Events the
loop can prove are externally unreferenced are recycled onto the
queue's free list instead of being left to the allocator.

Two queue cores implement the batched-dispatch surface, selected by the
``core`` argument (both pop in exactly ascending (time, seq) order, so
the choice can never change simulation results — only wall-clock):

* ``"heap"`` — the binary heap.  Fastest on the dispatch-dominated
  shapes engine replays produce: mostly-unique timestamps, push/pop
  churn, a few hundred pending events (the scheduler microbenchmarks
  in BENCH_sim.json have it ahead on ``push_pop``, ``dispatch_unique``
  and ``dispatch_steady``).
* ``"calendar"`` — the calendar queue (DESIGN.md §12).  Its edge is
  *bounded memory under cancel-heavy loads*: it compacts stale entries
  when they outnumber live ones, where the heap retains every cancelled
  entry until its timestamp is reached (raw cancel marking is actually
  faster on the heap — it skips the compaction bookkeeping).  Huge
  same-timestamp groups also amortise its bucket promotion.

``"auto"`` (the default) resolves to the heap: the engine never cancels
events — crash invalidation uses epoch guards precisely because
continuations *can't* be unscheduled — and replay timestamps are almost
all unique, which is the heap's best case and the calendar queue's
worst.  Workloads built directly on the simulator that cancel far-future
events en masse should pass ``core="calendar"`` to keep queue memory
proportional to the live set.

``Simulator(legacy_core=True)`` runs the original one-event-at-a-time
loop on the heap queue — the oracle side of the old-vs-new bit-identity
tests and the baseline for the dispatch microbenchmarks.
"""

from __future__ import annotations

import gc
from sys import getrefcount
from typing import TYPE_CHECKING, Callable

from .clock import SimClock
from .events import _FREE_LIST_CAP, Event, EventQueue, LegacyEventQueue

if TYPE_CHECKING:
    from ..obs.profile import EventLoopProfiler

# While the dispatch loop runs an event, exactly three references to it
# exist when no component kept a handle: the batch buffer, the loop
# variable, and getrefcount's own argument (the queue entry's slot was
# nulled by collect_batch).  A count above the baseline means someone
# may still cancel() or inspect the event, so it must not be recycled.
_RECYCLE_BASELINE_REFS = 3


class Simulator:
    """Couples a :class:`SimClock` with an :class:`EventQueue`.

    Components schedule work with :meth:`at` (absolute time) or :meth:`after`
    (relative delay); :meth:`run` drains the queue in time order.
    """

    def __init__(
        self,
        start: float = 0.0,
        *,
        legacy_core: bool = False,
        core: str = "auto",
    ) -> None:
        self.clock = SimClock(start)
        self._legacy_core = legacy_core
        if core not in ("auto", "heap", "calendar"):
            raise ValueError(
                f"core must be 'auto', 'heap' or 'calendar', got {core!r}"
            )
        # "auto" resolves to the heap (see module docstring: no consumer
        # cancels events, and replay dispatch shapes favour it); the
        # calendar queue remains one flag away for cancel-heavy use.
        self._queue: EventQueue | LegacyEventQueue = (
            EventQueue() if core == "calendar" and not legacy_core else LegacyEventQueue()
        )
        self._events_processed = 0
        # Observation point for sanitizers (repro.sanitize): called after
        # each executed event.  Re-read once per timestamp batch.
        self.event_hook: Callable[[Event], None] | None = None
        # Optional host-side profiler (repro.obs.profile): when set, it
        # dispatches each event (counting/timing around the same single
        # callback invocation).  Re-read once per timestamp batch.
        self.profiler: "EventLoopProfiler | None" = None

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self.clock._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self.now}"
            )
        return self._queue.push(time, callback)

    def after(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self._queue.push(self.clock._now + delay, callback)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events in order.

        Args:
            until: stop once the next event is later than this time (the
                clock is left at ``until``).  ``None`` drains the queue.
            max_events: safety valve; raise *before* running an event that
                would push the lifetime count past this limit.
        """
        # Pause cyclic GC for the drain: event dispatch allocates closures
        # and records at a rate that keeps generation-0 collections firing
        # constantly, yet almost everything dies by refcount.  Cycles
        # created by callbacks are simply collected after the run (or at
        # the caller's next allocation burst).  GC timing never feeds back
        # into simulated time, so determinism is unaffected either way.
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            if self._legacy_core:
                self._run_legacy(until, max_events)
            else:
                self._run_batched(until, max_events)
        finally:
            if was_enabled:
                gc.enable()

    def _run_batched(
        self, until: float | None = None, max_events: int | None = None
    ) -> None:
        """The batched fast path: one collect per unique timestamp."""
        queue = self._queue
        clock = self.clock
        free = queue._free
        collect_batch = queue.collect_batch
        advance_to = clock.advance_to
        buf: list[Event] = []
        processed = self._events_processed
        last_time = clock._now
        try:
            while True:
                if max_events is not None and processed >= max_events:
                    head = queue.peek_time()
                    if head is not None and (until is None or head <= until):
                        raise RuntimeError(
                            f"simulation exceeded {max_events} events; "
                            "likely a scheduling loop"
                        )
                    break
                del buf[:]
                cap = None if max_events is None else max_events - processed
                t0 = collect_batch(buf, until, cap)
                if t0 is None:
                    break
                if t0 > last_time:
                    advance_to(t0)
                    last_time = t0
                # Select the dispatch branch once per batch: the common
                # unobserved case runs a bare inner loop with no
                # attribute checks per event.
                profiler = self.profiler
                hook = self.event_hook
                i = 0
                try:
                    if profiler is None and hook is None:
                        for event in buf:
                            # i counts events the legacy loop would have
                            # consumed: a raising callback consumed its
                            # event (it was popped), so i moves *before*
                            # the call and buf[i:] is exactly the
                            # not-yet-dispatched tail.
                            i += 1
                            # An earlier event in this batch may have
                            # cancelled a later one; the legacy loop
                            # would have skipped it at pop time.
                            if event.cancelled:
                                continue
                            event.callback()
                            processed += 1
                            if (
                                getrefcount(event) == _RECYCLE_BASELINE_REFS
                                and len(free) < _FREE_LIST_CAP
                            ):
                                free.append(event)
                    else:
                        for event in buf:
                            i += 1
                            if event.cancelled:
                                continue
                            if profiler is not None:
                                profiler.run_event(event)
                            else:
                                event.callback()
                            processed += 1
                            if hook is not None:
                                hook(event)
                except BaseException:
                    # Restore the un-dispatched remainder so an aborted
                    # run leaves the queue exactly as the legacy
                    # one-event-at-a-time loop would have.
                    if i < len(buf):
                        queue.requeue_front(buf[i:])
                    raise
        finally:
            self._events_processed = processed
        if until is not None and until > clock._now:
            clock.advance_to(until)

    def _run_legacy(
        self, until: float | None = None, max_events: int | None = None
    ) -> None:
        """The original dispatch loop: peek, pop and advance per event."""
        while True:
            next_time = self._queue.peek_time()
            if next_time is None:
                if until is not None and until > self.now:
                    self.clock.advance_to(until)
                return
            if until is not None and next_time > until:
                self.clock.advance_to(until)
                return
            if max_events is not None and self._events_processed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; "
                    "likely a scheduling loop"
                )
            event = self._queue.pop()
            assert event is not None
            self.clock.advance_to(event.time)
            if self.profiler is None:
                event.callback()
            else:
                self.profiler.run_event(event)
            self._events_processed += 1
            if self.event_hook is not None:
                self.event_hook(event)
