"""The discrete-event simulation loop."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .clock import SimClock
from .events import Event, EventQueue

if TYPE_CHECKING:
    from ..obs.profile import EventLoopProfiler


class Simulator:
    """Couples a :class:`SimClock` with an :class:`EventQueue`.

    Components schedule work with :meth:`at` (absolute time) or :meth:`after`
    (relative delay); :meth:`run` drains the queue in time order.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.clock = SimClock(start)
        self._queue = EventQueue()
        self._events_processed = 0
        # Observation point for sanitizers (repro.sanitize): called after
        # each executed event.  One attribute check per event when unset.
        self.event_hook: Callable[[Event], None] | None = None
        # Optional host-side profiler (repro.obs.profile): when set, it
        # dispatches each event (counting/timing around the same single
        # callback invocation).  One attribute check per event when unset.
        self.profiler: "EventLoopProfiler | None" = None

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self.now}"
            )
        return self._queue.push(time, callback)

    def after(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self._queue.push(self.now + delay, callback)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events in order.

        Args:
            until: stop once the next event is later than this time (the
                clock is left at ``until``).  ``None`` drains the queue.
            max_events: safety valve; raise *before* running an event that
                would push the lifetime count past this limit.
        """
        while True:
            next_time = self._queue.peek_time()
            if next_time is None:
                if until is not None and until > self.now:
                    self.clock.advance_to(until)
                return
            if until is not None and next_time > until:
                self.clock.advance_to(until)
                return
            if max_events is not None and self._events_processed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; "
                    "likely a scheduling loop"
                )
            event = self._queue.pop()
            assert event is not None
            self.clock.advance_to(event.time)
            if self.profiler is None:
                event.callback()
            else:
                self.profiler.run_event(event)
            self._events_processed += 1
            if self.event_hook is not None:
                self.event_hook(event)
