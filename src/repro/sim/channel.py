"""Bandwidth channels: PCIe links and SSD I/O as serialised resources.

A :class:`Channel` models a link with fixed bandwidth that serves transfer
requests FIFO.  Issuing a transfer at time ``t`` returns its completion
time ``max(t, busy_until) + bytes / bandwidth`` and advances the channel's
``busy_until``.  This captures the queuing that makes concurrent prefetches
and demand loads contend for the same SSD or PCIe bandwidth without
simulating individual packets.

Fault injection: a channel may carry a ``fault_hook`` (duck-typed to
:class:`repro.faults.FaultInjector`) consulted on every transfer.  The hook
can scale effective bandwidth (degradation episodes) or abort the transfer
entirely, which raises :class:`FaultyTransfer` — the link time is still
burned (the data moved but arrived bad), only delivery fails.  Channels
without a hook behave exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol


class ChannelFaultHook(Protocol):
    """What a channel consults to decide per-transfer fault outcomes."""

    def transfer_fails(self, channel: str, now: float) -> bool:
        """Whether the transfer starting at ``now`` fails transiently."""
        ...

    def bandwidth_factor(self, channel: str, now: float) -> float:
        """Effective-bandwidth multiplier in (0, 1] at time ``now``."""
        ...


class FaultyTransfer(Exception):
    """An injected fault aborted a channel transfer.

    Attributes:
        channel: name of the faulting channel.
        busy_until: time the link was nonetheless occupied until (the
            failed attempt burns the transfer duration; retries must start
            at or after this point).
    """

    def __init__(self, channel: str, busy_until: float) -> None:
        super().__init__(f"transfer on channel {channel!r} faulted")
        self.channel = channel
        self.busy_until = busy_until


@dataclass(slots=True)
class Channel:
    """A FIFO bandwidth resource.

    Attributes:
        name: label for diagnostics ("pcie", "ssd", ...).
        bandwidth: bytes per second.
        fault_hook: optional fault-injection hook (see module docstring).
        on_transfer: optional observer called after every transfer attempt
            as ``(channel, start, end, n_bytes, faulted)``.  Observation
            only — installed by :class:`repro.obs.spans.SpanTracer`; it
            must not (and cannot, given what it receives) alter timing.
    """

    name: str
    bandwidth: float
    fault_hook: ChannelFaultHook | None = field(default=None, repr=False)
    on_transfer: "Callable[[Channel, float, float, int, bool], None] | None" = field(
        default=None, repr=False
    )
    _busy_until: float = field(default=0.0, init=False)
    _bytes_moved: int = field(default=0, init=False)
    _busy_time: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")

    @property
    def busy_until(self) -> float:
        return self._busy_until

    @property
    def bytes_moved(self) -> int:
        return self._bytes_moved

    @property
    def busy_time(self) -> float:
        """Total seconds the channel has spent transferring."""
        return self._busy_time

    def duration(self, n_bytes: int) -> float:
        """Transfer time for ``n_bytes`` in isolation (no queueing)."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        return n_bytes / self.bandwidth

    def transfer(self, now: float, n_bytes: int) -> float:
        """Enqueue a transfer at time ``now``; return its completion time.

        Raises:
            FaultyTransfer: if the fault hook aborts the transfer.  The
                link stays occupied for the attempt's full duration but no
                bytes are delivered.
        """
        start = max(now, self._busy_until)
        if self.fault_hook is None:
            length = self.duration(n_bytes)
        else:
            factor = self.fault_hook.bandwidth_factor(self.name, start)
            length = self.duration(n_bytes) / factor
            if self.fault_hook.transfer_fails(self.name, start):
                self._busy_until = start + length
                self._busy_time += length
                if self.on_transfer is not None:
                    self.on_transfer(self, start, self._busy_until, n_bytes, True)
                raise FaultyTransfer(self.name, self._busy_until)
        self._busy_until = start + length
        self._bytes_moved += n_bytes
        self._busy_time += length
        if self.on_transfer is not None:
            self.on_transfer(self, start, self._busy_until, n_bytes, False)
        return self._busy_until

    def next_free(self, now: float) -> float:
        """Earliest time a new transfer could begin."""
        return max(now, self._busy_until)

    def utilisation(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` wall time spent transferring."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_time / elapsed)


@dataclass(slots=True)
class ChannelPair:
    """A staged, streaming transfer over two channels (e.g. SSD -> DRAM ->
    HBM over PCIe).

    Data flows through the second hop as it arrives from the first, so the
    slower hop dominates: the transfer completes at
    ``max(first-hop completion, second-hop start + second-hop duration)``.
    Both channels are occupied for their full share so later requests see
    realistic queuing.
    """

    first: Channel
    second: Channel

    def transfer(self, now: float, n_bytes: int) -> float:
        start_first = self.first.next_free(now)
        t1 = self.first.transfer(now, n_bytes)
        start_second = max(start_first, self.second.next_free(now))
        d2 = self.second.duration(n_bytes)
        completion = max(t1, start_second + d2)
        # Occupy the second channel so that it finishes exactly at
        # ``completion`` (its queue head is free by construction).
        self.second.transfer(completion - d2, n_bytes)
        return completion
