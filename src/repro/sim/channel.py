"""Bandwidth channels: PCIe links and SSD I/O as serialised resources.

A :class:`Channel` models a link with fixed bandwidth that serves transfer
requests FIFO.  Issuing a transfer at time ``t`` returns its completion
time ``max(t, busy_until) + bytes / bandwidth`` and advances the channel's
``busy_until``.  This captures the queuing that makes concurrent prefetches
and demand loads contend for the same SSD or PCIe bandwidth without
simulating individual packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Channel:
    """A FIFO bandwidth resource.

    Attributes:
        name: label for diagnostics ("pcie", "ssd", ...).
        bandwidth: bytes per second.
    """

    name: str
    bandwidth: float
    _busy_until: float = field(default=0.0, init=False)
    _bytes_moved: int = field(default=0, init=False)
    _busy_time: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")

    @property
    def busy_until(self) -> float:
        return self._busy_until

    @property
    def bytes_moved(self) -> int:
        return self._bytes_moved

    @property
    def busy_time(self) -> float:
        """Total seconds the channel has spent transferring."""
        return self._busy_time

    def duration(self, n_bytes: int) -> float:
        """Transfer time for ``n_bytes`` in isolation (no queueing)."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        return n_bytes / self.bandwidth

    def transfer(self, now: float, n_bytes: int) -> float:
        """Enqueue a transfer at time ``now``; return its completion time."""
        start = max(now, self._busy_until)
        length = self.duration(n_bytes)
        self._busy_until = start + length
        self._bytes_moved += n_bytes
        self._busy_time += length
        return self._busy_until

    def next_free(self, now: float) -> float:
        """Earliest time a new transfer could begin."""
        return max(now, self._busy_until)

    def utilisation(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` wall time spent transferring."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_time / elapsed)


@dataclass
class ChannelPair:
    """A staged, streaming transfer over two channels (e.g. SSD -> DRAM ->
    HBM over PCIe).

    Data flows through the second hop as it arrives from the first, so the
    slower hop dominates: the transfer completes at
    ``max(first-hop completion, second-hop start + second-hop duration)``.
    Both channels are occupied for their full share so later requests see
    realistic queuing.
    """

    first: Channel
    second: Channel

    def transfer(self, now: float, n_bytes: int) -> float:
        start_first = self.first.next_free(now)
        t1 = self.first.transfer(now, n_bytes)
        start_second = max(start_first, self.second.next_free(now))
        d2 = self.second.duration(n_bytes)
        completion = max(t1, start_second + d2)
        # Occupy the second channel so that it finishes exactly at
        # ``completion`` (its queue head is free by construction).
        self.second.transfer(completion - d2, n_bytes)
        return completion
