"""Simulated clock.

A tiny wrapper around a float so that components share one monotonic notion
of "now" and cannot accidentally move it backwards.
"""

from __future__ import annotations


class SimClock:
    """Monotonic simulated time in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"start time must be >= 0, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t``.

        Raises:
            ValueError: if ``t`` is earlier than the current time.
        """
        if t < self._now:
            raise ValueError(f"cannot move clock backwards: {t} < {self._now}")
        self._now = t

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
