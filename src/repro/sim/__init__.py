"""Discrete-event simulation substrate."""

from .channel import Channel, ChannelFaultHook, ChannelPair, FaultyTransfer
from .clock import SimClock
from .events import Event, EventQueue, LegacyEventQueue
from .loop import Simulator

__all__ = [
    "Channel",
    "ChannelFaultHook",
    "ChannelPair",
    "Event",
    "EventQueue",
    "FaultyTransfer",
    "LegacyEventQueue",
    "SimClock",
    "Simulator",
]
