"""Discrete-event simulation substrate."""

from .channel import Channel, ChannelFaultHook, ChannelPair, FaultyTransfer
from .clock import SimClock
from .events import Event, EventQueue
from .loop import Simulator

__all__ = [
    "Channel",
    "ChannelFaultHook",
    "ChannelPair",
    "Event",
    "EventQueue",
    "FaultyTransfer",
    "SimClock",
    "Simulator",
]
