"""Discrete-event simulation substrate."""

from .channel import Channel, ChannelPair
from .clock import SimClock
from .events import Event, EventQueue
from .loop import Simulator

__all__ = ["Channel", "ChannelPair", "Event", "EventQueue", "SimClock", "Simulator"]
