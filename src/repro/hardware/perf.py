"""Roofline performance model for transformer inference.

All execution times in the simulator come from this module.  The model is
intentionally simple and is calibrated against the measurements the paper
publishes about its own testbed:

* prefilling 2K tokens of LLaMA-65B on 4 A100s takes ~360 ms (Section 2.4)
  — reproduced by the compute-bound prefill path with MFU 0.58;
* the KV cache of those 2K tokens is 5 GB and takes ~192 ms to move over
  PCIe Gen4 x16 at 26 GB/s effective (Section 2.4) — reproduced by
  :meth:`PerfModel.kv_transfer_time`;
* decoding is memory-bandwidth-bound: each iteration streams the model
  weights plus the KV cache of every sequence in the batch.

Prefill:  ``t = FLOPs / (num_gpus * peak_flops * mfu)``
Decode:   ``t = (weight_bytes + kv_bytes) / (num_gpus * hbm_bw * mbu)``
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from ..config import HardwareConfig
from ..models import ModelSpec


@dataclass(frozen=True)
class PerfModel:
    """Analytical latency model for one (model, hardware) deployment."""

    model: ModelSpec
    hardware: HardwareConfig

    def __post_init__(self) -> None:
        # The simulator calls into this model on every event, so the
        # derived constants are computed once and the pure prefill-time
        # function is memoised per instance.  A bound-closure lru_cache
        # avoids hashing the whole (model, hardware) pair on every call;
        # the frozen dataclass guarantees the inputs never change.
        hw = self.hardware
        object.__setattr__(
            self, "_effective_flops", hw.num_gpus * hw.gpu.peak_flops * hw.gpu.mfu
        )
        object.__setattr__(
            self,
            "_effective_hbm_bandwidth",
            hw.num_gpus * hw.gpu.hbm_bandwidth * hw.gpu.mbu,
        )
        object.__setattr__(
            self, "_kv_bytes_per_token", self.model.kv_bytes_per_token
        )
        object.__setattr__(
            self, "_prefill_time_cached", lru_cache(maxsize=None)(self._prefill_time)
        )
        # Decode-chunk costs repeat heavily: a steady batch re-derives the
        # same (context_sum, batch, n_iterations) key every chunk.  Keys
        # are exact (no bucketing — rounding would change simulated
        # timing); the cache is bounded so a multi-million-session
        # streaming replay cannot grow it without limit.
        object.__setattr__(
            self,
            "_decode_segment_cached",
            lru_cache(maxsize=4096)(self._decode_segment_time_from_sum),
        )

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    @property
    def effective_flops(self) -> float:
        return self._effective_flops

    @property
    def effective_hbm_bandwidth(self) -> float:
        return self._effective_hbm_bandwidth

    def _prefill_time(self, n_new: int, n_past: int, batch: int) -> float:
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        flops = batch * self.model.prefill_flops(n_new, n_past)
        return flops / self.effective_flops

    def prefill_time(self, n_new: int, n_past: int = 0, batch: int = 1) -> float:
        """Seconds to prefill ``n_new`` tokens per sequence for ``batch``
        sequences, each with ``n_past`` tokens of reused KV cache.
        """
        return self._prefill_time_cached(n_new, n_past, batch)

    def prefill_time_per_token(self, batch: int = 1) -> float:
        """Marginal prefill seconds per token (dense term only).

        This is the ``T_pref`` of the Section 3.2.1 buffer-sizing formula.
        """
        return batch * 2.0 * self.model.n_params / self.effective_flops

    def decode_step_time(self, context_lengths: Sequence[int]) -> float:
        """Seconds for one decoding iteration of a continuous batch.

        Each iteration streams the weights once and the KV cache of every
        active sequence; per-token FLOPs are negligible next to the
        bandwidth term for realistic batch sizes.
        """
        kv_bytes = self._kv_bytes_per_token * sum(context_lengths)
        total = self.model.weight_bytes + kv_bytes
        return total / self.effective_hbm_bandwidth

    def decode_segment_time(
        self, context_lengths: Sequence[int], n_iterations: int
    ) -> float:
        """Seconds for ``n_iterations`` consecutive decode iterations.

        Contexts grow by one token per iteration, so the KV term forms an
        arithmetic series; the closed form avoids iterating in Python.
        """
        if n_iterations < 0:
            raise ValueError(f"n_iterations must be >= 0, got {n_iterations}")
        return self.decode_segment_time_from_sum(
            sum(context_lengths), len(context_lengths), n_iterations
        )

    def decode_segment_time_from_sum(
        self, context_sum: int, batch: int, n_iterations: int
    ) -> float:
        """Like :meth:`decode_segment_time`, from the batch's total context
        length instead of the per-sequence list (O(1) for the simulator).

        Memoised per exact ``(context_sum, batch, n_iterations)`` key —
        the simulator asks for the same chunk shape once per decode chunk
        of a steady batch.
        """
        return self._decode_segment_cached(context_sum, batch, n_iterations)

    def _decode_segment_time_from_sum(
        self, context_sum: int, batch: int, n_iterations: int
    ) -> float:
        if n_iterations < 0:
            raise ValueError(f"n_iterations must be >= 0, got {n_iterations}")
        if n_iterations == 0:
            return 0.0
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        # sum over i in [0, n) of (context_sum + batch * i)
        total_ctx = (
            n_iterations * context_sum
            + batch * n_iterations * (n_iterations - 1) // 2
        )
        kv_bytes = self._kv_bytes_per_token * total_ctx
        weight_bytes = self.model.weight_bytes * n_iterations
        return (weight_bytes + kv_bytes) / self.effective_hbm_bandwidth

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def kv_transfer_time(self, n_tokens: int, bandwidth: float, batch: int = 1) -> float:
        """Seconds to move the KV cache of ``n_tokens`` tokens per sequence
        (``batch`` sequences) over a link of ``bandwidth`` bytes/second."""
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        return batch * self.model.kv_bytes(n_tokens) / bandwidth

    def kv_load_time_per_token(self, batch: int = 1) -> float:
        """The ``T_load`` of the Section 3.2.1 formula, at PCIe bandwidth."""
        return batch * self.model.kv_bytes_per_token / self.hardware.pcie_bandwidth

    # ------------------------------------------------------------------
    # Section 3.2.1 buffer sizing
    # ------------------------------------------------------------------
    def read_buffer_bytes(self, n_hist: int, n_new: int, batch: int = 1) -> float:
        """Buffer size that hides residual load time, per the paper:

        ``S_buf = B * (T_load * L_hist - T_pref * L_new)`` (>= 0).
        """
        gap = (
            self.kv_load_time_per_token(batch) * n_hist
            - self.prefill_time_per_token(batch) * n_new
        )
        return max(0.0, self.hardware.pcie_bandwidth * gap)
