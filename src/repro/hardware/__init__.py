"""Hardware performance modelling (roofline latency model)."""

from ..config import GPUSpec, HardwareConfig
from .perf import PerfModel

__all__ = ["GPUSpec", "HardwareConfig", "PerfModel"]
