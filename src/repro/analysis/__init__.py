"""Cost, capacity and reporting analysis."""

from .capacity import (
    CapacityPlan,
    capacity_plan,
    ccps_bytes,
    distinct_sessions_per_unit_time,
)
from .cost import AWS_PRICES, CostBreakdown, PriceSheet, cost_saving, run_cost
from .report import format_table, percent, speedup

__all__ = [
    "AWS_PRICES",
    "CapacityPlan",
    "CostBreakdown",
    "PriceSheet",
    "capacity_plan",
    "ccps_bytes",
    "cost_saving",
    "distinct_sessions_per_unit_time",
    "format_table",
    "percent",
    "run_cost",
    "speedup",
]
