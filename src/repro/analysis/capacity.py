"""Cache-capacity provisioning analysis (Section 4.3.6, Figure 23).

Terms from the paper:

* ``CCpS`` — max cache capacity one session can need: context window
  length times the per-token KV size.
* ``DSpUT`` — distinct sessions served per unit time (the TTL is the unit
  time).
* ``CCpUT = DSpUT * CCpS`` — capacity that guarantees a 100 % hit rate for
  returning sessions within the TTL.
* ``RCC`` — the capacity actually provisioned; Figure 23 sweeps the ratio
  ``RCC / CCpUT`` and finds ~51 % hits at 0.1 and ~98 % at 0.25.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models import ModelSpec
from ..workload.trace import Trace


@dataclass(frozen=True)
class CapacityPlan:
    """Derived capacity-provisioning quantities for one deployment."""

    ccps_bytes: int
    dsput: float
    ttl_seconds: float

    @property
    def ccput_bytes(self) -> float:
        """Capacity for a guaranteed hit rate (modulo new arrivals)."""
        return self.dsput * self.ccps_bytes

    def rcc_bytes(self, ratio: float) -> int:
        """Provisioned capacity at a given RCC/CCpUT ratio."""
        if ratio <= 0:
            raise ValueError(f"ratio must be positive, got {ratio}")
        return int(self.ccput_bytes * ratio)


def ccps_bytes(model: ModelSpec) -> int:
    """Max per-session cache footprint: window length x KV size/token."""
    return model.context_window * model.kv_bytes_per_token


def distinct_sessions_per_unit_time(
    trace: Trace, ttl_seconds: float, horizon: float | None = None
) -> float:
    """Peak number of distinct sessions active within any TTL-length window.

    Uses session arrival times as the activity proxy (each session's turns
    cluster after its arrival), sliding a ``ttl_seconds`` window over them.
    """
    if ttl_seconds <= 0:
        raise ValueError(f"ttl_seconds must be positive, got {ttl_seconds}")
    arrivals = sorted(c.arrival_time for c in trace)
    if horizon is not None:
        arrivals = [a for a in arrivals if a <= horizon]
    if not arrivals:
        raise ValueError("trace has no arrivals in the horizon")
    best = 0
    start = 0
    for end, t in enumerate(arrivals):
        while arrivals[start] < t - ttl_seconds:
            start += 1
        best = max(best, end - start + 1)
    return float(best)


def capacity_plan(
    model: ModelSpec, trace: Trace, ttl_seconds: float = 3600.0
) -> CapacityPlan:
    """Build the Section 4.3.6 provisioning plan for a model + workload."""
    return CapacityPlan(
        ccps_bytes=ccps_bytes(model),
        dsput=distinct_sessions_per_unit_time(trace, ttl_seconds),
        ttl_seconds=ttl_seconds,
    )
