"""Inference cost model (Figure 17).

Prices follow the paper's Section 4.2, based on AWS EC2 on-demand rates:
$5/hour per A100 GPU, $0.0088/hour/GB of DRAM, $0.000082/hour/GB of SSD.
A run's cost is the resource-hours consumed while completing the workload:
GPUs for the makespan, plus (for CachedAttention) the DRAM and SSD that
AttentionStore occupies for the same period.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import HardwareConfig, StoreConfig
from ..engine.engine import RunResult
from ..models import GiB


@dataclass(frozen=True)
class PriceSheet:
    """Hourly resource prices (USD)."""

    gpu_per_hour: float = 5.0
    dram_per_gb_hour: float = 0.0088
    ssd_per_gb_hour: float = 0.000082

    def __post_init__(self) -> None:
        for name in ("gpu_per_hour", "dram_per_gb_hour", "ssd_per_gb_hour"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


AWS_PRICES = PriceSheet()


@dataclass(frozen=True)
class CostBreakdown:
    """Dollar cost of one serving run, by resource."""

    gpu: float
    dram: float
    ssd: float

    @property
    def total(self) -> float:
        return self.gpu + self.dram + self.ssd

    @property
    def storage_fraction(self) -> float:
        """Share of the total spent on DRAM + SSD (paper: 9-16 % for CA)."""
        return (self.dram + self.ssd) / self.total if self.total else 0.0


def run_cost(
    result: RunResult,
    hardware: HardwareConfig,
    store: StoreConfig | None = None,
    prices: PriceSheet = AWS_PRICES,
) -> CostBreakdown:
    """Cost of completing a workload, from its :class:`RunResult`.

    GPUs are billed for their busy hours (the paper's cost savings track
    its GPU-time reductions: in the saturated serving regime busy time and
    rental time coincide, and idle GPUs can serve other workloads).
    Storage is billed only for CachedAttention runs, which hold the
    configured DRAM/SSD for the whole serving period (the makespan).
    """
    gpu_hours = result.summary.total_gpu_busy_time / 3600.0
    gpu = hardware.num_gpus * prices.gpu_per_hour * gpu_hours
    dram = 0.0
    ssd = 0.0
    if result.is_cached and store is not None:
        storage_hours = result.summary.makespan / 3600.0
        dram = (store.dram_bytes / GiB) * prices.dram_per_gb_hour * storage_hours
        ssd = (store.ssd_bytes / GiB) * prices.ssd_per_gb_hour * storage_hours
    return CostBreakdown(gpu=gpu, dram=dram, ssd=ssd)


def cost_saving(cached: CostBreakdown, recompute: CostBreakdown) -> float:
    """Fractional cost reduction of CA relative to RE (paper: up to 70 %)."""
    if recompute.total <= 0:
        raise ValueError("recompute cost must be positive")
    return 1.0 - cached.total / recompute.total
