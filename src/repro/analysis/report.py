"""Plain-text tables for the benchmark harness.

Every ``benchmarks/bench_*.py`` prints the series/rows of one paper figure
or table through these helpers, so the console output can be compared
against the paper side by side (and captured into EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def percent(value: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.1f}%"


def speedup(baseline: float, improved: float) -> str:
    """Format a baseline/improved ratio as 'N.NNx'."""
    if improved <= 0:
        return "inf"
    return f"{baseline / improved:.2f}x"
