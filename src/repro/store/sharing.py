"""Cross-session shared prefix blocks (content-addressed, copy-on-write).

Real fleets serve huge populations that share system prompts, few-shot
templates and RAG preambles.  The AttentionStore of the paper keeps every
session's KV private; this module adds the metadata for deduplicating the
common prefix across sessions:

* a *content hash* deterministically identifies a prefix by its token
  identity and the model that produced the KV — two sessions whose
  conversations start with the same prefix under the same model map to the
  same hash;
* a :class:`SharedBlock` is the refcounted owner record for one deduped
  prefix.  The KV bytes themselves live in the store's tiers as an
  ordinary :class:`~repro.store.item.KVCacheItem` under a *pseudo session
  id* (negative, so it can never collide with a real session), which keeps
  every byte-conservation and tier-exclusivity invariant intact;
* copy-on-write: a session that *diverges* from the shared prefix (context
  -window truncation rewrites its history) forks the overlapping tokens
  into its private item and drops its reference; readers keep the shared
  block untouched.

Shared blocks are exempt from per-session eviction and TTL expiry while
``refcount > 0``; at zero they become ordinary eviction victims again.
The cluster invariant relaxes from "exactly one copy per session" to
"exactly one *owning* copy per content hash per store" — distinct replicas
may each hold a copy of the same content hash (that is the point of
content addressing: the bytes are reconstructible from the hash).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .attention_store import LookupStatus

__all__ = ["SharedBlock", "SharedLookup", "shared_prefix_hash"]


def shared_prefix_hash(prefix_id: int, n_tokens: int, model_name: str) -> str:
    """Deterministic content hash for a shared prefix.

    The simulator models token *counts*, not token values, so prefix
    identity is ``(prefix template id, prefix length, model)`` — the
    stand-in for hashing the actual prefix token ids plus the model spec.
    Sessions drawn with the same template under the same model collide by
    construction; anything else cannot.
    """
    if prefix_id < 0:
        raise ValueError(f"prefix_id must be >= 0, got {prefix_id}")
    if n_tokens <= 0:
        raise ValueError(f"n_tokens must be positive, got {n_tokens}")
    payload = f"{model_name}\x00{prefix_id}\x00{n_tokens}".encode()
    return hashlib.sha256(payload).hexdigest()


@dataclass(slots=True)
class SharedBlock:
    """Owner record for one deduplicated prefix.

    The KV bytes are stored under ``pseudo_id`` (negative) in the store's
    normal tier bookkeeping; this record only tracks identity and the
    reference count that pins the bytes against eviction.
    """

    content_hash: str
    pseudo_id: int
    n_tokens: int
    refcount: int = 0

    def __post_init__(self) -> None:
        if self.pseudo_id >= 0:
            raise ValueError(
                f"pseudo_id must be negative, got {self.pseudo_id}"
            )
        if self.n_tokens <= 0:
            raise ValueError(f"n_tokens must be positive, got {self.n_tokens}")


@dataclass(frozen=True, slots=True)
class SharedLookup:
    """Outcome of a shared-prefix lookup (always a hit; misses are None)."""

    status: LookupStatus
    n_tokens: int
    n_bytes: int
    ready_at: float = 0.0
