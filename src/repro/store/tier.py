"""A storage tier: capacity + block pool + resident-item tracking.

Tiers maintain both FIFO (arrival into the tier) and LRU (last access)
orderings incrementally, so eviction policies can pick victims in O(1)
instead of sorting the resident set on every eviction — essential when the
disk tier holds thousands of sessions.
"""

from __future__ import annotations

from typing import Iterator, KeysView

from .block import BlockAllocator
from .item import KVCacheItem, Tier


class StorageTier:
    """One level of the AttentionStore hierarchy (HBM, DRAM or disk)."""

    def __init__(self, tier: Tier, capacity_bytes: int, block_bytes: int) -> None:
        self.tier = tier
        self.allocator = BlockAllocator(capacity_bytes, block_bytes)
        # A block pool's capacity is fixed for its lifetime, so the
        # rounded-to-blocks capacity is snapshotted here: eviction and
        # prefetch budgeting read it on every plan, and a plain attribute
        # beats the two-property chain into the allocator.
        self.capacity_bytes: int = self.allocator.capacity_bytes
        # Python dicts preserve insertion order; we maintain one in arrival
        # order (FIFO) and one in access order (LRU, oldest first).
        self._fifo: dict[int, KVCacheItem] = {}
        self._lru: dict[int, KVCacheItem] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, session_id: int) -> bool:
        return session_id in self._fifo

    def __len__(self) -> int:
        return len(self._fifo)

    def get(self, session_id: int) -> KVCacheItem | None:
        return self._fifo.get(session_id)

    def session_ids(self) -> KeysView[int]:
        """Live view of resident session ids (O(1) membership tests)."""
        return self._fifo.keys()

    def iter_fifo(self) -> Iterator[KVCacheItem]:
        """Resident items, earliest tier arrival first."""
        return iter(self._fifo.values())

    def iter_lru(self) -> Iterator[KVCacheItem]:
        """Resident items, least recently accessed first."""
        return iter(self._lru.values())

    @property
    def used_bytes(self) -> int:
        return self.allocator.used_bytes

    @property
    def free_bytes(self) -> int:
        return self.allocator.free_bytes

    def can_fit(self, n_bytes: int) -> bool:
        return self.allocator.can_allocate(n_bytes)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def admit(self, item: KVCacheItem) -> None:
        """Place ``item`` in this tier, allocating blocks for it.

        Raises:
            OutOfBlocksError: if the tier lacks space (caller must evict).
            ValueError: if the session is already resident here.
        """
        if item.session_id in self._fifo:
            raise ValueError(
                f"session {item.session_id} already resident in {self.tier.value}"
            )
        item.allocation = self.allocator.allocate(item.n_bytes)
        item.tier = self.tier
        self._fifo[item.session_id] = item
        self._lru[item.session_id] = item

    def remove(self, session_id: int) -> KVCacheItem:
        """Remove a resident item and free its blocks.

        Raises:
            KeyError: if the session is not resident in this tier.
        """
        item = self._fifo.pop(session_id)
        del self._lru[session_id]
        self.allocator.free(item.allocation)
        return item

    def touch(self, session_id: int) -> None:
        """Move a resident item to the most-recently-used position."""
        item = self._lru.pop(session_id, None)
        if item is not None:
            self._lru[session_id] = item

    def resize(self, session_id: int, n_tokens: int, n_bytes: int) -> None:
        """Shrink a resident item in place (KV truncation)."""
        item = self._fifo[session_id]
        item.allocation = self.allocator.resize(item.allocation, n_bytes)
        item.n_tokens = n_tokens
        item.n_bytes = n_bytes
