"""KV-cache items: the unit of placement in AttentionStore.

One item holds *all* KV caches of a conversation session across all layers
— the paper's minimal eviction and fetching granularity, because "the KV
cache in the same conversation session is either all used or none of it is
used" (Section 3.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .block import Allocation


class Tier(str, Enum):
    """Where a KV-cache item currently resides."""

    HBM = "hbm"
    DRAM = "dram"
    DISK = "disk"


@dataclass(slots=True)
class KVCacheItem:
    """Metadata for one session's stored KV cache.

    Attributes:
        session_id: the conversation session this item belongs to.
        n_tokens: number of tokens whose KV is stored.
        n_bytes: total footprint.
        tier: current residency tier.
        allocation: block allocation backing the item in its tier.
        position_decoupled: True if the KV was saved *before* positional
            encoding was applied (CachedAttention); False reproduces the OF
            baseline whose caches are invalidated by truncation.
        valid: False once the cache can no longer be reused (embedded
            positions + truncation).
        corrupt: set by fault injection at save time; discovered by
            checksum validation at the next lookup (``MISS_CORRUPT``).
        lost: set by fault injection at save time; the item silently
            vanished and the next lookup is a plain miss.
        created_at / last_access: timestamps driving FIFO/LRU/TTL.
        dram_ready_at: if a fetch from disk is in flight, the simulated time
            at which the DRAM copy becomes usable.
    """

    session_id: int
    n_tokens: int
    n_bytes: int
    tier: Tier
    allocation: Allocation
    position_decoupled: bool = True
    valid: bool = True
    corrupt: bool = False
    lost: bool = False
    created_at: float = 0.0
    last_access: float = 0.0
    dram_ready_at: float = 0.0
    fetch_in_flight: bool = field(default=False)

    def __post_init__(self) -> None:
        if self.n_tokens <= 0:
            raise ValueError(f"n_tokens must be positive, got {self.n_tokens}")
        if self.n_bytes <= 0:
            raise ValueError(f"n_bytes must be positive, got {self.n_bytes}")

    def touch(self, now: float) -> None:
        self.last_access = now

    def expired(self, now: float, ttl_seconds: float | None) -> bool:
        """TTL from Section 4.3.6: maximum saving time since last access.

        A ``None`` TTL never expires.
        """
        if ttl_seconds is None:
            return False
        return now - self.last_access > ttl_seconds
