"""Scheduler-aware KV-cache fetching from disks to host memory.

Section 3.3.1: a look-ahead *prefetching window* watches the waiting jobs
in the scheduler's queue; any waiting job whose KV cache sits on disk is
fetched into DRAM before the job runs.  The window length is bounded by the
DRAM capacity available for prefetching: ``L_pw = C_mem / S_kv``.

The planner walks the queue head-first and charges every window job's KV
footprint against the byte budget — including jobs whose caches are
*already* in DRAM — so the cumulative window footprint never overcommits
the memory reserved for prefetching (overcommit would evict the window's
own tail and thrash the SSD).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .policy import QueueView


@dataclass(frozen=True, slots=True)
class PrefetchDecision:
    """One planned disk -> DRAM fetch."""

    session_id: int
    n_bytes: int
    queue_position: int

    def trace_args(self) -> dict[str, object]:
        """The decision as stable span-annotation args (repro.obs)."""
        return {
            "session": self.session_id,
            "bytes": self.n_bytes,
            "queue_position": self.queue_position,
        }


@dataclass(frozen=True, slots=True)
class WindowEntry:
    """Residency of one waiting job's KV cache, as seen by the planner.

    ``n_bytes`` is the item footprint; ``on_disk`` is True when the item is
    fetchable from disk (False means it already occupies DRAM/HBM or is in
    flight, which still consumes window budget).
    """

    n_bytes: int
    on_disk: bool


def plan_prefetches(
    queue: QueueView,
    residency: Callable[[int], WindowEntry | None],
    prefetch_budget_bytes: int,
    avg_item_bytes: float,
) -> list[PrefetchDecision]:
    """Choose which waiting jobs' KV caches to fetch from disk.

    Args:
        queue: the scheduler's waiting jobs (head first).
        residency: maps a session id to its stored item's
            :class:`WindowEntry`, or None when nothing is stored.
        prefetch_budget_bytes: DRAM bytes the look-ahead window may occupy.
        avg_item_bytes: running average KV-item size ``S_kv``, used to bound
            the number of queue entries examined (``L_pw = C_mem / S_kv``).

    Returns:
        Fetches in queue order.  The walk stops when the byte budget is
        exhausted, so the window never overcommits DRAM.
    """
    if prefetch_budget_bytes <= 0 or len(queue) == 0:
        return []
    window_len = max(1, int(prefetch_budget_bytes / max(avg_item_bytes, 1.0)))
    decisions: list[PrefetchDecision] = []
    budget = prefetch_budget_bytes
    seen: set[int] = set()
    for pos, session_id in enumerate(queue.head_window(window_len)):
        if session_id in seen:
            continue
        seen.add(session_id)
        entry = residency(session_id)
        if entry is None:
            continue
        if entry.n_bytes > budget:
            break  # window is full; later jobs wait for the next plan
        budget -= entry.n_bytes
        if entry.on_disk:
            decisions.append(
                PrefetchDecision(
                    session_id=session_id,
                    n_bytes=entry.n_bytes,
                    queue_position=pos,
                )
            )
    return decisions
