"""Eviction policies for AttentionStore tiers.

The paper compares its scheduler-aware policy (Section 3.3.2) against LRU
and FIFO (Figure 21).  A policy picks one victim at a time; the store calls
it repeatedly until enough space is free.

Victim selection is O(scan_limit), not O(n log n): tiers maintain LRU/FIFO
orderings incrementally and the scheduler queue answers position queries in
O(1), so the policies walk a bounded prefix of those orderings instead of
sorting the full resident set on every eviction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import islice
from typing import AbstractSet, Iterable, Iterator, Protocol, runtime_checkable

from .item import KVCacheItem
from .tier import StorageTier


@runtime_checkable
class QueueView(Protocol):
    """The scheduler-queue visibility AttentionStore policies rely on."""

    def position(self, session_id: int) -> int | None:
        """Distance of the session's earliest waiting job from the queue
        head, or None if the session has no waiting job."""

    def head_window(self, k: int) -> Iterator[int]:
        """Session ids of the first ``k`` waiting jobs, head first."""

    def tail_window(self, k: int) -> Iterator[int]:
        """Session ids of the last ``k`` waiting jobs, tail first."""

    def __len__(self) -> int: ...


class EmptyQueueView:
    """A queue view with no waiting jobs (for tests and history-only use)."""

    def position(self, session_id: int) -> int | None:
        return None

    def position_map(self) -> tuple[dict[int, int], int]:
        return {}, 0

    def head_window(self, k: int) -> Iterator[int]:
        return iter(())

    def head_window_list(self, k: int) -> list[int]:
        return []

    def tail_window(self, k: int) -> Iterator[int]:
        return iter(())

    def __len__(self) -> int:
        return 0


class ListQueueView:
    """Queue view over a static list of upcoming session ids (head first)."""

    def __init__(self, session_ids: Iterable[int]) -> None:
        self._ids = list(session_ids)
        self._pos: dict[int, int] = {}
        for idx, sid in enumerate(self._ids):
            self._pos.setdefault(sid, idx)

    def position(self, session_id: int) -> int | None:
        return self._pos.get(session_id)

    def position_map(self) -> tuple[dict[int, int], int]:
        return self._pos, 0

    def head_window(self, k: int) -> Iterator[int]:
        return iter(self._ids[:k])

    def head_window_list(self, k: int) -> list[int]:
        return self._ids[:k]

    def tail_window(self, k: int) -> Iterator[int]:
        # Slice the last k directly instead of reversing the whole list
        # first (O(k), not O(n)).  -0 would slice the entire list, so an
        # empty window needs its own exit.
        if k <= 0:
            return iter(())
        return reversed(self._ids[-k:])

    def __len__(self) -> int:
        return len(self._ids)


def _evictable(item: KVCacheItem, pinned: AbstractSet[int]) -> bool:
    return item.session_id not in pinned and not item.fetch_in_flight


class EvictionPolicy(ABC):
    """Chooses the next eviction victim in a tier."""

    name: str = "abstract"

    @abstractmethod
    def choose_victim(
        self,
        tier: StorageTier,
        queue: QueueView,
        pinned: AbstractSet[int] = frozenset(),
    ) -> KVCacheItem | None:
        """Return the next item to evict from ``tier``, or None if every
        resident item is pinned or in flight."""


class LRUPolicy(EvictionPolicy):
    """Least-recently-used: evict the item idle the longest."""

    name = "lru"

    def choose_victim(
        self,
        tier: StorageTier,
        queue: QueueView,
        pinned: AbstractSet[int] = frozenset(),
    ) -> KVCacheItem | None:
        for item in tier.iter_lru():
            if _evictable(item, pinned):
                return item
        return None


class FIFOPolicy(EvictionPolicy):
    """First-in-first-out: evict the item that entered the tier earliest."""

    name = "fifo"

    def choose_victim(
        self,
        tier: StorageTier,
        queue: QueueView,
        pinned: AbstractSet[int] = frozenset(),
    ) -> KVCacheItem | None:
        for item in tier.iter_fifo():
            if _evictable(item, pinned):
                return item
        return None


class SchedulerAwarePolicy(EvictionPolicy):
    """The paper's scheduler-aware eviction (Section 3.3.2).

    Rules, in order:

    1. An item whose session appears in the look-ahead eviction window (the
       next ``window_limit`` waiting jobs) is *exempted* while any item
       outside the window exists; outside-window items are evicted
       LRU-first.
    2. If every candidate has a waiting job inside the window, the window is
       scanned from *tail to head* and the first item found resident in the
       tier is evicted — the job needed furthest in the future loses its
       cache last-minute protection first.

    Both scans are bounded by ``scan_limit`` so a single eviction stays
    O(scan_limit) even with thousands of residents and a deep backlog; the
    LRU-ordered walk makes the bounded scan coincide with the exact policy
    in all but adversarial cases.
    """

    name = "scheduler-aware"

    def __init__(self, window_limit: int | None = None, scan_limit: int = 128) -> None:
        if scan_limit <= 0:
            raise ValueError(f"scan_limit must be positive, got {scan_limit}")
        self.window_limit = window_limit
        self.scan_limit = scan_limit

    def choose_victim(
        self,
        tier: StorageTier,
        queue: QueueView,
        pinned: AbstractSet[int] = frozenset(),
    ) -> KVCacheItem | None:
        limit = self.window_limit if self.window_limit is not None else len(queue)
        # Hundreds of candidates get a position query per eviction; views
        # exposing ``position_map`` (the scheduler queue and the built-in
        # views) let the scan replace per-item ``queue.position`` method
        # calls with one dict lookup.  ``position(sid)`` is exactly
        # ``seqs.get(sid) - head`` for these views, so the decision stream
        # is unchanged; unknown views fall back to the protocol method.
        seqs: dict[int, int] | None
        position_map = getattr(queue, "position_map", None)
        if position_map is not None:
            seqs, head = position_map()
        else:
            seqs, head = None, 0
        scan_limit = self.scan_limit
        queue_position = queue.position
        # Pass 1: oldest items without a queued job inside the window.
        furthest: KVCacheItem | None = None
        furthest_pos = -1
        scanned = 0
        for item in tier.iter_lru():
            if scanned >= scan_limit:
                break
            scanned += 1
            if item.session_id in pinned or item.fetch_in_flight:
                continue
            if seqs is None:
                pos = queue_position(item.session_id)
            else:
                seq = seqs.get(item.session_id)
                pos = None if seq is None else seq - head
            if pos is None or pos >= limit:
                return item
            if pos > furthest_pos:
                furthest_pos = pos
                furthest = item
        # Pass 2: every scanned candidate has a job inside the window —
        # the paper scans the window tail-to-head, i.e. the resident item
        # whose job is furthest in the future goes first.  Finish the exact
        # scan over the whole tier when the bounded pass missed items,
        # resuming past the prefix pass 1 already examined instead of
        # re-scanning it from the tier head.
        if len(tier) > scan_limit:
            for item in islice(tier.iter_lru(), scan_limit, None):
                if item.session_id in pinned or item.fetch_in_flight:
                    continue
                if seqs is None:
                    pos = queue_position(item.session_id)
                else:
                    seq = seqs.get(item.session_id)
                    pos = None if seq is None else seq - head
                if pos is None or pos >= limit:
                    return item
                if pos > furthest_pos:
                    furthest_pos = pos
                    furthest = item
        return furthest
