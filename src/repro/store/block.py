"""Block-based storage allocation.

Section 4.1: "The host memory and disks are managed in the form of blocks to
improve storage utilization, similar to [vLLM]. Our internal storage
allocator allocates and deallocates storage blocks on demand."

A :class:`BlockAllocator` owns a fixed pool of equal-sized blocks.
Allocations are identified by an opaque handle and consume
``ceil(bytes / block_bytes)`` blocks; the difference is tracked as internal
fragmentation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Allocation:
    """A successful block allocation."""

    handle: int
    n_blocks: int
    requested_bytes: int
    block_bytes: int

    @property
    def allocated_bytes(self) -> int:
        return self.n_blocks * self.block_bytes

    @property
    def internal_fragmentation(self) -> int:
        return self.allocated_bytes - self.requested_bytes


class OutOfBlocksError(Exception):
    """Raised when an allocator cannot satisfy a request."""


class BlockAllocator:
    """Fixed-capacity pool of equal-sized blocks."""

    def __init__(self, capacity_bytes: int, block_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError(f"capacity_bytes must be >= 0, got {capacity_bytes}")
        if block_bytes <= 0:
            raise ValueError(f"block_bytes must be positive, got {block_bytes}")
        self._block_bytes = block_bytes
        self._total_blocks = capacity_bytes // block_bytes
        self._free_blocks = self._total_blocks
        self._allocations: dict[int, Allocation] = {}
        self._next_handle = 0

    @property
    def block_bytes(self) -> int:
        return self._block_bytes

    @property
    def total_blocks(self) -> int:
        return self._total_blocks

    @property
    def free_blocks(self) -> int:
        return self._free_blocks

    @property
    def used_blocks(self) -> int:
        return self._total_blocks - self._free_blocks

    @property
    def capacity_bytes(self) -> int:
        return self._total_blocks * self._block_bytes

    @property
    def free_bytes(self) -> int:
        return self._free_blocks * self._block_bytes

    @property
    def used_bytes(self) -> int:
        return self.used_blocks * self._block_bytes

    @property
    def internal_fragmentation_bytes(self) -> int:
        return sum(a.internal_fragmentation for a in self._allocations.values())

    def blocks_needed(self, n_bytes: int) -> int:
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        return -(-n_bytes // self._block_bytes)  # ceil division

    def can_allocate(self, n_bytes: int) -> bool:
        return self.blocks_needed(n_bytes) <= self._free_blocks

    def allocate(self, n_bytes: int) -> Allocation:
        """Allocate blocks for ``n_bytes``.

        Raises:
            OutOfBlocksError: if the pool lacks enough free blocks.
        """
        need = self.blocks_needed(n_bytes)
        if need > self._free_blocks:
            raise OutOfBlocksError(
                f"need {need} blocks, only {self._free_blocks} free"
            )
        allocation = Allocation(
            handle=self._next_handle,
            n_blocks=need,
            requested_bytes=n_bytes,
            block_bytes=self._block_bytes,
        )
        self._next_handle += 1
        self._free_blocks -= need
        self._allocations[allocation.handle] = allocation
        return allocation

    def free(self, allocation: Allocation) -> None:
        """Return an allocation's blocks to the pool.

        Raises:
            KeyError: if the allocation is unknown (e.g. double free).
        """
        if allocation.handle not in self._allocations:
            raise KeyError(f"unknown or already-freed allocation {allocation.handle}")
        del self._allocations[allocation.handle]
        self._free_blocks += allocation.n_blocks

    def resize(self, allocation: Allocation, n_bytes: int) -> Allocation:
        """Shrink or grow an allocation in place (used by KV truncation)."""
        self.free(allocation)
        try:
            return self.allocate(n_bytes)
        except OutOfBlocksError:
            # Restore the original allocation so the caller's state is intact.
            self._free_blocks -= allocation.n_blocks
            self._allocations[allocation.handle] = allocation
            raise
