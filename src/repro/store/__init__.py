"""AttentionStore: hierarchical KV caching for multi-turn conversations."""

from .attention_store import (
    AttentionStore,
    LookupResult,
    LookupStatus,
    StoreStats,
    make_policy,
)
from .block import Allocation, BlockAllocator, OutOfBlocksError
from .item import KVCacheItem, Tier
from .policy import (
    EmptyQueueView,
    EvictionPolicy,
    FIFOPolicy,
    ListQueueView,
    LRUPolicy,
    QueueView,
    SchedulerAwarePolicy,
)
from .prefetch import PrefetchDecision, plan_prefetches
from .sharing import SharedBlock, SharedLookup, shared_prefix_hash
from .tier import StorageTier

__all__ = [
    "Allocation",
    "AttentionStore",
    "BlockAllocator",
    "EmptyQueueView",
    "EvictionPolicy",
    "FIFOPolicy",
    "KVCacheItem",
    "LRUPolicy",
    "ListQueueView",
    "LookupResult",
    "LookupStatus",
    "OutOfBlocksError",
    "PrefetchDecision",
    "QueueView",
    "SchedulerAwarePolicy",
    "SharedBlock",
    "SharedLookup",
    "StorageTier",
    "StoreStats",
    "Tier",
    "make_policy",
    "plan_prefetches",
    "shared_prefix_hash",
]
