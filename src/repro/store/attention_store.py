"""AttentionStore: the hierarchical KV caching system of CachedAttention.

Responsibilities (Section 3 of the paper):

* place each inactive session's KV cache in an (optional) HBM cache tier,
  host DRAM, or disk, managed in fixed-size blocks;
* serve lookups, reporting which tier a session's cache resides in;
* prefetch upcoming sessions' caches from disk to DRAM using scheduler
  hints (Section 3.3.1);
* evict DRAM -> disk -> out-of-system with a pluggable policy
  (scheduler-aware by default; LRU/FIFO baselines, Section 3.3.2);
* expire items whose TTL since last access has lapsed (Section 4.3.6);
* truncate stored caches on context-window overflow — only possible when
  the KV was saved with positional encodings decoupled (Section 3.4);
* degrade gracefully under injected faults: items are validated at lookup
  (corrupt caches are never served — ``MISS_CORRUPT`` triggers a recompute
  fallback upstream), transient SSD failures are retried with capped
  exponential backoff, and a circuit breaker bypasses a sick SSD entirely
  (DRAM-only operation with recovery probes);
* deduplicate *shared prefixes* across sessions (system prompts, few-shot
  templates): content-addressed refcounted blocks stored under negative
  pseudo session ids, pinned against eviction while referenced, forked
  copy-on-write when a session's history diverges (see
  :mod:`repro.store.sharing` and DESIGN.md §15).

Transfer *timing* is modelled via the SSD channel passed in; the engine
owns PCIe timing for HBM loads.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, AbstractSet, Callable, KeysView

from ..config import EvictionPolicyName, StoreConfig
from ..faults import FaultInjector, TierHealth
from ..sim.channel import Channel, FaultyTransfer
from .block import OutOfBlocksError
from .item import KVCacheItem, Tier
from .policy import (
    EmptyQueueView,
    EvictionPolicy,
    FIFOPolicy,
    LRUPolicy,
    QueueView,
    SchedulerAwarePolicy,
)
from .sharing import SharedBlock, SharedLookup
from .tier import StorageTier

if TYPE_CHECKING:
    from ..obs.spans import SpanTracer


class LookupStatus(str, Enum):
    """Where a lookup found (or failed to find) a session's KV cache."""

    HIT_HBM = "hit-hbm"
    HIT_DRAM = "hit-dram"
    HIT_DISK = "hit-disk"
    MISS = "miss"
    #: The item was present but failed checksum validation (injected
    #: corruption); it is dropped and must be recomputed, never served.
    MISS_CORRUPT = "miss-corrupt"


@dataclass(frozen=True, slots=True)
class LookupResult:
    """Outcome of a cache lookup for a resuming session."""

    status: LookupStatus
    n_tokens: int = 0
    n_bytes: int = 0
    ready_at: float = 0.0

    @property
    def hit(self) -> bool:
        return self.status not in (LookupStatus.MISS, LookupStatus.MISS_CORRUPT)


@dataclass(slots=True)
class StoreStats:
    """Operational counters (evictions, expiries, prefetches, faults)."""

    evicted_to_disk: int = 0
    evicted_out: int = 0
    expired: int = 0
    prefetches: int = 0
    prefetched_bytes: int = 0
    invalidated: int = 0
    truncations: int = 0
    saves: int = 0
    save_rejections: int = 0
    # Fault/degradation counters (all zero unless fault injection is on):
    transfer_faults: int = 0
    transfer_retries: int = 0
    corrupt_misses: int = 0
    lost_items: int = 0
    failed_saves: int = 0
    fallback_recomputes: int = 0
    breaker_trips: int = 0
    breaker_recoveries: int = 0
    # Cluster-serving counters (zero outside multi-instance runs):
    migrations_in: int = 0
    migrations_out: int = 0
    migrated_bytes_out: int = 0
    scatter_drops: int = 0
    # Replica-lifecycle counters (zero unless crashes are scheduled):
    restart_readmissions: int = 0
    restart_discards: int = 0
    # Shared-prefix counters (zero unless the workload carries prefixes):
    shared_registered: int = 0
    shared_hits: int = 0
    shared_misses: int = 0
    shared_acquires: int = 0
    shared_releases: int = 0
    cow_forks: int = 0
    shared_register_failures: int = 0
    shared_orphan_discards: int = 0
    shared_adoptions: int = 0


def make_policy(
    name: EvictionPolicyName, window_limit: int | None = None
) -> EvictionPolicy:
    """Instantiate an eviction policy by configuration name."""
    if name is EvictionPolicyName.SCHEDULER_AWARE:
        return SchedulerAwarePolicy(window_limit=window_limit)
    if name is EvictionPolicyName.LRU:
        return LRUPolicy()
    if name is EvictionPolicyName.FIFO:
        return FIFOPolicy()
    raise ValueError(f"unknown eviction policy {name!r}")


_EMPTY_QUEUE = EmptyQueueView()

#: Lookup status by residency tier (module-level: the lookup hot path must
#: not rebuild this mapping on every call).
_STATUS_BY_TIER = {
    Tier.HBM: LookupStatus.HIT_HBM,
    Tier.DRAM: LookupStatus.HIT_DRAM,
    Tier.DISK: LookupStatus.HIT_DISK,
}


class AttentionStore:
    """Hierarchical KV cache for multi-turn conversation sessions."""

    def __init__(
        self,
        config: StoreConfig,
        kv_bytes_per_token: int,
        ssd_channel: Channel | None = None,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        if kv_bytes_per_token <= 0:
            raise ValueError(
                f"kv_bytes_per_token must be positive, got {kv_bytes_per_token}"
            )
        self.config = config
        self.kv_bytes_per_token = kv_bytes_per_token
        self.ssd = ssd_channel or Channel("ssd", bandwidth=4e9)
        self.faults = fault_injector
        self.ssd_health: TierHealth | None = None
        if fault_injector is not None:
            fc = fault_injector.config
            self.ssd_health = TierHealth(fc.breaker_threshold, fc.breaker_cooldown)
            if self.ssd.fault_hook is None:
                self.ssd.fault_hook = fault_injector
        self.hbm_tier = StorageTier(Tier.HBM, config.hbm_cache_bytes, config.block_bytes)
        self.dram_tier = StorageTier(Tier.DRAM, config.dram_bytes, config.block_bytes)
        self.disk_tier = StorageTier(Tier.DISK, config.ssd_bytes, config.block_bytes)
        self._tiers = {
            Tier.HBM: self.hbm_tier,
            Tier.DRAM: self.dram_tier,
            Tier.DISK: self.disk_tier,
        }
        self.policy = make_policy(config.policy)
        self.stats = StoreStats()
        self._items: dict[int, KVCacheItem] = {}
        self._total_item_bytes = 0
        # Block-granular dirty tracking: tokens of each session already
        # written to disk, so DRAM -> disk demotion only transfers the KV
        # blocks the disk does not hold yet (saves re-spill bandwidth when
        # a prefetched session returns with one extra turn appended).
        self._disk_written_tokens: dict[int, int] = {}
        # SSD items parked by wipe_volatile() while the replica is down:
        # (item, disk_written_tokens, shared prefix hash or None) triples,
        # off the store's books until restore_offline() re-admits them.
        self._offline: list[tuple[KVCacheItem, int, str | None]] = []
        # Cross-session shared prefix blocks (content-addressed, COW).
        # The KV bytes live in the normal tiers as items keyed by negative
        # pseudo ids; these maps only hold identity and references.  All
        # four stay empty unless the workload carries shared prefixes, so
        # every hot-path guard below is a falsy check.
        self._shared: dict[str, SharedBlock] = {}
        self._pseudo_to_hash: dict[int, str] = {}
        self._shared_ref: dict[int, str] = {}
        self._shared_pinned: set[int] = set()
        self._next_pseudo_id = -1
        # Optional span tracer (repro.obs): installed from outside via
        # SpanTracer.attach_engine; pure observation of tier movement.
        self.tracer: "SpanTracer | None" = None
        self.trace_track: str = "store"

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, session_id: int) -> bool:
        return session_id in self._items

    def __len__(self) -> int:
        return len(self._items)

    def resident_sessions(self) -> KeysView[int]:
        """Session ids with a cache resident in any tier (insertion order,
        so iteration is deterministic).  Negative ids are shared prefix
        blocks' pseudo sessions, not real conversations."""
        return self._items.keys()

    def get(self, session_id: int) -> KVCacheItem | None:
        return self._items.get(session_id)

    def item_bytes(self, n_tokens: int) -> int:
        return n_tokens * self.kv_bytes_per_token

    @property
    def total_item_bytes(self) -> int:
        return self._total_item_bytes

    @property
    def avg_item_bytes(self) -> float:
        """Running average item size, ``S_kv`` in the paper's formulas."""
        if not self._items:
            return 2048.0 * self.kv_bytes_per_token
        return self._total_item_bytes / len(self._items)

    def eviction_window_limit(self) -> int:
        """Maximum look-ahead eviction window length (Section 3.3.2):
        ``(C_mem + C_disk) / S_kv``."""
        capacity = self.dram_tier.capacity_bytes + self.disk_tier.capacity_bytes
        return max(1, int(capacity / max(self.avg_item_bytes, 1.0)))

    def prefetch_window_limit(self) -> int:
        """Look-ahead prefetching window length (Section 3.3.1):
        ``L_pw = C_mem / S_kv``."""
        return max(
            1, int(self.dram_tier.capacity_bytes / max(self.avg_item_bytes, 1.0))
        )

    def _tier_of(self, item: KVCacheItem) -> StorageTier:
        return self._tiers[item.tier]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, session_id: int, now: float) -> LookupResult:
        """Check whether a resuming session's KV cache can be reused.

        Expired or invalidated items are dropped and reported as misses.
        Items are validated before being served: a lost item is a plain
        miss, a corrupt one (checksum mismatch) reports ``MISS_CORRUPT``
        so the engine can account the recompute fallback separately.
        A hit refreshes the item's last-access time and LRU position.
        """
        item = self._items.get(session_id)
        if item is None:
            return LookupResult(LookupStatus.MISS)
        if not item.valid:
            self.drop(session_id)
            return LookupResult(LookupStatus.MISS)
        if item.lost:
            self.stats.lost_items += 1
            self.drop(session_id)
            return LookupResult(LookupStatus.MISS)
        if item.corrupt:
            self.stats.corrupt_misses += 1
            self.drop(session_id)
            return LookupResult(LookupStatus.MISS_CORRUPT)
        if item.expired(now, self.config.ttl_seconds):
            self.stats.expired += 1
            self.drop(session_id)
            return LookupResult(LookupStatus.MISS)
        item.touch(now)
        self._tiers[item.tier].touch(session_id)
        status = _STATUS_BY_TIER[item.tier]
        ready = item.dram_ready_at if item.tier is Tier.DRAM else 0.0
        return LookupResult(
            status=status,
            n_tokens=item.n_tokens,
            n_bytes=item.n_bytes,
            ready_at=ready,
        )

    # ------------------------------------------------------------------
    # Save / drop / truncate
    # ------------------------------------------------------------------
    def save(
        self,
        session_id: int,
        n_tokens: int,
        now: float,
        queue: QueueView = _EMPTY_QUEUE,
        position_decoupled: bool = True,
        pinned: AbstractSet[int] = frozenset(),
    ) -> KVCacheItem | None:
        """Store (or replace) a session's KV cache in DRAM.

        Evicts DRAM -> disk -> out as needed.  Returns the stored item, or
        None when the cache cannot fit anywhere (it is then simply not
        retained — a store overflow).  When a *replacement* is rejected the
        session's previous item is kept: the still-reusable turn N-1 prefix
        must not be destroyed by a failed save of turn N.
        """
        if n_tokens <= 0:
            raise ValueError(f"n_tokens must be positive, got {n_tokens}")
        n_bytes = self.item_bytes(n_tokens)
        # Replacing a session's item extends it by one turn; KV blocks
        # already spilled to disk stay addressable for delta write-back
        # (lazy reclamation), so the dirty state survives the replace.  The
        # old item is only *removed* here; it is restored if the
        # replacement cannot be admitted.
        old = self._items.pop(session_id, None)
        old_written = self._disk_written_tokens.pop(session_id, 0)
        old_tier = None
        if old is not None:
            old_tier = self._tier_of(old)
            old_tier.remove(session_id)
            self._total_item_bytes -= old.n_bytes

        if n_bytes > self.dram_tier.capacity_bytes or not self._make_dram_space(
            n_bytes, queue, now, pinned
        ):
            self.stats.save_rejections += 1
            if old is not None and old_tier is not None:
                try:
                    old_tier.admit(old)
                except OutOfBlocksError:
                    # The eviction cascade consumed the freed space; the
                    # old item is genuinely unrecoverable.
                    self.stats.evicted_out += 1
                    return None
                self._items[session_id] = old
                self._total_item_bytes += old.n_bytes
                if old_written:
                    self._disk_written_tokens[session_id] = old_written
            return None

        item = KVCacheItem(
            session_id=session_id,
            n_tokens=n_tokens,
            n_bytes=n_bytes,
            tier=Tier.DRAM,
            allocation=None,  # type: ignore[arg-type]  # set by admit()
            position_decoupled=position_decoupled,
            created_at=now,
            last_access=now,
        )
        self.dram_tier.admit(item)
        self._items[session_id] = item
        self._total_item_bytes += n_bytes
        if old_written:
            # Clamped so the delta-write-back invariant
            # ``disk_written_tokens <= n_tokens`` holds even if the
            # replacement shrank the item.
            self._disk_written_tokens[session_id] = min(old_written, n_tokens)
        self.stats.saves += 1
        self._inject_save_faults(item)
        if self.tracer is not None:
            self._trace_occupancy(now)
        return item

    def _inject_save_faults(self, item: KVCacheItem) -> None:
        """Draw save-time corruption/loss decisions from the injector."""
        if self.faults is None:
            return
        if self.faults.corrupts_save():
            item.corrupt = True
        if self.faults.loses_save():
            item.lost = True

    def save_to_hbm_cache(
        self,
        session_id: int,
        n_tokens: int,
        now: float,
        queue: QueueView = _EMPTY_QUEUE,
        pinned: AbstractSet[int] = frozenset(),
    ) -> KVCacheItem | None:
        """Retain a session's KV directly in the HBM cache tier (Figure 24's
        HBM-only/HBM+DRAM baselines).  When the HBM tier is full its
        least-recently-used items overflow into the rest of the hierarchy
        via the normal save path (or are dropped if no lower tier exists).
        """
        if self.hbm_tier.capacity_bytes == 0:
            return self.save(session_id, n_tokens, now, queue=queue, pinned=pinned)
        if session_id in self._items:
            self.drop(session_id)
        n_bytes = self.item_bytes(n_tokens)
        if n_bytes > self.hbm_tier.capacity_bytes:
            return self._overflow_from_hbm(session_id, n_tokens, now, queue, pinned)
        while not self.hbm_tier.can_fit(n_bytes):
            victim = LRUPolicy().choose_victim(self.hbm_tier, _EMPTY_QUEUE)
            if victim is None:
                return self._overflow_from_hbm(
                    session_id, n_tokens, now, queue, pinned
                )
            self._overflow_from_hbm(
                victim.session_id, victim.n_tokens, now, queue, pinned
            )
        item = KVCacheItem(
            session_id=session_id,
            n_tokens=n_tokens,
            n_bytes=n_bytes,
            tier=Tier.HBM,
            allocation=None,  # type: ignore[arg-type]
            created_at=now,
            last_access=now,
        )
        self.hbm_tier.admit(item)
        self._items[session_id] = item
        self._total_item_bytes += n_bytes
        self.stats.saves += 1
        self._inject_save_faults(item)
        if self.tracer is not None:
            self._trace_occupancy(now)
        return item

    def _overflow_from_hbm(
        self,
        session_id: int,
        n_tokens: int,
        now: float,
        queue: QueueView = _EMPTY_QUEUE,
        pinned: AbstractSet[int] = frozenset(),
    ) -> KVCacheItem | None:
        """Demote an HBM-cached session to DRAM/disk (dropping it when no
        lower tier is configured)."""
        if session_id in self._items:
            self.drop(session_id)
        if self.dram_tier.capacity_bytes == 0:
            return None
        return self.save(session_id, n_tokens, now, queue=queue, pinned=pinned)

    def drop(self, session_id: int) -> None:
        """Remove a session's cache from the store entirely.

        A shared-prefix reference held by the session is released (the
        session can re-acquire it by content hash on its next turn); a
        *pseudo* id drops the shared block itself.
        """
        if self._shared_ref:
            self._release_ref(session_id)
        self._disk_written_tokens.pop(session_id, None)
        item = self._items.pop(session_id, None)
        if item is not None:
            self._tier_of(item).remove(session_id)
            self._total_item_bytes -= item.n_bytes
            if session_id < 0:
                self._unregister_shared(session_id)

    def invalidate(self, session_id: int) -> None:
        """Mark a session's cache unusable (OF baseline after truncation)."""
        item = self._items.get(session_id)
        if item is not None:
            item.valid = False
            self.stats.invalidated += 1

    def truncate(self, session_id: int, keep_tokens: int) -> bool:
        """Apply KV-cache truncation to a stored item (Section 3.4).

        Keeps the most recent ``keep_tokens`` tokens (counted over the
        session's *full* history — shared prefix included when the session
        holds a reference).  Succeeds only when the item was saved with
        decoupled positional encodings; otherwise the item is invalidated
        and dropped, and False is returned.

        Copy-on-write: a session referencing a shared prefix that
        truncates is a *writer diverging* from the prefix.  Its reference
        is always released (readers keep the shared block untouched); any
        still-kept prefix tokens are forked into the session's private
        item, growing it in place.
        """
        item = self._items.get(session_id)
        shared_hash = self._shared_ref.get(session_id) if self._shared_ref else None
        if shared_hash is not None:
            # Divergence is unconditional: even a truncation that keeps
            # the whole prefix rewrites the session's token positions, so
            # the content hash no longer describes its history.
            block = self._shared[shared_hash]
            self._release_ref(session_id)
            if item is not None and item.position_decoupled and keep_tokens > 0:
                private = item.n_tokens
                target = min(keep_tokens, block.n_tokens + private)
                if target > private:
                    # Fork: absorb the kept prefix tokens as a private copy.
                    new_bytes = self.item_bytes(target)
                    try:
                        self._tier_of(item).resize(session_id, target, new_bytes)
                    except OutOfBlocksError:
                        self.drop(session_id)
                        return False
                    self._total_item_bytes += new_bytes - self.item_bytes(private)
                    if item.tier is Tier.DISK:
                        # Modelling shortcut: the forked prefix bytes are
                        # accounted as already spilled with the item.
                        self._disk_written_tokens[session_id] = target
                    self.stats.cow_forks += 1
                    self.stats.truncations += 1
                    return True
                keep_tokens = target
        if item is None:
            return False
        if not item.position_decoupled:
            self.stats.invalidated += 1
            self.drop(session_id)
            return False
        if keep_tokens <= 0:
            self.drop(session_id)
            return False
        if keep_tokens >= item.n_tokens:
            return True
        new_bytes = self.item_bytes(keep_tokens)
        self._total_item_bytes -= item.n_bytes - new_bytes
        self._tier_of(item).resize(session_id, keep_tokens, new_bytes)
        if item.tier is Tier.DISK:
            self._disk_written_tokens[session_id] = keep_tokens
        else:
            # The kept suffix no longer lines up with the spilled prefix.
            self._disk_written_tokens.pop(session_id, None)
        self.stats.truncations += 1
        return True

    def apply_discard_list(self, session_id: int, n_discard_tokens: int) -> bool:
        """Drop ``n_discard_tokens`` tokens chosen by a compression TDL
        (token discarding list — the Section 3.4 compression hook)."""
        item = self._items.get(session_id)
        if item is None:
            return False
        if n_discard_tokens < 0:
            raise ValueError(
                f"n_discard_tokens must be >= 0, got {n_discard_tokens}"
            )
        return self.truncate(session_id, item.n_tokens - n_discard_tokens)

    # ------------------------------------------------------------------
    # Migration (cluster serving)
    # ------------------------------------------------------------------
    def extract(self, session_id: int) -> KVCacheItem | None:
        """Remove and return a session's cache for migration to a peer store.

        The returned item still records the tier it resided in, so the
        caller can model the transfer source (disk items must be staged
        through the SSD link first).  Items that could not be served anyway
        (invalid, lost, corrupt) are dropped and None is returned —
        migrating them would only ship garbage across the network.

        A shared-prefix reference is released here even when no private
        item exists: the departing session no longer reads this store.
        The *block* stays — content addressing means the target re-links
        by hash (``admit_migrated``) rather than shipping an owner record.
        """
        if self._shared_ref:
            self._release_ref(session_id)
        item = self._items.get(session_id)
        if item is None:
            return None
        if not item.valid or item.lost or item.corrupt:
            self.drop(session_id)
            return None
        self.drop(session_id)
        self.stats.migrations_out += 1
        self.stats.migrated_bytes_out += item.n_bytes
        return item

    def discard_stale(self, session_id: int) -> bool:
        """Drop the local copy after the session was re-routed elsewhere.

        Part of the migration API (with :meth:`extract` /
        :meth:`admit_migrated`): locality-oblivious routers call this on
        the old replica so at most one store ever holds a session's KV —
        a truncation on the new replica would silently invalidate any
        remote leftover.  Returns True when a copy was actually dropped
        (counted as a scatter drop).
        """
        if session_id not in self._items:
            # No item, but a shared-prefix reference may still be held
            # (e.g. acquired at prefill with the suffix not yet saved) —
            # release it so the departed session cannot pin a block here.
            if self._shared_ref:
                self._release_ref(session_id)
            return False
        self.drop(session_id)
        self.stats.scatter_drops += 1
        return True

    def decommission(self) -> int:
        """Drop every resident item when the owning replica shuts down.

        Part of the migration API: a graceful drain migrates live
        sessions out first, then calls this to release whatever remains
        (finished sessions' KV no future turn will read).  Returns the
        number of items dropped.
        """
        # Release every shared-prefix reference first so no block is
        # dropped while references to it are still outstanding.
        for sid in list(self._shared_ref):
            self._release_ref(sid)
        sessions = list(self._items)
        for session_id in sessions:
            self.drop(session_id)
        return len(sessions)

    def record_migration_loss(self) -> None:
        """Count a migrating copy lost in transit (faulty inter-host link).

        The extracting side already removed the item; the next turn
        recomputes its history at the target (graceful degradation), and
        the loss shows up in ``stats.transfer_faults``.
        """
        self.stats.transfer_faults += 1

    def admit_migrated(
        self,
        session_id: int,
        n_tokens: int,
        now: float,
        ready_at: float = 0.0,
        position_decoupled: bool = True,
        queue: QueueView = _EMPTY_QUEUE,
        pinned: AbstractSet[int] = frozenset(),
        shared_hash: str | None = None,
        shared_tokens: int = 0,
    ) -> KVCacheItem | None:
        """Admit a cache migrated from a peer store into DRAM.

        The item lands in DRAM but only becomes usable once the modelled
        inter-host transfer completes at ``ready_at`` — a DRAM hit before
        then waits, exactly like an in-flight prefetch.  Counted as a
        migration, not a fresh save.

        When the migrating session referenced a shared prefix on the
        source, ``shared_hash``/``shared_tokens`` re-link it here: an
        already-resident block is re-used (the dedup bandwidth win — the
        cluster skips the prefix bytes on the wire), otherwise the
        shipped prefix is registered as this store's owning copy
        (counted as a shared adoption).
        """
        item = self.save(
            session_id,
            n_tokens,
            now,
            queue=queue,
            position_decoupled=position_decoupled,
            pinned=pinned,
        )
        if item is not None:
            item.dram_ready_at = ready_at
            self.stats.migrations_in += 1
            self.stats.saves -= 1
            if shared_hash is not None and shared_tokens > 0:
                known = shared_hash in self._shared
                if self.register_shared(
                    shared_hash, shared_tokens, now, queue=queue, pinned=pinned
                ):
                    self.acquire_shared(shared_hash, session_id)
                    if not known:
                        self.stats.shared_adoptions += 1
                        # The adopted prefix bytes ride the same modelled
                        # inter-host transfer as the private suffix.
                        block = self._shared[shared_hash]
                        self._items[block.pseudo_id].dram_ready_at = ready_at
        return item

    # ------------------------------------------------------------------
    # Shared prefix blocks (content-addressed, copy-on-write)
    # ------------------------------------------------------------------
    def register_shared(
        self,
        content_hash: str,
        n_tokens: int,
        now: float,
        queue: QueueView = _EMPTY_QUEUE,
        pinned: AbstractSet[int] = frozenset(),
    ) -> bool:
        """Admit (or confirm) this store's owning copy of a shared prefix.

        Idempotent: a hash already registered returns True without any
        admission work, which is what makes the call safe on every save
        of a prefix-bearing session.  A fresh registration stores the
        prefix KV as an ordinary DRAM item under a negative pseudo id —
        it competes for capacity with private items, can be demoted to
        disk once unreferenced, and obeys every byte-conservation
        invariant.  Returns False when DRAM space cannot be made (the
        sessions simply keep recomputing their prefix — a capacity
        signal, not an error).
        """
        if content_hash in self._shared:
            return True
        if n_tokens <= 0:
            raise ValueError(f"n_tokens must be positive, got {n_tokens}")
        n_bytes = self.item_bytes(n_tokens)
        if n_bytes > self.dram_tier.capacity_bytes or not self._make_dram_space(
            n_bytes, queue, now, pinned
        ):
            self.stats.shared_register_failures += 1
            return False
        pseudo_id = self._next_pseudo_id
        self._next_pseudo_id -= 1
        item = KVCacheItem(
            session_id=pseudo_id,
            n_tokens=n_tokens,
            n_bytes=n_bytes,
            tier=Tier.DRAM,
            allocation=None,  # type: ignore[arg-type]  # set by admit()
            position_decoupled=True,
            created_at=now,
            last_access=now,
        )
        self.dram_tier.admit(item)
        self._items[pseudo_id] = item
        self._total_item_bytes += n_bytes
        self._shared[content_hash] = SharedBlock(
            content_hash=content_hash, pseudo_id=pseudo_id, n_tokens=n_tokens
        )
        self._pseudo_to_hash[pseudo_id] = content_hash
        self.stats.shared_registered += 1
        if self.tracer is not None:
            self._trace_occupancy(now)
        return True

    def lookup_shared(self, content_hash: str, now: float) -> SharedLookup | None:
        """Probe for a shared prefix by content hash; None on miss.

        A hit refreshes the block's LRU position and reports the tier it
        resides in, so the engine prices the load exactly like a private
        hit (DRAM waits for an in-flight transfer, disk pays the SSD
        path).  An unreferenced block whose TTL lapsed is dropped here,
        same as a private item.
        """
        block = self._shared.get(content_hash)
        if block is None:
            self.stats.shared_misses += 1
            return None
        item = self._items[block.pseudo_id]
        if item.expired(now, self.config.ttl_seconds) and block.refcount == 0:
            self.stats.expired += 1
            self._drop_item(item)
            self.stats.shared_misses += 1
            return None
        item.touch(now)
        self._tiers[item.tier].touch(block.pseudo_id)
        self.stats.shared_hits += 1
        return SharedLookup(
            status=_STATUS_BY_TIER[item.tier],
            n_tokens=item.n_tokens,
            n_bytes=item.n_bytes,
            ready_at=item.dram_ready_at if item.tier is Tier.DRAM else 0.0,
        )

    def acquire_shared(self, content_hash: str, session_id: int) -> bool:
        """Take (or keep) a session's reference on a shared block.

        Idempotent per (session, hash); a session switching hashes
        releases its previous reference first.  While any reference is
        live the block is pinned: exempt from eviction and TTL.
        """
        block = self._shared.get(content_hash)
        if block is None:
            return False
        prev = self._shared_ref.get(session_id)
        if prev == content_hash:
            return True
        if prev is not None:
            self._release_ref(session_id)
        self._shared_ref[session_id] = content_hash
        block.refcount += 1
        self._shared_pinned.add(block.pseudo_id)
        self.stats.shared_acquires += 1
        return True

    def release_shared(self, session_id: int) -> bool:
        """Drop a session's shared-prefix reference (True if one existed).

        At refcount zero the block is *not* dropped — it stays resident
        and becomes an ordinary eviction/TTL victim, so a late-arriving
        session with the same prefix can still hit it.
        """
        return self._release_ref(session_id)

    def _release_ref(self, session_id: int) -> bool:
        content_hash = self._shared_ref.pop(session_id, None)
        if content_hash is None:
            return False
        block = self._shared.get(content_hash)
        if block is not None:
            block.refcount -= 1
            if block.refcount <= 0:
                self._shared_pinned.discard(block.pseudo_id)
        self.stats.shared_releases += 1
        return True

    def _unregister_shared(self, pseudo_id: int) -> None:
        """Forget a shared block whose pseudo item left the store."""
        content_hash = self._pseudo_to_hash.pop(pseudo_id, None)
        if content_hash is not None:
            del self._shared[content_hash]
            self._shared_pinned.discard(pseudo_id)
            # Pinning keeps referenced blocks out of eviction, but an
            # explicit drop of the pseudo id must not strand references
            # to the departed hash (sessions re-register on next save).
            for sid in [
                s for s, h in self._shared_ref.items() if h == content_hash
            ]:
                del self._shared_ref[sid]
                self.stats.shared_releases += 1

    def has_shared(self, content_hash: str) -> bool:
        """Whether this store holds an owning copy of ``content_hash``
        (migration API: lets the cluster skip prefix bytes on the wire)."""
        return content_hash in self._shared

    def shared_ref_of(self, session_id: int) -> tuple[str, int] | None:
        """The ``(content_hash, prefix_tokens)`` a session references, or
        None (migration API: consulted before extracting a session)."""
        content_hash = self._shared_ref.get(session_id)
        if content_hash is None:
            return None
        return content_hash, self._shared[content_hash].n_tokens

    @property
    def shared_block_count(self) -> int:
        """Number of registered shared prefix blocks."""
        return len(self._shared)

    @property
    def shared_dedup_bytes(self) -> int:
        """Bytes saved by deduplication: what the referencing sessions
        would collectively store privately, minus the one shared copy."""
        saved = 0
        for block in self._shared.values():
            if block.refcount > 1:
                saved += (block.refcount - 1) * self.item_bytes(block.n_tokens)
        return saved

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _sync_policy_window(self) -> None:
        if isinstance(self.policy, SchedulerAwarePolicy):
            self.policy.window_limit = self.eviction_window_limit()

    def _make_dram_space(
        self,
        n_bytes: int,
        queue: QueueView,
        now: float,
        pinned: AbstractSet[int] = frozenset(),
    ) -> bool:
        """Evict DRAM items to disk until ``n_bytes`` fit (plus buffer)."""
        dram = self.dram_tier
        capacity = dram.capacity_bytes
        target_free = n_bytes + int(self.config.dram_buffer_fraction * capacity)
        if target_free > capacity:
            target_free = capacity
        if dram.free_bytes >= target_free:
            # No eviction needed — skip the policy-window sync, which only
            # feeds victim selection.  The common case: most saves fit.
            return dram.can_fit(n_bytes)
        if self._shared_pinned:
            # Referenced shared blocks are exempt from eviction until
            # their refcount drops to zero.
            pinned = pinned | self._shared_pinned
        self._sync_policy_window()
        guard = len(dram) + 1
        while dram.free_bytes < target_free and guard > 0:
            guard -= 1
            victim = self.policy.choose_victim(dram, queue, pinned)
            if victim is None:
                break
            if not self._demote_to_disk(victim, queue, now, pinned):
                # No disk space obtainable either; drop the victim outright.
                self._drop_item(victim)
                self.stats.evicted_out += 1
        return dram.can_fit(n_bytes)

    def _demote_to_disk(
        self,
        item: KVCacheItem,
        queue: QueueView,
        now: float,
        pinned: AbstractSet[int] = frozenset(),
    ) -> bool:
        """Move one item DRAM -> disk, evicting from disk if needed."""
        if self.disk_tier.capacity_bytes == 0:
            return False
        if self._shared_pinned and not pinned >= self._shared_pinned:
            pinned = pinned | self._shared_pinned
        guard = len(self.disk_tier) + 1
        while not self.disk_tier.can_fit(item.n_bytes) and guard > 0:
            guard -= 1
            disk_victim = self.policy.choose_victim(self.disk_tier, queue, pinned)
            if disk_victim is None:
                return False
            self._drop_item(disk_victim)
            self.stats.evicted_out += 1
        if not self.disk_tier.can_fit(item.n_bytes):
            return False
        self.dram_tier.remove(item.session_id)
        self.disk_tier.admit(item)
        # Writing the spilled KV occupies the SSD link; blocks already on
        # disk from an earlier spill of this session are skipped.
        already = self._disk_written_tokens.get(item.session_id, 0)
        delta_tokens = max(0, item.n_tokens - already)
        if delta_tokens:
            done = self._ssd_transfer(now, self.item_bytes(delta_tokens))
            if done is None:
                # Spill failed (transient faults exhausted the retry
                # budget, or the SSD breaker is open): undo the admission
                # and let the caller degrade to dropping the victim.
                self.disk_tier.remove(item.session_id)
                self.dram_tier.admit(item)
                return False
            if self.tracer is not None:
                self.tracer.span(
                    "evict-spill",
                    "store",
                    now,
                    done,
                    lane="store",
                    track=self.trace_track,
                    args={
                        "session": item.session_id,
                        "bytes": self.item_bytes(delta_tokens),
                    },
                )
        self._disk_written_tokens[item.session_id] = item.n_tokens
        self.stats.evicted_to_disk += 1
        if self.tracer is not None:
            self._trace_occupancy(now)
        return True

    def _drop_item(self, item: KVCacheItem) -> None:
        sid = item.session_id
        if self._shared_ref:
            self._release_ref(sid)
        self._disk_written_tokens.pop(sid, None)
        self._tier_of(item).remove(sid)
        del self._items[sid]
        self._total_item_bytes -= item.n_bytes
        if sid < 0:
            self._unregister_shared(sid)

    def _trace_occupancy(self, now: float) -> None:
        """Sample per-tier occupancy into the tracer (one "C" event)."""
        tracer = self.tracer
        assert tracer is not None
        tracer.counter(
            "store-occupancy",
            now,
            track=self.trace_track,
            values=(
                ("hbm_bytes", float(self.hbm_tier.used_bytes)),
                ("dram_bytes", float(self.dram_tier.used_bytes)),
                ("disk_bytes", float(self.disk_tier.used_bytes)),
            ),
        )

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def ssd_available(self, now: float) -> bool:
        """Whether the SSD tier is reachable (circuit breaker not open)."""
        return self.ssd_health is None or self.ssd_health.allows(now)

    def _ssd_transfer(self, now: float, n_bytes: int) -> float | None:
        """Issue one SSD transfer, absorbing injected transient faults.

        Retries with capped exponential backoff up to the configured
        budget, feeding the SSD health breaker.  Returns the completion
        time, or None when the transfer could not be completed (budget
        exhausted or breaker open) — callers degrade instead of raising.
        """
        if self.faults is None:
            return self.ssd.transfer(now, n_bytes)
        if not self.ssd_available(now):
            return None
        fc = self.faults.config
        health = self.ssd_health
        start = now
        attempt = 0
        while True:
            try:
                done = self.ssd.transfer(start, n_bytes)
            except FaultyTransfer as fault:
                self.stats.transfer_faults += 1
                if health is not None and health.record_failure(start):
                    self.stats.breaker_trips += 1
                    return None
                if attempt >= fc.max_retries:
                    return None
                attempt += 1
                self.stats.transfer_retries += 1
                start = max(start, fault.busy_until) + fc.backoff(attempt)
                continue
            if health is not None and health.record_success():
                self.stats.breaker_recoveries += 1
            return done

    def lose_tier(self, tier: Tier) -> int:
        """Simulate a restart of one storage tier: every resident item is
        gone (an in-flight fetch's DRAM copy included).  Returns how many
        items were lost."""
        victims = [item for item in self._items.values() if item.tier is tier]
        for item in victims:
            self._drop_item(item)
        self.stats.lost_items += len(victims)
        return len(victims)

    def wipe_volatile(self, now: float) -> tuple[int, int]:
        """Crash the replica's volatile storage (HBM and DRAM at once).

        Every HBM/DRAM-resident item is lost (counted in ``lost_items``).
        Disk-resident items physically survive the crash but are
        unreachable until the replica restarts, so they are *parked
        offline*: removed from the store's books entirely (lookups miss
        and :meth:`extract` returns None for the whole downtime) and held
        on a side list for :meth:`restore_offline`.  Returns the
        ``(lost, parked)`` item counts.

        Shared prefixes: every session reference dies with the crash (the
        sessions fail over and re-link by content hash wherever they land).
        DRAM-resident shared blocks are lost like any volatile item;
        disk-resident ones park offline carrying their content hash, as do
        private items of referencing sessions — at restore, a private
        suffix whose prefix block did not survive is useless and is
        discarded (KV is only readable prefix-first).
        """
        # Capture hash links before the refs are torn down, so parked
        # items can be re-linked (or orphan-discarded) at restore.
        parked_hash: dict[int, str] = {}
        if self._shared_ref:
            for sid, content_hash in self._shared_ref.items():
                item = self._items.get(sid)
                if item is not None and item.tier is Tier.DISK:
                    parked_hash[sid] = content_hash
            for sid in list(self._shared_ref):
                self._release_ref(sid)
        volatile = [
            item for item in self._items.values() if item.tier is not Tier.DISK
        ]
        for item in volatile:
            self._drop_item(item)
        self.stats.lost_items += len(volatile)
        parked = list(self.disk_tier.iter_fifo())
        for item in parked:
            sid = item.session_id
            written = self._disk_written_tokens.pop(sid, 0)
            self.disk_tier.remove(sid)
            del self._items[sid]
            self._total_item_bytes -= item.n_bytes
            item.fetch_in_flight = False
            if sid < 0:
                content_hash: str | None = self._pseudo_to_hash.get(sid)
                self._unregister_shared(sid)
            else:
                content_hash = parked_hash.get(sid)
            self._offline.append((item, written, content_hash))
        if self.tracer is not None:
            self._trace_occupancy(now)
        return len(volatile), len(parked)

    def restore_offline(
        self, now: float, keep: "Callable[[int], bool] | None" = None
    ) -> tuple[int, int]:
        """Re-admit the surviving SSD items parked by :meth:`wipe_volatile`.

        Called at replica restart.  Items whose session ``keep`` rejects
        (typically because the session failed over to a peer during the
        downtime, making that peer's copy authoritative) are discarded so
        the exactly-one-copy invariant holds across the restart.
        Re-admitted items count TTL from the restart, not from their
        pre-crash access.  Returns ``(readmitted, discarded)`` counts.

        Shared blocks restore first (the ``keep`` predicate does not apply
        to them: pseudo ids belong to no session, and the "exactly one
        owning copy per content hash" invariant is per-store, so re-owning
        here is always legal — unless a fresh copy of the same hash was
        registered during the downtime, in which case the live copy wins).
        Private items restore second so a surviving prefix can be
        re-linked; a private suffix whose parked prefix hash is no longer
        resident is discarded as an orphan.
        """
        readmitted = discarded = 0
        parked, self._offline = self._offline, []

        def _readmit(item: KVCacheItem, written: int) -> bool:
            try:
                self.disk_tier.admit(item)
            except OutOfBlocksError:
                # Should not happen (the wipe emptied the disk tier), but
                # degrade to a discard rather than crash the restart.
                return False
            self._items[item.session_id] = item
            self._total_item_bytes += item.n_bytes
            if written:
                self._disk_written_tokens[item.session_id] = written
            item.touch(now)
            return True

        for item, written, content_hash in parked:
            if item.session_id >= 0:
                continue
            assert content_hash is not None
            if content_hash in self._shared or not _readmit(item, written):
                self.stats.restart_discards += 1
                discarded += 1
                continue
            self._shared[content_hash] = SharedBlock(
                content_hash=content_hash,
                pseudo_id=item.session_id,
                n_tokens=item.n_tokens,
            )
            self._pseudo_to_hash[item.session_id] = content_hash
            self.stats.restart_readmissions += 1
            readmitted += 1
        for item, written, content_hash in parked:
            if item.session_id < 0:
                continue
            if keep is not None and not keep(item.session_id):
                self.stats.restart_discards += 1
                discarded += 1
                continue
            if item.session_id in self._items:
                # A fresh copy was written since the crash; the live copy
                # is authoritative and the parked one is stale.
                self.stats.restart_discards += 1
                discarded += 1
                continue
            if content_hash is not None and content_hash not in self._shared:
                # Orphan: the suffix is unreadable without its prefix.
                self.stats.shared_orphan_discards += 1
                self.stats.restart_discards += 1
                discarded += 1
                continue
            if not _readmit(item, written):
                self.stats.restart_discards += 1
                discarded += 1
                continue
            if content_hash is not None:
                self.acquire_shared(content_hash, item.session_id)
            self.stats.restart_readmissions += 1
            readmitted += 1
        if parked and self.tracer is not None:
            self._trace_occupancy(now)
        return readmitted, discarded

    @property
    def offline_items(self) -> int:
        """Items parked by :meth:`wipe_volatile`, awaiting restart."""
        return len(self._offline)

    # ------------------------------------------------------------------
    # Prefetch
    # ------------------------------------------------------------------
    def prefetch(
        self,
        queue: QueueView,
        now: float,
        pinned: AbstractSet[int] = frozenset(),
    ) -> list[tuple[int, float]]:
        """Scheduler-aware fetching of upcoming jobs' KV from disk to DRAM.

        Returns ``(session_id, ready_time)`` pairs for each fetch issued.
        Disabled when the store is configured without prefetching.
        """
        if not self.config.enable_prefetch or len(queue) == 0:
            return []
        disk_ids = self.disk_tier.session_ids()
        if not disk_ids:
            return []
        if not self.ssd_available(now):
            # SSD breaker open: DRAM-only operation until a probe recovers.
            return []

        items = self._items
        capacity = self.dram_tier.capacity_bytes
        fraction = self.config.prefetch_capacity_fraction
        avg_bytes = max(self.avg_item_bytes, 1.0)

        # Fast guard, run *before* the pinned/budget work: if no session
        # in the look-ahead window is disk-resident, the plan necessarily
        # issues nothing.  The guard window uses the zero-pinned
        # overapproximation of the window length — the real window
        # (computed below) only shrinks as pinned bytes grow, so
        # disjointness on the larger window implies it on the real one,
        # and the common no-op case skips the per-pinned-item walk
        # entirely.  ``disk_ids`` is a dict-keys view and the window a
        # C-level slice of the queue's id deque, so the guard runs at C
        # speed.  The engine replans after every queue push/pop, so the
        # no-op case is by far the most common.
        max_window_len = max(1, int(capacity * fraction / avg_bytes))
        head_window_list = getattr(queue, "head_window_list", None)
        if head_window_list is not None:
            window = head_window_list(max_window_len)
        else:
            window = list(queue.head_window(max_window_len))
        if disk_ids.isdisjoint(window):
            return []

        # DRAM occupied by pinned (actively serving) sessions is not
        # available to the look-ahead window.  ``pinned & dram_ids`` is a
        # C-level set intersection, so the Python loop only touches the
        # (usually few) pinned sessions actually DRAM-resident instead of
        # probing the item dict for every pinned session.
        pinned_bytes = 0
        for session_id in pinned & self.dram_tier.session_ids():
            pinned_bytes += items[session_id].n_bytes
        budget = int(max(0, capacity - pinned_bytes) * fraction)
        if budget <= 0:
            return []
        window_len = max(1, int(budget / avg_bytes))
        if window_len < len(window):
            window = window[:window_len]
            if disk_ids.isdisjoint(window):
                return []

        # Budget walk, semantically identical to
        # :func:`repro.store.prefetch.plan_prefetches` but operating on the
        # item dict directly — the closure + WindowEntry indirection is the
        # single hottest allocation site of a full replay.  Windows from
        # the scheduler queue never repeat a session; other views may, and
        # the walk must budget each session once, so de-dup those first
        # (dict.fromkeys preserves first-occurrence order in C).
        if not getattr(queue, "window_unique", False):
            window = list(dict.fromkeys(window))
        fetch_ids: list[int] = []
        items_get = items.get
        for session_id in window:
            item = items_get(session_id)
            if item is None or not item.valid:
                continue
            n_bytes = item.n_bytes
            if n_bytes > budget:
                break  # window is full; later jobs wait for the next plan
            budget -= n_bytes
            if item.tier is Tier.DISK and not item.fetch_in_flight:
                fetch_ids.append(session_id)

        issued: list[tuple[int, float]] = []
        for session_id in fetch_ids:
            item = items.get(session_id)
            if item is None or item.tier is not Tier.DISK or item.fetch_in_flight:
                continue  # displaced by an earlier decision's eviction
            # Pin the fetch target: making DRAM room must not evict the
            # very item being fetched (possible when the disk is full and
            # the demotion cascade reaches it).
            fetch_pinned = frozenset(pinned) | {session_id}
            if not self._make_dram_space(item.n_bytes, queue, now, fetch_pinned):
                continue
            item = items.get(session_id)
            if item is None or item.tier is not Tier.DISK:
                continue
            self.disk_tier.remove(item.session_id)
            self.dram_tier.admit(item)
            done = self._ssd_transfer(now, item.n_bytes)
            if done is None:
                # Fetch failed: put the item back on disk; a later demand
                # load (or the engine's recompute fallback) covers it.
                self.dram_tier.remove(item.session_id)
                self.disk_tier.admit(item)
                continue
            item.fetch_in_flight = True
            item.dram_ready_at = done
            self.stats.prefetches += 1
            self.stats.prefetched_bytes += item.n_bytes
            if self.tracer is not None:
                self.tracer.span(
                    "prefetch",
                    "store",
                    now,
                    done,
                    lane="store",
                    track=self.trace_track,
                    args={"session": item.session_id, "bytes": item.n_bytes},
                )
            issued.append((item.session_id, done))
        if issued and self.tracer is not None:
            self._trace_occupancy(now)
        return issued

    def complete_fetch(self, session_id: int) -> None:
        """Mark an in-flight prefetch as finished (engine callback)."""
        item = self._items.get(session_id)
        if item is not None:
            item.fetch_in_flight = False

    # ------------------------------------------------------------------
    # TTL
    # ------------------------------------------------------------------
    def sweep_expired(self, now: float) -> int:
        """Drop all items whose TTL has lapsed; return how many."""
        pinned = self._shared_pinned
        expired = [
            item
            for item in self._items.values()
            if item.expired(now, self.config.ttl_seconds)
            and not item.fetch_in_flight
            and item.session_id not in pinned
        ]
        for item in expired:
            self._drop_item(item)
        self.stats.expired += len(expired)
        return len(expired)

    # ------------------------------------------------------------------
    # Consistency checking
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert internal bookkeeping consistency (test/debug hook).

        Verified invariants:

        * the sum of resident item sizes equals ``total_item_bytes``;
        * every item is resident in exactly the tier it records, and in no
          other tier;
        * per-tier used bytes never exceed capacity;
        * delta-write-back state refers only to stored sessions and never
          exceeds the item's token count;
        * shared-prefix bookkeeping is closed: every registered block's
          pseudo item is resident, refcounts equal the live references,
          and the pinned set is exactly the referenced blocks (at most
          one owning copy per content hash follows from ``_shared`` being
          keyed by hash).

        Raises:
            AssertionError: on any violation.
        """
        tiers = (self.hbm_tier, self.dram_tier, self.disk_tier)
        total = 0
        for session_id, item in self._items.items():
            assert item.session_id == session_id, (
                f"item keyed {session_id} claims session {item.session_id}"
            )
            home = self._tier_of(item)
            assert home.get(session_id) is item, (
                f"session {session_id} not resident in recorded tier "
                f"{item.tier.value}"
            )
            for tier in tiers:
                if tier is not home:
                    assert session_id not in tier, (
                        f"session {session_id} resident in both "
                        f"{item.tier.value} and {tier.tier.value}"
                    )
            total += item.n_bytes
        assert total == self._total_item_bytes, (
            f"sum of item bytes {total} != total_item_bytes "
            f"{self._total_item_bytes}"
        )
        for tier in tiers:
            assert len(tier) == sum(
                1 for item in self._items.values() if item.tier is tier.tier
            ), f"tier {tier.tier.value} holds items the store does not track"
            assert tier.used_bytes <= tier.capacity_bytes, (
                f"tier {tier.tier.value} over capacity: "
                f"{tier.used_bytes} > {tier.capacity_bytes}"
            )
        for session_id, written in self._disk_written_tokens.items():
            assert written > 0, f"session {session_id} has zero dirty tokens"
            item = self._items.get(session_id)
            assert item is not None, (
                f"dirty-token state for unknown session {session_id}"
            )
            assert written <= item.n_tokens, (
                f"session {session_id}: disk_written_tokens {written} > "
                f"n_tokens {item.n_tokens}"
            )
        for item, _written, _hash in self._offline:
            assert item.session_id not in self._items, (
                f"session {item.session_id} both resident and parked offline"
            )
        assert len(self._shared) == len(self._pseudo_to_hash), (
            "shared block index and pseudo-id map out of sync"
        )
        refs_by_hash: dict[str, int] = {}
        for session_id, content_hash in self._shared_ref.items():
            assert session_id >= 0, (
                f"pseudo id {session_id} holds a shared reference"
            )
            assert content_hash in self._shared, (
                f"session {session_id} references unknown hash {content_hash}"
            )
            refs_by_hash[content_hash] = refs_by_hash.get(content_hash, 0) + 1
        pinned_expected = set()
        for content_hash, block in self._shared.items():
            assert self._pseudo_to_hash.get(block.pseudo_id) == content_hash, (
                f"shared block {content_hash[:12]} pseudo-id link broken"
            )
            item = self._items.get(block.pseudo_id)
            assert item is not None, (
                f"shared block {content_hash[:12]} has no resident item"
            )
            assert item.n_tokens == block.n_tokens, (
                f"shared block {content_hash[:12]}: item holds "
                f"{item.n_tokens} tokens, block records {block.n_tokens}"
            )
            assert block.refcount == refs_by_hash.get(content_hash, 0), (
                f"shared block {content_hash[:12]}: refcount "
                f"{block.refcount} != live references "
                f"{refs_by_hash.get(content_hash, 0)}"
            )
            if block.refcount > 0:
                pinned_expected.add(block.pseudo_id)
        assert self._shared_pinned == pinned_expected, (
            f"pinned set {self._shared_pinned} != referenced blocks "
            f"{pinned_expected}"
        )
