"""The inference job scheduler's waiting queue.

The queue is FIFO, but — crucially for CachedAttention — it is also the
*look-ahead oracle*: AttentionStore's scheduler-aware fetching and eviction
(Section 3.3) read upcoming jobs from it through the
:class:`~repro.store.policy.QueueView` protocol.  Position queries are O(1)
via monotonically increasing sequence numbers (a session has at most one
waiting job at a time, since the next turn only arrives after the previous
response).
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Iterator

from .request import TurnRequest


class SchedulerQueue:
    """FIFO job queue with O(1) look-ahead position queries."""

    def __init__(self) -> None:
        self._queue: deque[TurnRequest] = deque()
        self._seq_by_session: dict[int, int] = {}
        self._next_seq = 0
        self._head_seq = 0
        self._pending_tokens = 0

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    @property
    def pending_tokens(self) -> int:
        """Question + answer tokens of all waiting jobs (O(1)).

        The load signal cluster routers use for least-loaded balancing.
        """
        return self._pending_tokens

    def push(self, request: TurnRequest) -> None:
        """Append a job to the queue tail.

        Raises:
            ValueError: if the session already has a waiting job.
        """
        if request.session_id in self._seq_by_session:
            raise ValueError(
                f"session {request.session_id} already has a waiting job"
            )
        request.seq = self._next_seq
        self._next_seq += 1
        self._seq_by_session[request.session_id] = request.seq
        self._queue.append(request)
        self._pending_tokens += request.q_tokens + request.a_tokens

    def pop(self) -> TurnRequest:
        """Remove and return the job at the queue head.

        Raises:
            IndexError: if the queue is empty.
        """
        request = self._queue.popleft()
        del self._seq_by_session[request.session_id]
        self._pending_tokens -= request.q_tokens + request.a_tokens
        if self._queue:
            self._head_seq = self._queue[0].seq
        else:
            self._head_seq = self._next_seq
        return request

    def peek(self) -> TurnRequest | None:
        return self._queue[0] if self._queue else None

    # ------------------------------------------------------------------
    # QueueView protocol (scheduler hints for AttentionStore)
    # ------------------------------------------------------------------
    def position(self, session_id: int) -> int | None:
        """Approximate distance of a session's waiting job from the head.

        Exact whenever no job has left the queue out of order — which is
        always, since the queue is strictly FIFO.
        """
        seq = self._seq_by_session.get(session_id)
        if seq is None:
            return None
        return seq - self._head_seq

    def head_window(self, k: int) -> Iterator[int]:
        """Session ids of the first ``k`` waiting jobs, head first."""
        return (r.session_id for r in islice(self._queue, k))

    def head_window_list(self, k: int) -> list[int]:
        """``head_window`` materialised as a list.

        The prefetch planner consumes the window twice per plan (a set
        disjointness guard, then the budget walk); one list comprehension
        beats two generator traversals on that hot path.
        """
        return [r.session_id for r in islice(self._queue, k)]

    def tail_window(self, k: int) -> Iterator[int]:
        """Session ids of the last ``k`` waiting jobs, tail first."""
        return (r.session_id for r in islice(reversed(self._queue), k))
