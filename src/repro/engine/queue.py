"""The inference job scheduler's waiting queue.

The queue is FIFO, but — crucially for CachedAttention — it is also the
*look-ahead oracle*: AttentionStore's scheduler-aware fetching and eviction
(Section 3.3) read upcoming jobs from it through the
:class:`~repro.store.policy.QueueView` protocol.  Position queries are O(1)
via monotonically increasing sequence numbers (a session has at most one
waiting job at a time, since the next turn only arrives after the previous
response).
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Iterator

from .request import TurnRequest


class SchedulerQueue:
    """FIFO job queue with O(1) look-ahead position queries."""

    # A session appears at most once, so look-ahead windows never need
    # de-duplication (read by the prefetch planner's budget walk).
    window_unique = True

    def __init__(self) -> None:
        self._queue: deque[TurnRequest] = deque()
        # Session ids in queue order, maintained in lockstep with
        # ``_queue``.  Look-ahead windows slice this deque of ints at C
        # speed instead of touching each TurnRequest object.
        self._ids: deque[int] = deque()
        self._seq_by_session: dict[int, int] = {}
        self._next_seq = 0
        self._head_seq = 0
        self._pending_tokens = 0

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    @property
    def pending_tokens(self) -> int:
        """Question + answer tokens of all waiting jobs (O(1)).

        The load signal cluster routers use for least-loaded balancing.
        """
        return self._pending_tokens

    def push(self, request: TurnRequest) -> None:
        """Append a job to the queue tail.

        Raises:
            ValueError: if the session already has a waiting job.
        """
        if request.session_id in self._seq_by_session:
            raise ValueError(
                f"session {request.session_id} already has a waiting job"
            )
        request.seq = self._next_seq
        self._next_seq += 1
        self._seq_by_session[request.session_id] = request.seq
        self._queue.append(request)
        self._ids.append(request.session_id)
        self._pending_tokens += request.q_tokens + request.a_tokens

    def pop(self) -> TurnRequest:
        """Remove and return the job at the queue head.

        Raises:
            IndexError: if the queue is empty.
        """
        request = self._queue.popleft()
        self._ids.popleft()
        del self._seq_by_session[request.session_id]
        self._pending_tokens -= request.q_tokens + request.a_tokens
        if self._queue:
            self._head_seq = self._queue[0].seq
        else:
            self._head_seq = self._next_seq
        return request

    def peek(self) -> TurnRequest | None:
        return self._queue[0] if self._queue else None

    # ------------------------------------------------------------------
    # QueueView protocol (scheduler hints for AttentionStore)
    # ------------------------------------------------------------------
    def position(self, session_id: int) -> int | None:
        """Approximate distance of a session's waiting job from the head.

        Exact whenever no job has left the queue out of order — which is
        always, since the queue is strictly FIFO.
        """
        seq = self._seq_by_session.get(session_id)
        if seq is None:
            return None
        return seq - self._head_seq

    def position_map(self) -> tuple[dict[int, int], int]:
        """Bulk-position accessor: ``(seq_by_session, head_seq)``.

        ``position(sid) == seq_by_session[sid] - head_seq`` (or ``None``
        when absent).  Eviction scans hundreds of candidates per victim;
        handing them the dict replaces a method call per candidate with
        one ``dict.get``.
        """
        return self._seq_by_session, self._head_seq

    def head_window(self, k: int) -> Iterator[int]:
        """Session ids of the first ``k`` waiting jobs, head first."""
        return iter(islice(self._ids, k))

    def head_window_list(self, k: int) -> list[int]:
        """``head_window`` materialised as a list.

        The prefetch planner consumes the window twice per plan (a set
        disjointness guard, then the budget walk); one C-level slice of
        the id deque beats traversing TurnRequest objects.
        """
        return list(islice(self._ids, k))

    def tail_window(self, k: int) -> Iterator[int]:
        """Session ids of the last ``k`` waiting jobs, tail first."""
        return iter(islice(reversed(self._ids), k))
