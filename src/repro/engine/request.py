"""Inference jobs: one conversation turn each."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class TurnRequest:
    """A job submitted to the serving engine for one conversation turn.

    ``seq`` is assigned by the scheduler queue on enqueue and orders jobs
    globally (used for look-ahead window positions).
    """

    session_id: int
    turn_index: int
    q_tokens: int
    a_tokens: int
    arrival_time: float
    global_turn: int
    seq: int = -1
    #: The turn was interrupted by a replica crash and re-routed here; its
    #: history must be recomputed (the KV copy died with the old replica).
    failover: bool = False

    def __post_init__(self) -> None:
        if self.q_tokens <= 0:
            raise ValueError(f"q_tokens must be positive, got {self.q_tokens}")
        if self.a_tokens <= 0:
            raise ValueError(f"a_tokens must be positive, got {self.a_tokens}")

    @property
    def is_first_turn(self) -> bool:
        return self.turn_index == 0
