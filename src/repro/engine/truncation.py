"""Context-window overflow handling (Sections 2.4, 3.4).

When a session's prompt (history + new question) exceeds the model's
context window, serving engines truncate the oldest tokens.  The paper's
truncation ratio of 0.5 means each overflow discards the earliest
``window * 0.5`` tokens.

Three strategies differ in what happens to any *stored* KV cache:

* ``TOKEN`` (TT): truncate the token history and recompute everything —
  the RE baseline; nothing is stored, so nothing is invalidated.
* ``KV_DECOUPLED`` (CA): KV was stored without positional encodings, so
  the store truncates the cached KV directly and it stays reusable.
* ``KV_EMBEDDED`` (OF): KV was stored *with* positions embedded; any
  truncation scrambles them, so the stored cache must be invalidated and
  the truncated prompt recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TruncationOutcome:
    """Result of applying the context-window policy to a turn's prompt."""

    history_tokens: int
    q_tokens: int
    dropped_tokens: int

    @property
    def prompt_tokens(self) -> int:
        return self.history_tokens + self.q_tokens

    @property
    def overflowed(self) -> bool:
        return self.dropped_tokens > 0


def apply_context_window(
    history_tokens: int,
    q_tokens: int,
    context_window: int,
    truncation_ratio: float,
) -> TruncationOutcome:
    """Truncate the oldest history so the prompt fits the context window.

    Each overflow event discards the earliest ``context_window *
    truncation_ratio`` tokens (Section 4.1: ratio 0.5 — "discard the
    earliest half of the tokens"), repeating if one cut is not enough.
    If the new question alone exceeds the window it is clamped to the
    window (the serving engine cannot accept a longer prompt).
    """
    if history_tokens < 0:
        raise ValueError(f"history_tokens must be >= 0, got {history_tokens}")
    if q_tokens <= 0:
        raise ValueError(f"q_tokens must be positive, got {q_tokens}")
    if context_window <= 0:
        raise ValueError(f"context_window must be positive, got {context_window}")
    if not (0.0 < truncation_ratio < 1.0):
        raise ValueError(
            f"truncation_ratio must be in (0, 1), got {truncation_ratio}"
        )

    q = min(q_tokens, context_window)
    dropped = q_tokens - q
    history = history_tokens
    cut = max(1, int(context_window * truncation_ratio))
    while history > 0 and history + q > context_window:
        step = min(history, cut)
        history -= step
        dropped += step
    return TruncationOutcome(
        history_tokens=history, q_tokens=q, dropped_tokens=dropped
    )


def clamp_decode_tokens(
    prompt_tokens: int, a_tokens: int, context_window: int
) -> int:
    """Response tokens the engine can actually generate this turn.

    Generation cannot extend the context past the window; at least one
    token is always produced (the model emits *something* before any
    stopping logic applies).
    """
    if prompt_tokens <= 0:
        raise ValueError(f"prompt_tokens must be positive, got {prompt_tokens}")
    if a_tokens <= 0:
        raise ValueError(f"a_tokens must be positive, got {a_tokens}")
    room = context_window - prompt_tokens
    return max(1, min(a_tokens, room))
