"""Continuous-batching state (Orca-style iteration-level scheduling).

The GPU serves one *batch* of decoding jobs; each iteration produces one
token for every active job.  Newly arrived jobs must finish prefilling
before joining the batch, and prefilling blocks decoding (the effect the
paper highlights in Section 4.2's GPU-time discussion).

The simulator advances decoding in *chunks* of up to ``chunk_iters``
iterations between scheduling points, using the closed-form segment time
from :class:`~repro.hardware.perf.PerfModel`, so a 50K-turn workload needs
tens of thousands of events rather than millions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .metrics import TurnRecord
from .request import TurnRequest


@dataclass(slots=True)
class ActiveJob:
    """A job currently decoding in the batch."""

    request: TurnRequest
    record: TurnRecord
    context_tokens: int  # prompt + tokens decoded so far
    remaining_tokens: int  # decode tokens still to produce
    reserved_tokens: int  # HBM reservation (prompt + planned generation)
    decode_wall_start: float = 0.0

    def __post_init__(self) -> None:
        if self.context_tokens <= 0:
            raise ValueError(
                f"context_tokens must be positive, got {self.context_tokens}"
            )
        if self.remaining_tokens <= 0:
            raise ValueError(
                f"remaining_tokens must be positive, got {self.remaining_tokens}"
            )

    @property
    def session_id(self) -> int:
        return self.request.session_id


class BatchState:
    """The set of jobs currently decoding, with O(1) aggregate context."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._jobs: dict[int, ActiveJob] = {}
        self._context_sum = 0

    def __len__(self) -> int:
        return len(self._jobs)

    def __bool__(self) -> bool:
        return bool(self._jobs)

    @property
    def is_full(self) -> bool:
        return len(self._jobs) >= self.capacity

    @property
    def context_sum(self) -> int:
        return self._context_sum

    @property
    def jobs(self) -> list[ActiveJob]:
        return list(self._jobs.values())

    def add(self, job: ActiveJob) -> None:
        if self.is_full:
            raise RuntimeError("batch is full")
        if job.session_id in self._jobs:
            raise ValueError(f"session {job.session_id} already in batch")
        self._jobs[job.session_id] = job
        self._context_sum += job.context_tokens

    def min_remaining(self) -> int:
        """Fewest decode tokens any active job still needs."""
        if not self._jobs:
            raise RuntimeError("batch is empty")
        return min(j.remaining_tokens for j in self._jobs.values())

    def advance(self, n_iterations: int) -> list[ActiveJob]:
        """Run ``n_iterations`` decode iterations; return jobs that finish.

        ``n_iterations`` must not exceed :meth:`min_remaining` — no job may
        overshoot its response length.
        """
        if n_iterations <= 0:
            raise ValueError(
                f"n_iterations must be positive, got {n_iterations}"
            )
        if n_iterations > self.min_remaining():
            raise ValueError(
                f"advancing {n_iterations} iterations would overshoot a job "
                f"with only {self.min_remaining()} tokens remaining"
            )
        finished: list[ActiveJob] = []
        for job in self._jobs.values():
            job.context_tokens += n_iterations
            job.remaining_tokens -= n_iterations
            if job.remaining_tokens == 0:
                finished.append(job)
        self._context_sum += n_iterations * len(self._jobs)
        for job in finished:
            del self._jobs[job.session_id]
            self._context_sum -= job.context_tokens
        return finished
