"""Continuous-batching state (Orca-style iteration-level scheduling).

The GPU serves one *batch* of decoding jobs; each iteration produces one
token for every active job.  Newly arrived jobs must finish prefilling
before joining the batch, and prefilling blocks decoding (the effect the
paper highlights in Section 4.2's GPU-time discussion).

The simulator advances decoding in *chunks* of up to ``chunk_iters``
iterations between scheduling points, using the closed-form segment time
from :class:`~repro.hardware.perf.PerfModel`, so a 50K-turn workload needs
tens of thousands of events rather than millions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .metrics import TurnRecord
from .request import TurnRequest


@dataclass(slots=True)
class ActiveJob:
    """A job currently decoding in the batch."""

    request: TurnRequest
    record: TurnRecord
    context_tokens: int  # prompt + tokens decoded so far
    remaining_tokens: int  # decode tokens still to produce
    reserved_tokens: int  # HBM reservation (prompt + planned generation)
    decode_wall_start: float = 0.0

    def __post_init__(self) -> None:
        if self.context_tokens <= 0:
            raise ValueError(
                f"context_tokens must be positive, got {self.context_tokens}"
            )
        if self.remaining_tokens <= 0:
            raise ValueError(
                f"remaining_tokens must be positive, got {self.remaining_tokens}"
            )

    @property
    def session_id(self) -> int:
        return self.request.session_id


class BatchState:
    """The set of jobs currently decoding, with O(1) aggregate context."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._jobs: dict[int, ActiveJob] = {}
        self._context_sum = 0
        # Cached min(remaining_tokens) over the batch, or None when it
        # must be recomputed.  The engine reads it twice per decode chunk
        # (chunk sizing, then advance validation); a cache turns that
        # from two O(batch) sweeps into O(1).  Exactness invariant: adds
        # can only lower the min (min with the newcomer); ``advance``
        # lowers every job uniformly, and jobs only leave mid-run when
        # their remaining hits 0 — which is also exactly when the cache
        # is invalidated.
        self._min_remaining: int | None = None

    def __len__(self) -> int:
        return len(self._jobs)

    def __bool__(self) -> bool:
        return bool(self._jobs)

    @property
    def is_full(self) -> bool:
        return len(self._jobs) >= self.capacity

    @property
    def context_sum(self) -> int:
        return self._context_sum

    @property
    def jobs(self) -> list[ActiveJob]:
        return list(self._jobs.values())

    def add(self, job: ActiveJob) -> None:
        if self.is_full:
            raise RuntimeError("batch is full")
        if job.session_id in self._jobs:
            raise ValueError(f"session {job.session_id} already in batch")
        self._jobs[job.session_id] = job
        self._context_sum += job.context_tokens
        cached = self._min_remaining
        if cached is not None and job.remaining_tokens < cached:
            self._min_remaining = job.remaining_tokens

    def min_remaining(self) -> int:
        """Fewest decode tokens any active job still needs."""
        if not self._jobs:
            raise RuntimeError("batch is empty")
        cached = self._min_remaining
        if cached is None:
            cached = min(j.remaining_tokens for j in self._jobs.values())
            self._min_remaining = cached
        return cached

    def advance(self, n_iterations: int) -> list[ActiveJob]:
        """Run ``n_iterations`` decode iterations; return jobs that finish.

        ``n_iterations`` must not exceed :meth:`min_remaining` — no job may
        overshoot its response length.
        """
        return self.advance_and_share(n_iterations, 0.0)

    def advance_and_share(
        self, n_iterations: int, gpu_share: float
    ) -> list[ActiveJob]:
        """:meth:`advance` fused with per-job GPU-time accounting.

        Every job that decoded during the chunk — including the ones that
        finish on its last iteration — has ``gpu_share`` added to its
        record's ``decode_gpu_share`` in the same pass that advances its
        token counters, so the engine's chunk completion touches each job
        once instead of three times.
        """
        if n_iterations <= 0:
            raise ValueError(
                f"n_iterations must be positive, got {n_iterations}"
            )
        min_before = self.min_remaining()
        if n_iterations > min_before:
            raise ValueError(
                f"advancing {n_iterations} iterations would overshoot a job "
                f"with only {min_before} tokens remaining"
            )
        finished: list[ActiveJob] = []
        if gpu_share:
            for job in self._jobs.values():
                job.context_tokens += n_iterations
                job.remaining_tokens -= n_iterations
                job.record.decode_gpu_share += gpu_share
                if job.remaining_tokens == 0:
                    finished.append(job)
        else:
            for job in self._jobs.values():
                job.context_tokens += n_iterations
                job.remaining_tokens -= n_iterations
                if job.remaining_tokens == 0:
                    finished.append(job)
        self._context_sum += n_iterations * len(self._jobs)
        if finished:
            # At least one job left the batch; the survivors' min must be
            # recomputed (lazily, on the next read).
            self._min_remaining = None
            for job in finished:
                del self._jobs[job.session_id]
                self._context_sum -= job.context_tokens
        else:
            self._min_remaining = min_before - n_iterations
        return finished
