"""The LLM serving engine simulation: RE baseline and CachedAttention.

One :class:`ServingEngine` replays a conversation trace against a single
model deployment.  It combines:

* a continuous-batching executor (prefill blocks decoding; decode advances
  iteration-by-iteration for the whole batch — Orca-style);
* per-turn context-window truncation (token truncation for RE, decoupled
  KV truncation for CA, invalidation for the OF baseline);
* in CA mode, an :class:`~repro.store.AttentionStore` holding inactive
  sessions' KV caches, with scheduler-aware prefetch/eviction reading the
  engine's job queue, layer-wise pre-loading of cache hits, and
  asynchronous write-back of finished turns' KV.

Timing comes from :class:`~repro.hardware.perf.PerfModel`; transfers
contend on shared PCIe and SSD :class:`~repro.sim.Channel` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from ..config import (
    EngineConfig,
    HardwareConfig,
    ServingMode,
    StoreConfig,
    TruncationPolicyName,
)
from ..faults import FaultConfig, FaultInjector
from ..hardware.perf import PerfModel
from ..models import ModelSpec
from ..sanitize import install_engine, sanitize_enabled
from ..sim.channel import Channel, ChannelPair, FaultyTransfer
from ..sim.loop import Simulator
from ..store.attention_store import (
    AttentionStore,
    LookupResult,
    LookupStatus,
    StoreStats,
)
from ..store.item import Tier
from ..store.sharing import shared_prefix_hash
from ..workload.trace import Conversation, Trace
from .batching import ActiveJob, BatchState
from .continuations import (
    DecodeChunkDone,
    FetchDone,
    NextTurnTimer,
    PrefillSliceDone,
    ResumePrefill,
    SaveBlockDone,
    SessionStart,
    StreamArrival,
    TierLoss,
    TtlSweep,
)
from .metrics import MetricsCollector, RunSummary, TurnOutcome, TurnRecord
from .overlap import (
    async_save_blocking_time,
    layerwise_prefill_time,
    no_preload_prefill_time,
    overlap_exposure,
    sync_save_blocking_time,
)
from .queue import SchedulerQueue
from .request import TurnRequest
from .session import SessionState
from .truncation import apply_context_window, clamp_decode_tokens

if TYPE_CHECKING:
    from ..obs.spans import SpanTracer


@dataclass(frozen=True, slots=True)
class RunResult:
    """Everything a benchmark needs from one serving run."""

    summary: RunSummary
    store_stats: StoreStats | None
    pcie_bytes: int
    ssd_bytes: int
    events_processed: int
    model_name: str
    mode: ServingMode

    @property
    def is_cached(self) -> bool:
        return self.mode is ServingMode.CACHED


class TurnCounter:
    """Monotonic global turn numbering, shareable across engine replicas.

    A cluster passes one counter to every replica so warm-up windows and
    merged metrics use cluster-global turn order; a standalone engine owns
    a private one, which reproduces the original per-engine numbering.
    """

    def __init__(self) -> None:
        self._next = 0

    def next(self) -> int:
        """Return the next global turn number."""
        value = self._next
        self._next += 1
        return value


class ServingEngine:
    """Simulated LLM serving engine for multi-turn conversation traces."""

    TTL_SWEEP_INTERVAL = 120.0

    def __init__(
        self,
        model: ModelSpec,
        hardware: HardwareConfig | None = None,
        engine_config: EngineConfig | None = None,
        store_config: StoreConfig | None = None,
        warmup_turns: int = 0,
        fault_config: FaultConfig | None = None,
        *,
        streaming_metrics: bool = False,
        sim: Simulator | None = None,
        pcie_h2d: Channel | None = None,
        pcie_d2h: Channel | None = None,
        ssd: Channel | None = None,
        turn_counter: TurnCounter | None = None,
        name: str = "engine",
        sanitize: bool | None = None,
    ) -> None:
        self.model = model
        self.name = name
        self.hardware = hardware or HardwareConfig().for_model(model)
        self.config = engine_config or EngineConfig(
            batch_size=model.default_batch_size
        )
        self.perf = PerfModel(model, self.hardware)
        # A cluster injects one shared Simulator (and per-replica channels)
        # so N replicas advance on a single event loop; a standalone engine
        # builds its own, which is behaviourally identical to the original
        # engine-owned construction.
        self.sim = sim if sim is not None else Simulator()
        # The engine reads the current time on every scheduling decision;
        # going through the simulator's ``now`` property adds a descriptor
        # hop per read, so keep a direct reference to the shared clock.
        self._clock = self.sim.clock
        # PCIe is full duplex: host->device KV loads and device->host KV
        # saves ride independent directions ("dedicated CUDA streams",
        # Section 4.1), so they get separate channels.
        self.pcie_h2d = pcie_h2d or Channel("pcie-h2d", self.hardware.pcie_bandwidth)
        self.pcie_d2h = pcie_d2h or Channel("pcie-d2h", self.hardware.pcie_bandwidth)
        self.ssd = ssd or Channel("ssd", self.hardware.ssd_bandwidth)
        self.disk_path = ChannelPair(self.ssd, self.pcie_h2d)

        if (
            fault_config is not None
            and fault_config.replica_schedule is not None
            and fault_config.replica_schedule.enabled
        ):
            raise ValueError(
                "replica fault schedules are cluster-level: run via a "
                "ClusterEngine (--instances >= 2), which owns "
                "crash/restart/drain scheduling"
            )
        # An inert fault config (all rates zero) builds no injector, so
        # default runs take the exact pre-fault code paths.
        self.fault_config: FaultConfig | None = None
        self.faults: FaultInjector | None = None
        if fault_config is not None and fault_config.enabled:
            self.fault_config = fault_config
            self.faults = FaultInjector(fault_config)
            for channel in (self.pcie_h2d, self.pcie_d2h, self.ssd):
                channel.fault_hook = self.faults

        self.store: AttentionStore | None = None
        if self.config.mode is ServingMode.CACHED:
            self.store = AttentionStore(
                store_config or StoreConfig(),
                model.kv_bytes_per_token,
                ssd_channel=self.ssd,
                fault_injector=self.faults,
            )

        self.queue = SchedulerQueue()
        self.batch = BatchState(self.config.batch_size)
        self.metrics = MetricsCollector(
            warmup_turns=warmup_turns, streaming=streaming_metrics
        )
        self.sessions: dict[int, SessionState] = {}

        self._gpu_busy = False
        # Sessions currently admitted (prefilling or decoding): their store
        # items are pinned against eviction — the item is about to be
        # replaced at save time, so demoting it would only waste SSD writes
        # (and a popped job is otherwise invisible to the queue view).
        self._active_sessions: set[int] = set()
        # Crash epoch: bumped by crash() so already-scheduled GPU-work
        # continuations (which cannot be unscheduled) no-op when they fire.
        self._epoch = 0
        # The job currently mid-prefill, if any; prefill continuations
        # otherwise live only in closures, invisible to crash().
        self._prefilling_job: ActiveJob | None = None
        #: History tokens recomputed because their turn failed over from a
        #: crashed replica (the failover recompute burden).
        self.failover_recompute_tokens = 0
        self._turn_counter = turn_counter if turn_counter is not None else TurnCounter()
        self._remaining_sessions = 0
        self._hbm_budget_tokens = self._compute_hbm_budget_tokens()
        self._hbm_reserved_tokens = 0
        # A cluster installs a hook here to route each session's next turn
        # (possibly to a different replica) instead of resubmitting locally.
        self.next_turn_hook: Callable[[ServingEngine, SessionState], None] | None = None
        # Optional span tracer (repro.obs): installed from outside via
        # SpanTracer.attach_engine; one attribute check per emission point
        # when unset.  Pure observation — never alters timing.
        self.tracer: "SpanTracer | None" = None
        # Streamed-trace state: the pending generator (None for
        # materialised traces) and whether finished sessions are dropped
        # from ``self.sessions`` to keep memory O(live sessions).
        self._stream: Iterator[Conversation] | None = None
        self._stream_arrival: StreamArrival | None = None
        self._drop_finished_sessions = False
        self._peak_live_sessions = 0
        # Hot-path bindings: the decode-chunk cost function (memoised in
        # PerfModel) and a per-engine save-cost memo keyed by the exact
        # per-turn KV delta (PCIe bandwidth is fixed for the run, so the
        # pair is pure; bounded so huge replays cannot grow it freely).
        self._decode_segment = self.perf.decode_segment_time_from_sum
        self._save_cost = lru_cache(maxsize=4096)(self._save_cost_uncached)
        self._init_continuations()
        self.sanitized = sanitize if sanitize is not None else sanitize_enabled()
        if self.sanitized:
            install_engine(self)

    def _init_continuations(self) -> None:
        """(Re)build the preallocated single-flight continuation set.

        Called at construction and by :meth:`crash`: a crash may leave a
        stale instance scheduled in the event queue, and reusing it for
        post-restart work would alias the stale event with fresh fields
        — the stale instance must instead keep its old epoch and no-op
        when it fires (see :mod:`repro.engine.continuations`).
        """
        self._prefill_slice_done = PrefillSliceDone(self)
        self._resume_prefill = ResumePrefill(self)
        self._decode_chunk_done = DecodeChunkDone(self)
        self._save_block_done = SaveBlockDone(self)
        self._ttl_sweep_cont = TtlSweep(self)

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------
    def _compute_hbm_budget_tokens(self) -> int:
        """KV tokens that fit in HBM after weights and access buffers."""
        free = self.hardware.free_hbm_bytes(self.model)
        buffer_layers = self.config.read_buffer_layers + self.config.write_buffer_layers
        buffer_fraction = min(0.5, buffer_layers / self.model.n_layers * 0.1)
        hbm_cache = self.store.config.hbm_cache_bytes if self.store else 0
        usable = int(free * (1.0 - buffer_fraction)) - hbm_cache
        if usable <= 0:
            raise ValueError("no HBM left for active KV caches after buffers")
        return usable // self.model.kv_bytes_per_token

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, trace: Trace | Iterable[Conversation]) -> RunResult:
        """Replay ``trace`` to completion and return aggregate results."""
        self.schedule_trace(trace)
        self.sim.run()
        return self.result()

    def schedule_trace(self, trace: Trace | Iterable[Conversation]) -> None:
        """Schedule the session arrivals of ``trace`` (without running).

        Split out of :meth:`run` so a cluster can schedule work on several
        replicas sharing one simulator before draining it once.

        ``trace`` is either a materialised :class:`Trace` — every arrival
        is scheduled up front, exactly as before — or an arrival-ordered
        iterable of :class:`Conversation` objects (e.g.
        :func:`repro.workload.stream_trace`).  A streamed trace is pulled
        lazily: exactly one arrival event is pending at any time and
        finished sessions are dropped from :attr:`sessions`, so in-flight
        memory is O(live sessions) instead of O(total sessions).
        """
        if isinstance(trace, Trace):
            if len(trace) == 0:
                raise ValueError("cannot run an empty trace")
            self._remaining_sessions += len(trace)
            at = self.sim.at
            for conv in trace.conversations:
                at(conv.arrival_time, SessionStart(self, conv))
            self.schedule_maintenance()
            return
        stream = iter(trace)
        first = next(stream, None)
        if first is None:
            raise ValueError("cannot run an empty trace")
        self._stream = stream
        self._drop_finished_sessions = True
        self._remaining_sessions += 1
        self._stream_arrival = StreamArrival(self, first)
        self.sim.at(first.arrival_time, self._stream_arrival)
        self.schedule_maintenance()

    def schedule_maintenance(self) -> None:
        """Arm background work: TTL sweeps and injected tier-loss events.

        Called by :meth:`schedule_trace`; a cluster calls it directly for
        each replica, since cluster arrivals bypass ``schedule_trace``.
        """
        if self.store is not None and self.store.config.ttl_seconds is not None:
            self._schedule_ttl_sweep()
        if self.store is not None and self.fault_config is not None:
            for event in self.fault_config.tier_loss_events:
                self.sim.at(event.at, TierLoss(self.store, Tier(event.tier)))

    def result(self) -> RunResult:
        """Aggregate results after the simulator has drained."""
        return RunResult(
            summary=self.metrics.summarise(),
            store_stats=self.store.stats if self.store else None,
            pcie_bytes=self.pcie_h2d.bytes_moved + self.pcie_d2h.bytes_moved,
            ssd_bytes=self.ssd.bytes_moved,
            events_processed=self.sim.events_processed,
            model_name=self.model.name,
            mode=self.config.mode,
        )

    @property
    def active_sessions(self) -> frozenset[int]:
        """Sessions currently admitted (prefilling or decoding); their
        store items are pinned against eviction."""
        return frozenset(self._active_sessions)

    @property
    def load_tokens(self) -> int:
        """Waiting + admitted token load (the least-loaded routing signal):
        queued question/answer tokens plus HBM-reserved tokens of jobs
        currently prefilling or decoding."""
        return self.queue.pending_tokens + self._hbm_reserved_tokens

    def start_session(self, conv: Conversation) -> None:
        """Begin serving ``conv`` now (cluster arrival entry point)."""
        self._remaining_sessions += 1
        self._start_session(conv)

    def submit_next_turn(
        self,
        session: SessionState,
        *,
        failover: bool = False,
        arrival_time: float | None = None,
    ) -> None:
        """Enqueue a session's next turn now (cluster routing entry point).

        Resubmissions of a turn interrupted by a replica crash pass
        ``failover=True`` (the history is recomputed at this replica) and
        the turn's *original* ``arrival_time``, so recorded queueing delay
        spans the downtime the user actually waited through.
        """
        self._submit_next_turn(session, failover=failover, arrival_time=arrival_time)

    def release_session(self, session_id: int) -> SessionState:
        """Hand a session off to another replica (cluster migration)."""
        session = self.sessions.pop(session_id)
        self._remaining_sessions -= 1
        return session

    def adopt_session(self, session: SessionState) -> None:
        """Take over a session handed off by another replica."""
        self.sessions[session.session_id] = session
        self._remaining_sessions += 1

    # ------------------------------------------------------------------
    # Arrival path
    # ------------------------------------------------------------------
    def _start_session(self, conv: Conversation) -> None:
        session = SessionState(conversation=conv)
        sessions = self.sessions
        sessions[conv.session_id] = session
        if self._drop_finished_sessions and len(sessions) > self._peak_live_sessions:
            self._peak_live_sessions = len(sessions)
        self._submit_next_turn(session)

    def _on_stream_arrival(self, arrival: StreamArrival) -> None:
        """One streamed arrival fired: chain the next, then start this one.

        The next conversation is pulled and scheduled *before* this
        session starts so the arrival chain never depends on serving
        progress; the generator contract (non-decreasing arrival times)
        makes scheduling at ``conv.arrival_time`` always legal.
        """
        conv = arrival.conv
        assert self._stream is not None
        nxt = next(self._stream, None)
        if nxt is None:
            self._stream = None
            self._stream_arrival = None
        else:
            if nxt.arrival_time < conv.arrival_time:
                raise ValueError(
                    "streamed trace is not arrival-ordered: "
                    f"{nxt.arrival_time} after {conv.arrival_time}"
                )
            self._remaining_sessions += 1
            arrival.conv = nxt
            self.sim.at(nxt.arrival_time, arrival)
        self._start_session(conv)

    def _submit_next_turn(
        self,
        session: SessionState,
        failover: bool = False,
        arrival_time: float | None = None,
    ) -> None:
        turn = session.conversation.turns[session.next_turn]
        request = TurnRequest(
            session_id=session.session_id,
            turn_index=session.next_turn,
            q_tokens=turn.q_tokens,
            a_tokens=turn.a_tokens,
            arrival_time=self._clock.now if arrival_time is None else arrival_time,
            global_turn=self._turn_counter.next(),
            failover=failover,
        )
        self.queue.push(request)
        self._prefetch()
        self._dispatch()

    def _prefetch(self) -> None:
        store = self.store
        if store is None:
            return
        # The live set is passed directly (no frozenset copy): the store
        # only reads it, and nothing mutates it within a single event.
        for session_id, done in store.prefetch(
            self.queue, self._clock.now, self._active_sessions
        ):
            self.sim.at(done, FetchDone(store, session_id))

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        if self._gpu_busy:
            return
        if self.queue and not self.batch.is_full:
            request = self.queue.peek()
            assert request is not None
            if self._fits_hbm(request):
                self.queue.pop()
                self._active_sessions.add(request.session_id)
                self._prefetch()
                self._start_prefill(request)
                return
        if self.batch:
            self._start_decode_chunk()

    def _fits_hbm(self, request: TurnRequest) -> bool:
        session = self.sessions[request.session_id]
        window = self.model.context_window
        prompt_upper = min(session.history_tokens + request.q_tokens, window)
        needed = prompt_upper + min(request.a_tokens, window)
        return self._hbm_reserved_tokens + needed <= self._hbm_budget_tokens

    # ------------------------------------------------------------------
    # Prefill
    # ------------------------------------------------------------------
    def _start_prefill(self, request: TurnRequest) -> None:
        session = self.sessions[request.session_id]
        now = self._clock.now
        outcome = apply_context_window(
            session.history_tokens,
            request.q_tokens,
            self.model.context_window,
            self.config.truncation_ratio,
        )
        dropped_from_history = session.history_tokens - outcome.history_tokens
        if dropped_from_history:
            session.record_truncation(dropped_from_history)
            if self.store is not None:
                # KV-cache truncation: keeps the cache valid only when the
                # positions were decoupled at save time (Section 3.4).
                # For a prefix-sharing session this is the copy-on-write
                # point: the store forks any kept prefix tokens into the
                # private item and releases the shared reference.
                self.store.truncate(request.session_id, outcome.history_tokens)
        if outcome.dropped_tokens and session.conversation.shared_prefix_tokens:
            # Any truncation diverges the session from its shared prefix
            # for good (histories only append; see SessionState).
            session.shared_detached = True

        prompt = outcome.prompt_tokens
        reused = 0
        shared_hit = 0
        load_time = 0.0
        turn_outcome = TurnOutcome.FIRST_TURN
        shared_hash = self._shared_hash_of(session)

        if request.turn_index == 0:
            if shared_hash is not None:
                assert self.store is not None
                sh = self.store.lookup_shared(shared_hash, now)
                if sh is not None:
                    hit_tokens = min(sh.n_tokens, prompt)
                    load = self._kv_load_time(sh.status, sh.ready_at, hit_tokens)
                    if load is not None:
                        # A first turn that skips its prefix: the only
                        # outcome where turn 0 reuses KV.
                        self.store.acquire_shared(shared_hash, request.session_id)
                        reused = shared_hit = hit_tokens
                        load_time = load
                        turn_outcome = TurnOutcome.HIT_SHARED
        else:
            turn_outcome = TurnOutcome.MISS
            if request.failover:
                # The turn was interrupted by a replica crash and re-routed
                # here; whatever KV survives is unreachable on this replica
                # (exactly-one-copy), so the history recomputes in full.
                turn_outcome = TurnOutcome.FALLBACK_RECOMPUTE
                if self.store is not None:
                    self.store.stats.fallback_recomputes += 1
            elif self.store is not None and outcome.history_tokens > 0:
                result = self.store.lookup(request.session_id, now)
                if result.status is LookupStatus.MISS_CORRUPT:
                    # Checksum mismatch: the cache is dropped, never
                    # served; this turn recomputes its history in full.
                    turn_outcome = TurnOutcome.FALLBACK_RECOMPUTE
                    self.store.stats.fallback_recomputes += 1
                else:
                    sh = (
                        self.store.lookup_shared(shared_hash, now)
                        if shared_hash is not None
                        else None
                    )
                    if result.hit and shared_hash is not None and sh is None:
                        # The private suffix survives but its prefix block
                        # is gone: KV is only readable prefix-first, so
                        # the suffix is unusable.  Drop it and recompute.
                        self.store.drop(request.session_id)
                        result = LookupResult(LookupStatus.MISS)
                    if result.hit:
                        extra = sh.n_tokens if sh is not None else 0
                        reused = min(result.n_tokens + extra, outcome.history_tokens)
                        shared_hit = min(extra, reused)
                        private_part = reused - shared_hit
                        load = self._kv_load_time(
                            result.status, result.ready_at, private_part
                        )
                        shared_load = (
                            self._kv_load_time(sh.status, sh.ready_at, shared_hit)
                            if sh is not None and shared_hit
                            else 0.0
                        )
                        if load is None or shared_load is None:
                            # The KV load failed past the retry budget (or
                            # the SSD breaker is open): degrade to recompute.
                            turn_outcome = TurnOutcome.FALLBACK_RECOMPUTE
                            self.store.stats.fallback_recomputes += 1
                            reused = shared_hit = 0
                        else:
                            turn_outcome = TurnOutcome.from_lookup(result.status)
                            # Private and shared loads overlap; contention
                            # on a common channel is already serialised by
                            # the channel model.
                            load_time = max(load, shared_load)
                            if shared_hit:
                                self.store.acquire_shared(
                                    shared_hash, request.session_id  # type: ignore[arg-type]
                                )
                    elif sh is not None:
                        # Private miss, shared hit: the prefix alone is
                        # still a partial skip of the recompute.
                        hit_tokens = min(sh.n_tokens, outcome.history_tokens)
                        load = self._kv_load_time(sh.status, sh.ready_at, hit_tokens)
                        if load is not None:
                            self.store.acquire_shared(shared_hash, request.session_id)
                            reused = shared_hit = hit_tokens
                            load_time = load
                            turn_outcome = TurnOutcome.HIT_SHARED

        new_tokens = prompt - reused
        if request.failover:
            self.failover_recompute_tokens += new_tokens
        compute_time = (
            self.perf.prefill_time(new_tokens, reused)
            / self.config.prefill_efficiency_factor
        )
        if load_time > 0.0:
            if self.config.enable_preload:
                duration = layerwise_prefill_time(
                    self.model.n_layers,
                    compute_time,
                    load_time,
                    self.config.read_buffer_layers,
                )
            else:
                duration = no_preload_prefill_time(compute_time, load_time)
        else:
            # Nothing to load (cold turn or HBM-cache hit): pure compute.
            duration = compute_time

        generate = clamp_decode_tokens(
            prompt, request.a_tokens, self.model.context_window
        )
        chunk = self.config.chunked_prefill_tokens
        if chunk is None or new_tokens <= chunk:
            n_slices = 1
        else:
            n_slices = -(-new_tokens // chunk)  # ceil
        record = TurnRecord(
            session_id=request.session_id,
            turn_index=request.turn_index,
            global_turn=request.global_turn,
            outcome=turn_outcome,
            arrival_time=request.arrival_time,
            prefill_start=now,
            prompt_tokens=prompt,
            new_tokens=new_tokens,
            reused_tokens=reused,
            generated_tokens=generate,
            ttft=duration,
            prefill_gpu_time=duration,
            dropped_tokens=outcome.dropped_tokens,
            shared_hit_tokens=shared_hit,
        )
        job = ActiveJob(
            request=request,
            record=record,
            context_tokens=prompt,
            remaining_tokens=generate,
            reserved_tokens=prompt + generate,
        )
        self._hbm_reserved_tokens += job.reserved_tokens
        self._prefilling_job = job
        if self.tracer is not None:
            self._trace_prefill(request, record, now, compute_time, load_time)
        self._continue_prefill(job, n_slices, duration / n_slices)

    def _trace_prefill(
        self,
        request: TurnRequest,
        record: TurnRecord,
        now: float,
        compute_time: float,
        load_time: float,
    ) -> None:
        """Emit queue-wait / preload / prefill spans for one starting turn.

        Everything recorded here was already computed by
        :meth:`_start_prefill`; this only copies it into the tracer.
        """
        tracer = self.tracer
        assert tracer is not None
        track = self.name
        duration = record.prefill_gpu_time
        tracer.span(
            "queue-wait",
            "queue",
            request.arrival_time,
            now,
            lane="queue",
            track=track,
            args={"session": request.session_id, "turn": request.turn_index},
        )
        if load_time > 0.0:
            hidden, exposed = overlap_exposure(compute_time, load_time, duration)
            tracer.span(
                "preload",
                "kv",
                now,
                now + load_time,
                lane="kv-load",
                track=track,
                args={
                    "session": request.session_id,
                    "reused_tokens": record.reused_tokens,
                    "hidden_s": hidden,
                    "exposed_s": exposed,
                },
            )
        if record.shared_hit_tokens > 0:
            tracer.span(
                "shared-hit",
                "kv",
                now,
                now + load_time,
                lane="kv-load",
                track=track,
                args={
                    "session": request.session_id,
                    "turn": request.turn_index,
                    "shared_tokens": record.shared_hit_tokens,
                },
            )
        tracer.span(
            "prefill",
            "gpu",
            now,
            now + duration,
            lane="gpu",
            track=track,
            args={
                "session": request.session_id,
                "turn": request.turn_index,
                "prompt_tokens": record.prompt_tokens,
                "new_tokens": record.new_tokens,
                "reused_tokens": record.reused_tokens,
                "outcome": record.outcome.value,
            },
        )

    def _continue_prefill(
        self, job: ActiveJob, remaining_slices: int, slice_duration: float
    ) -> None:
        """Run one prefill slice (the whole prefill when not chunked)."""
        self._gpu_occupy(slice_duration)
        if len(self.batch) > 0:
            # Decoding jobs are stalled for this slice (Section 4.2's
            # blocking effect; chunked prefill bounds it).
            self.metrics.record_decode_stall(slice_duration)
        # Single-flight: the GPU serialises prefill slices, so the one
        # preallocated continuation is free whenever a slice starts.
        cont = self._prefill_slice_done
        cont.epoch = self._epoch
        cont.job = job
        cont.remaining_slices = remaining_slices - 1
        cont.slice_duration = slice_duration
        self.sim.after(slice_duration, cont)

    def _on_prefill_slice_done(
        self, job: ActiveJob, remaining_slices: int, slice_duration: float
    ) -> None:
        self._gpu_release()
        if remaining_slices == 0:
            self._on_prefill_done(job)
            return
        if self.batch:
            # Piggyback one decode chunk between prefill slices.
            resume = self._resume_prefill
            resume.job = job
            resume.remaining_slices = remaining_slices
            resume.slice_duration = slice_duration
            self._start_decode_chunk(resume=resume)
        else:
            self._continue_prefill(job, remaining_slices, slice_duration)

    def _shared_hash_of(self, session: SessionState) -> str | None:
        """The session's shared-prefix content hash, or None when sharing
        does not apply (no prefix, sharing disabled, diverged, no store,
        or HBM-cache mode — whose saves retain the *full* history
        privately, so deduplicating the prefix would double-count it)."""
        conv = session.conversation
        if (
            conv.shared_prefix_tokens <= 0
            or session.shared_detached
            or self.store is None
            or not self.store.config.enable_sharing
            or self.store.config.hbm_cache_bytes > 0
        ):
            return None
        if session.shared_hash is None:
            session.shared_hash = shared_prefix_hash(
                conv.shared_prefix_id,
                conv.shared_prefix_tokens,
                self.model.name,
            )
        return session.shared_hash

    def _kv_load_time(
        self, status: LookupStatus, ready_at: float, n_tokens: int
    ) -> float | None:
        """Duration to bring a session's KV into HBM, from lookup status.

        Returns None when the load could not complete under fault
        injection (retry budget exhausted, or the SSD breaker is open);
        the caller falls back to recomputing the history.
        """
        now = self._clock.now
        n_bytes = self.model.kv_bytes(n_tokens)
        if status is LookupStatus.HIT_HBM:
            return 0.0
        if status is LookupStatus.HIT_DRAM:
            start = max(now, ready_at)
            done = self._fault_tolerant_transfer(self.pcie_h2d, start, n_bytes)
            return None if done is None else done - now
        if status is LookupStatus.HIT_DISK:
            if self.store is not None and not self.store.ssd_available(now):
                return None
            done = self._fault_tolerant_transfer(self.disk_path, now, n_bytes)
            return None if done is None else done - now
        raise ValueError(f"no load for lookup status {status}")

    def _fault_tolerant_transfer(
        self, link: Channel | ChannelPair, start: float, n_bytes: int
    ) -> float | None:
        """Run one engine-side transfer, absorbing injected faults.

        Without an injector this is a plain ``link.transfer``.  With one,
        transient failures are retried with capped exponential backoff up
        to the configured budget; SSD failures additionally feed the
        store's SSD health breaker.  Returns the completion time, or None
        when the transfer could not be completed.
        """
        if self.faults is None:
            return link.transfer(start, n_bytes)
        fc = self.faults.config
        stats = self.store.stats if self.store is not None else None
        health = self.store.ssd_health if self.store is not None else None
        attempt = 0
        t = start
        while True:
            try:
                done = link.transfer(t, n_bytes)
            except FaultyTransfer as fault:
                if stats is not None:
                    stats.transfer_faults += 1
                if fault.channel == "ssd" and health is not None:
                    if health.record_failure(t):
                        if stats is not None:
                            stats.breaker_trips += 1
                        return None
                if attempt >= fc.max_retries:
                    return None
                attempt += 1
                if stats is not None:
                    stats.transfer_retries += 1
                t = max(t, fault.busy_until) + fc.backoff(attempt)
                continue
            if (
                isinstance(link, ChannelPair)
                and health is not None
                and health.record_success()
                and stats is not None
            ):
                stats.breaker_recoveries += 1
            return done

    def _on_prefill_done(self, job: ActiveJob) -> None:
        # The GPU was already released by the final prefill slice handler.
        self._prefilling_job = None
        job.decode_wall_start = self._clock.now
        self.batch.add(job)
        self._dispatch()

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def _start_decode_chunk(self, resume: ResumePrefill | None = None) -> None:
        """Run up to ``decode_chunk_iters`` iterations; afterwards call
        ``resume`` (a paused chunked prefill) or re-enter dispatch."""
        batch = self.batch
        batch_len = len(batch)
        n_iters = min(self.config.decode_chunk_iters, batch.min_remaining())
        duration = self._decode_segment(batch.context_sum, batch_len, n_iters)
        if self.tracer is not None:
            now = self._clock.now
            self.tracer.span(
                "decode",
                "gpu",
                now,
                now + duration,
                lane="gpu",
                track=self.name,
                args={"batch": batch_len, "iters": n_iters},
            )
        self._gpu_occupy(duration)
        # Single-flight: at most one decode chunk is in flight, so the
        # preallocated continuation is free here (a crash swaps in a
        # fresh set, leaving any stale pending instance to no-op).
        cont = self._decode_chunk_done
        cont.epoch = self._epoch
        cont.n_iters = n_iters
        cont.duration = duration
        cont.batch_len = batch_len
        cont.resume = resume
        self.sim.after(duration, cont)

    def _on_decode_chunk_done(
        self,
        n_iters: int,
        duration: float,
        batch_len: int,
        resume: ResumePrefill | None = None,
    ) -> None:
        self._gpu_release()
        share = duration / batch_len
        # Fused advance + accounting: every job that decoded this chunk
        # (survivors and finishers alike) is credited ``share`` in the
        # same pass that moves its token counters.
        finished = self.batch.advance_and_share(n_iters, share)
        blocking_total = 0.0
        if finished:
            blocking_total = self._complete_turns(finished)
        if blocking_total > 0.0:
            if self.tracer is not None:
                now = self._clock.now
                self.tracer.span(
                    "save-block",
                    "gpu",
                    now,
                    now + blocking_total,
                    lane="gpu",
                    track=self.name,
                    args={"turns": len(finished)},
                )
            # Residual KV write-back blocks the GPU before the next job.
            self._gpu_occupy(blocking_total)
            cont = self._save_block_done
            cont.epoch = self._epoch
            cont.resume = resume
            self.sim.after(blocking_total, cont)
        elif resume is not None:
            resume()
        else:
            self._dispatch()

    def _on_save_block_done(self, resume: ResumePrefill | None = None) -> None:
        self._gpu_release()
        if resume is not None:
            resume()
        else:
            self._dispatch()

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _complete_turns(self, finished: list[ActiveJob]) -> float:
        """Finish a decode chunk's completed turns; return the total GPU
        blocking from KV saving.

        The per-turn loop runs with every invariant attribute hoisted
        (clock, session map, store, tracer) and metrics recording batched
        into one :meth:`MetricsCollector.record_turns` call — same
        records, same order, so the float accumulation is bit-identical
        to the one-call-per-turn path this replaces.
        """
        now = self._clock.now
        sessions = self.sessions
        store = self.store
        tracer = self.tracer
        active = self._active_sessions
        after = self.sim.after
        drop_finished = self._drop_finished_sessions
        reserved_delta = 0
        blocking_total = 0.0
        for job in finished:
            session_id = job.session_id
            session = sessions[session_id]
            record = job.record
            record.completion_time = now
            reserved_delta += job.reserved_tokens

            blocking = 0.0
            if store is not None:
                blocking = self._save_kv(job, session)
            active.discard(session_id)
            record.save_block_time = blocking
            blocking_total += blocking
            if tracer is not None:
                tracer.async_span(
                    "turn",
                    "turn",
                    f"{session_id}:{record.turn_index}",
                    record.arrival_time,
                    now,
                    track=self.name,
                    args={
                        "session": session_id,
                        "turn": record.turn_index,
                        "outcome": record.outcome.value,
                        "ttft_s": record.ttft,
                    },
                )

            session.record_turn_served(record.prompt_tokens, record.generated_tokens)
            if session.finished:
                self._remaining_sessions -= 1
                if drop_finished:
                    # Streamed replay: the session will never be looked
                    # up again (its KV lives in the store until evicted
                    # or expired), so holding it would make memory
                    # O(total sessions).
                    del sessions[session_id]
            else:
                think = session.conversation.turns[session.next_turn].think_time
                timer = session.timer
                if timer is None:
                    timer = NextTurnTimer(self, session)
                    session.timer = timer
                else:
                    # The session may have migrated here: the timer must
                    # complete against the replica that served this turn.
                    timer.engine = self
                after(think, timer)
        self._hbm_reserved_tokens -= reserved_delta
        self.metrics.record_turns([job.record for job in finished])
        return blocking_total

    def _save_kv(self, job: ActiveJob, session: SessionState) -> float:
        """Write the turn's newly produced KV to AttentionStore."""
        assert self.store is not None
        now = self._clock.now
        record = job.record
        total_tokens = record.prompt_tokens + record.generated_tokens
        decoupled = self.config.truncation is TruncationPolicyName.KV_DECOUPLED

        # Shared-prefix dedup: a prefix-bearing session saves only the
        # tokens *after* the prefix privately; the prefix itself lives
        # once in the content-addressed index.  Registration is
        # idempotent across the template's sessions; if no space can be
        # made for the block, this session detaches and stores its full
        # history privately like any other.
        prefix_tokens = 0
        shared_hash = self._shared_hash_of(session)
        if shared_hash is not None:
            conv = session.conversation
            if self.store.register_shared(
                shared_hash,
                conv.shared_prefix_tokens,
                now,
                queue=self.queue,
                pinned=self._active_sessions,
            ):
                self.store.acquire_shared(shared_hash, job.session_id)
                prefix_tokens = conv.shared_prefix_tokens
            else:
                session.shared_detached = True

        if self.store.config.hbm_cache_bytes > 0:
            item = self.store.save_to_hbm_cache(
                job.session_id,
                total_tokens,
                now,
                queue=self.queue,
                pinned=self._active_sessions,
            )
        else:
            item = self.store.save(
                job.session_id,
                total_tokens - prefix_tokens,
                now,
                queue=self.queue,
                position_decoupled=decoupled,
                pinned=self._active_sessions,
            )
        if item is None:
            return 0.0
        if not decoupled:
            item.position_decoupled = False

        # Only the KV produced this turn crosses PCIe; reused history
        # already lives in the store.
        delta_tokens = record.new_tokens + record.generated_tokens
        n_bytes, save_time = self._save_cost(delta_tokens)
        done = self._fault_tolerant_transfer(self.pcie_d2h, now, n_bytes)
        if done is None:
            # The write-back failed: the stored copy is incomplete, so the
            # turn degrades to "not retained" — drop it and move on
            # without blocking the GPU.
            self.store.drop(job.session_id)
            self.store.stats.failed_saves += 1
            return 0.0
        if self.config.enable_async_save:
            overlap_window = max(0.0, now - job.decode_wall_start)
            return async_save_blocking_time(
                save_time,
                overlap_window,
                self.model.n_layers,
                self.config.write_buffer_layers,
            )
        return sync_save_blocking_time(save_time)

    def _save_cost_uncached(self, delta_tokens: int) -> tuple[int, float]:
        """(bytes, unloaded PCIe seconds) for one turn's KV write-back.

        Both depend only on ``delta_tokens`` — KV bytes/token and the
        d2h link's nominal bandwidth are fixed for the run — so the
        engine memoises the pair (``self._save_cost``).  Note this is
        the *duration at full bandwidth* used by the overlap model; the
        actual (contended) transfer still goes through the channel.
        """
        n_bytes = self.model.kv_bytes(delta_tokens)
        return n_bytes, self.pcie_d2h.duration(n_bytes)

    # ------------------------------------------------------------------
    # Replica lifecycle (cluster crash/restart entry points)
    # ------------------------------------------------------------------
    def crash(self, now: float) -> list[TurnRequest]:
        """Kill the replica: wipe volatile state and abort in-flight work.

        Returns the interrupted turn requests (queued, mid-prefill and
        mid-decode) in arrival order, so the cluster can fail them over to
        healthy peers or park them for resubmission at restart.  Already-
        scheduled continuations of the aborted GPU work are invalidated by
        bumping the crash epoch (closures cannot be unscheduled); pending
        think-time callbacks survive — clients keep typing while the
        server is down.  GPU-busy time the aborted work already recorded
        stays recorded: the GPU really burned it.
        """
        self._epoch += 1
        # Abandon the preallocated continuation set: any instance still
        # sitting in the event queue keeps its pre-crash epoch and no-ops
        # when it fires; reusing it for post-restart work would overwrite
        # those fields and turn the no-op into an early fire.
        self._init_continuations()
        interrupted: list[TurnRequest] = []
        while self.queue:
            interrupted.append(self.queue.pop())
        if self._prefilling_job is not None:
            interrupted.append(self._prefilling_job.request)
            self._prefilling_job = None
        interrupted.extend(job.request for job in self.batch.jobs)
        self.batch = BatchState(self.config.batch_size)
        self._gpu_busy = False
        self._hbm_reserved_tokens = 0
        self._active_sessions.clear()
        if self.store is not None:
            self.store.wipe_volatile(now)
        interrupted.sort(key=lambda r: (r.arrival_time, r.global_turn))
        return interrupted

    def restart(
        self, now: float, keep: Callable[[int], bool] | None = None
    ) -> tuple[int, int]:
        """Bring a crashed replica back up, re-admitting surviving SSD KV.

        ``keep`` filters which parked sessions' caches return (the cluster
        rejects sessions that failed over during the downtime — their
        authoritative copy lives at the new home now).  Re-arms the TTL
        sweep under the post-crash epoch; tier-loss events were scheduled
        at absolute times and need no re-arming.  Returns the
        ``(readmitted, discarded)`` item counts.
        """
        readmitted = discarded = 0
        if self.store is not None:
            readmitted, discarded = self.store.restore_offline(now, keep)
            if self.store.config.ttl_seconds is not None:
                self._schedule_ttl_sweep()
        return readmitted, discarded

    # ------------------------------------------------------------------
    # Background maintenance
    # ------------------------------------------------------------------
    def _schedule_ttl_sweep(self) -> None:
        """Arm the next TTL sweep under the current crash epoch.

        The sweep chain is single-flight (each firing arms the next), so
        the one preallocated :class:`TtlSweep` is always free here; a
        sweep armed before a crash keeps the stale epoch — and the stale
        instance — and no-ops, while :meth:`restart` re-arms the fresh
        instance under the new epoch.
        """
        cont = self._ttl_sweep_cont
        cont.epoch = self._epoch
        self.sim.after(self.TTL_SWEEP_INTERVAL, cont)

    def _ttl_sweep(self) -> None:
        assert self.store is not None
        self.store.sweep_expired(self._clock.now)
        if self._remaining_sessions > 0:
            self._schedule_ttl_sweep()

    # ------------------------------------------------------------------
    # GPU occupancy bookkeeping
    # ------------------------------------------------------------------
    def _gpu_occupy(self, duration: float) -> None:
        if self._gpu_busy:
            raise RuntimeError("GPU already busy")
        self._gpu_busy = True
        self.metrics.record_gpu_busy(duration)

    def _gpu_release(self) -> None:
        if not self._gpu_busy:
            raise RuntimeError("GPU was not busy")
        self._gpu_busy = False
