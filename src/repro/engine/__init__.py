"""The LLM serving engine: RE baseline and CachedAttention (CA)."""

from .batching import ActiveJob, BatchState
from .engine import RunResult, ServingEngine, TurnCounter
from .metrics import MetricsCollector, RunSummary, TurnOutcome, TurnRecord
from .overlap import (
    async_save_blocking_time,
    layerwise_prefill_time,
    layerwise_prefill_time_reference,
    no_preload_prefill_time,
    overlap_exposure,
    perfect_overlap_buffer_layers,
    preload_speedup,
    sync_save_blocking_time,
)
from .queue import SchedulerQueue
from .request import TurnRequest
from .session import SessionState
from .truncation import TruncationOutcome, apply_context_window, clamp_decode_tokens

__all__ = [
    "ActiveJob",
    "BatchState",
    "MetricsCollector",
    "RunResult",
    "RunSummary",
    "SchedulerQueue",
    "ServingEngine",
    "SessionState",
    "TruncationOutcome",
    "TurnCounter",
    "TurnOutcome",
    "TurnRecord",
    "TurnRequest",
    "apply_context_window",
    "async_save_blocking_time",
    "clamp_decode_tokens",
    "layerwise_prefill_time",
    "layerwise_prefill_time_reference",
    "no_preload_prefill_time",
    "overlap_exposure",
    "perfect_overlap_buffer_layers",
    "preload_speedup",
    "sync_save_blocking_time",
]
