"""O(1)-memory quantile estimation for streaming metrics.

:class:`LogHistogramQuantile` buckets observations into geometrically
spaced bins (``growth`` ratio per bin) and answers quantile queries from
the bin counts.  Compared to the P² algorithm it has two properties the
streaming :class:`~repro.engine.metrics.MetricsCollector` needs:

* **mergeable** — cluster runs pool per-replica collectors, and two
  histograms merge exactly by summing bin counts (P² interpolation state
  cannot be merged without bias);
* **bounded, documented error** — every value in a bin is within a factor
  ``sqrt(growth)`` of the bin's geometric midpoint, so a quantile estimate
  carries at most ``sqrt(growth) - 1`` relative error (~0.5 % at the
  default growth of 1.01), independent of the data distribution.

Memory is O(occupied bins): a dict from bin index to count, bounded by
``log(support) / log(growth)`` regardless of how many values stream in.
"""

from __future__ import annotations

import math


class LogHistogramQuantile:
    """Streaming quantile estimator over log-spaced bins.

    Values at or below ``min_value`` land in an underflow bin represented
    by ``min_value`` itself; there is no overflow clamp (indices grow with
    ``log(value)``, still bounded for any physical latency).
    """

    __slots__ = ("min_value", "growth", "_log_growth", "_counts", "_n")

    def __init__(self, min_value: float = 1e-6, growth: float = 1.01) -> None:
        if min_value <= 0:
            raise ValueError(f"min_value must be positive, got {min_value}")
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        self.min_value = min_value
        self.growth = growth
        self._log_growth = math.log(growth)
        self._counts: dict[int, int] = {}
        self._n = 0

    def __len__(self) -> int:
        return self._n

    @property
    def relative_error(self) -> float:
        """Worst-case relative error of any quantile estimate."""
        return math.sqrt(self.growth) - 1.0

    def add(self, value: float) -> None:
        """Record one observation."""
        if value <= self.min_value:
            index = 0
        else:
            index = 1 + int(math.log(value / self.min_value) / self._log_growth)
        counts = self._counts
        counts[index] = counts.get(index, 0) + 1
        self._n += 1

    def _bin_value(self, index: int) -> float:
        """Geometric midpoint of a bin (the underflow bin reports
        ``min_value``)."""
        if index <= 0:
            return self.min_value
        # Bin i covers [min * g^(i-1), min * g^i); midpoint = min * g^(i-1/2).
        return self.min_value * math.exp((index - 0.5) * self._log_growth)

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` using the same rank convention as the
        exact collector: the element at sorted index ``min(n-1, int(q*n))``.

        Returns 0.0 for an empty histogram (matching the exact
        collector's empty-run summary).
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"q must be in [0, 1], got {q}")
        n = self._n
        if n == 0:
            return 0.0
        rank = min(n - 1, int(q * n))
        seen = 0
        for index in sorted(self._counts):
            seen += self._counts[index]
            if seen > rank:
                return self._bin_value(index)
        raise AssertionError("rank beyond histogram population")  # pragma: no cover

    def merge(self, other: "LogHistogramQuantile") -> None:
        """Fold another histogram into this one (exact: counts add)."""
        if (other.min_value, other.growth) != (self.min_value, self.growth):
            raise ValueError("cannot merge histograms with different binning")
        counts = self._counts
        for index, count in other._counts.items():
            counts[index] = counts.get(index, 0) + count
        self._n += other._n
