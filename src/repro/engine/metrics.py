"""Serving metrics: per-turn records and run-level aggregation.

Definitions follow the paper's evaluation (Section 4.2):

* **Cache hit rate** — fraction of *lookups* (turns with history; first
  turns have nothing to look up) served from AttentionStore, split into
  DRAM and disk hits.
* **TTFT** — prefill execution time of a turn: KV loading (as overlapped)
  plus computing the new tokens, i.e. how long the user waits for the
  first output token once the job is scheduled.  Queueing delay is
  recorded separately.
* **Prefill throughput** — prompt tokens (historical + new, since reused
  history counts as processed) per second of prefill GPU time.
* **GPU time** — GPU busy seconds, decomposed into prefill, decode and
  save blocking.

Aggregates are computed over the turns after the warm-up prefix, matching
the paper's "warm up with the first 10K turns, evaluate the following 42K".
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..store.attention_store import LookupStatus
from .streaming import LogHistogramQuantile


class TurnOutcome(str, Enum):
    """How a turn's historical KV was obtained."""

    FIRST_TURN = "first-turn"  # no history: nothing to look up
    HIT_HBM = "hit-hbm"
    HIT_DRAM = "hit-dram"
    HIT_DISK = "hit-disk"
    #: The session's *private* history missed (or there was none beyond
    #: the prefix) but the cross-session shared prefix block hit; the
    #: reused tokens came from the content-addressed sharing index.
    HIT_SHARED = "hit-shared"
    MISS = "miss"  # history existed but had to be recomputed
    # A cached history existed but could not be used — corrupt at lookup,
    # or its KV load failed past the retry budget — so the engine fell
    # back to full-recompute prefill (graceful degradation toward RE).
    FALLBACK_RECOMPUTE = "fallback-recompute"

    @classmethod
    def from_lookup(cls, status: LookupStatus) -> "TurnOutcome":
        return {
            LookupStatus.HIT_HBM: cls.HIT_HBM,
            LookupStatus.HIT_DRAM: cls.HIT_DRAM,
            LookupStatus.HIT_DISK: cls.HIT_DISK,
            LookupStatus.MISS: cls.MISS,
            LookupStatus.MISS_CORRUPT: cls.FALLBACK_RECOMPUTE,
        }[status]

    @property
    def is_hit(self) -> bool:
        return self in (self.HIT_HBM, self.HIT_DRAM, self.HIT_DISK, self.HIT_SHARED)


@dataclass(slots=True)
class TurnRecord:
    """Everything measured about one served turn."""

    session_id: int
    turn_index: int
    global_turn: int
    outcome: TurnOutcome
    arrival_time: float
    prefill_start: float
    prompt_tokens: int
    new_tokens: int  # tokens actually prefilled (computed)
    reused_tokens: int  # tokens loaded from AttentionStore
    generated_tokens: int
    ttft: float  # prefill execution time
    prefill_gpu_time: float
    decode_gpu_share: float = 0.0
    save_block_time: float = 0.0
    completion_time: float = 0.0
    dropped_tokens: int = 0  # context-window truncation this turn
    #: Of ``reused_tokens``, how many came from a cross-session shared
    #: prefix block rather than the session's private cache.
    shared_hit_tokens: int = 0
    in_eval_window: bool = True

    @property
    def queue_delay(self) -> float:
        return self.prefill_start - self.arrival_time

    @property
    def gpu_time(self) -> float:
        return self.prefill_gpu_time + self.decode_gpu_share + self.save_block_time


@dataclass(frozen=True, slots=True)
class RunSummary:
    """Aggregated results of one serving run (over the evaluation window,
    except where noted)."""

    n_turns: int
    n_lookups: int
    hits_dram: int
    hits_disk: int
    hits_hbm: int
    #: Turns served from a cross-session shared prefix block when the
    #: private cache had nothing (or nothing beyond the prefix).
    hits_shared: int
    misses: int
    #: Turns that fell back to full recompute because a cached history
    #: could not be used (corruption, failed KV load).  Counted in
    #: ``n_lookups`` (they degrade the hit rate) but kept separate from
    #: plain capacity misses.
    fallbacks: int
    mean_ttft: float
    p95_ttft: float
    mean_queue_delay: float
    prompt_tokens_total: int
    new_tokens_total: int
    reused_tokens_total: int
    #: Of ``reused_tokens_total``, tokens loaded from shared prefix blocks.
    shared_reused_tokens_total: int
    generated_tokens_total: int
    prefill_gpu_time: float
    decode_gpu_time: float
    save_block_time: float
    overflow_dropped_tokens: int
    # Decode-stall statistics (time decoding jobs spent blocked behind a
    # prefill; whole run):
    max_decode_stall: float
    decode_stall_time: float
    # Whole-run figures (warm-up included), for cost accounting:
    total_gpu_busy_time: float
    makespan: float

    @property
    def hit_rate(self) -> float:
        """Overall AttentionStore hit rate over lookups."""
        if self.n_lookups == 0:
            return 0.0
        return (
            self.hits_dram + self.hits_disk + self.hits_hbm + self.hits_shared
        ) / self.n_lookups

    @property
    def dram_hit_rate(self) -> float:
        return self.hits_dram / self.n_lookups if self.n_lookups else 0.0

    @property
    def disk_hit_rate(self) -> float:
        return self.hits_disk / self.n_lookups if self.n_lookups else 0.0

    @property
    def gpu_time(self) -> float:
        """Eval-window GPU seconds (prefill + decode + save blocking)."""
        return self.prefill_gpu_time + self.decode_gpu_time + self.save_block_time

    @property
    def prefill_throughput(self) -> float:
        """Prompt tokens (incl. reused history) per prefill GPU second."""
        if self.prefill_gpu_time == 0:
            return 0.0
        return self.prompt_tokens_total / self.prefill_gpu_time


class MetricsCollector:
    """Accumulates :class:`TurnRecord` entries and summarises a run.

    Two modes:

    * **exact** (default) — every record is retained and ``summarise()``
      aggregates over the list.  O(turns) memory; p95 TTFT is exact.
    * **streaming** (``streaming=True``) — per-turn fields are folded into
      running sums and counters as they arrive and the record is *not*
      retained, so memory stays O(1) in the number of turns.  Every
      counter and sum in the resulting :class:`RunSummary` is
      bit-identical to exact mode (same values added in the same order);
      only ``p95_ttft`` is an estimate, from a log-spaced histogram with
      ≤0.5 % relative error (see
      :class:`~repro.engine.streaming.LogHistogramQuantile`).
    """

    def __init__(self, warmup_turns: int = 0, streaming: bool = False) -> None:
        if warmup_turns < 0:
            raise ValueError(f"warmup_turns must be >= 0, got {warmup_turns}")
        self.warmup_turns = warmup_turns
        self.streaming = streaming
        self.records: list[TurnRecord] = []
        self._gpu_busy_total = 0.0
        self._max_decode_stall = 0.0
        self._decode_stall_total = 0.0
        self._first_arrival: float | None = None
        self._last_completion = 0.0
        # Streaming accumulators (touched only when streaming=True; all
        # sums are over the evaluation window, in recording order so the
        # float totals match exact mode bit-for-bit).
        self._n_eval = 0
        self._outcome_counts = {outcome: 0 for outcome in TurnOutcome}
        self._ttft_sum = 0.0
        self._queue_delay_sum = 0.0
        self._prompt_sum = 0
        self._new_sum = 0
        self._reused_sum = 0
        self._shared_reused_sum = 0
        self._generated_sum = 0
        self._prefill_gpu_sum = 0.0
        self._decode_gpu_sum = 0.0
        self._save_block_sum = 0.0
        self._dropped_sum = 0
        self._ttft_hist = LogHistogramQuantile()

    def record_turn(self, record: TurnRecord) -> None:
        record.in_eval_window = record.global_turn >= self.warmup_turns
        if self._first_arrival is None or record.arrival_time < self._first_arrival:
            self._first_arrival = record.arrival_time
        self._last_completion = max(self._last_completion, record.completion_time)
        if not self.streaming:
            self.records.append(record)
            return
        if not record.in_eval_window:
            return
        self._n_eval += 1
        self._outcome_counts[record.outcome] += 1
        self._ttft_sum += record.ttft
        self._queue_delay_sum += record.queue_delay
        self._prompt_sum += record.prompt_tokens
        self._new_sum += record.new_tokens
        self._reused_sum += record.reused_tokens
        self._shared_reused_sum += record.shared_hit_tokens
        self._generated_sum += record.generated_tokens
        self._prefill_gpu_sum += record.prefill_gpu_time
        self._decode_gpu_sum += record.decode_gpu_share
        self._save_block_sum += record.save_block_time
        self._dropped_sum += record.dropped_tokens
        self._ttft_hist.add(record.ttft)

    def record_turns(self, records: "list[TurnRecord]") -> None:
        """Record a decode chunk's completed turns in one call.

        Equivalent to calling :meth:`record_turn` per record in order —
        min/max folds are order-insensitive and exact mode appends in the
        same order, so results are bit-identical — but the engine's
        completion loop pays the attribute lookups once per chunk instead
        of once per turn.
        """
        if self.streaming:
            for record in records:
                self.record_turn(record)
            return
        warmup = self.warmup_turns
        first = self._first_arrival
        last = self._last_completion
        for record in records:
            record.in_eval_window = record.global_turn >= warmup
            if first is None or record.arrival_time < first:
                first = record.arrival_time
            if record.completion_time > last:
                last = record.completion_time
        self._first_arrival = first
        self._last_completion = last
        self.records.extend(records)

    def record_gpu_busy(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self._gpu_busy_total += seconds

    @classmethod
    def merged(cls, collectors: "list[MetricsCollector]") -> "MetricsCollector":
        """Pool several replicas' collectors into one cluster-level view.

        Records keep their per-replica ``in_eval_window`` flags (the warm-up
        prefix is defined over cluster-global turn numbers when replicas
        share a turn counter) and their per-replica recording order —
        deliberately *not* re-sorted, so a one-replica merge sums floats in
        exactly the order a standalone engine would (bit-identical results).
        """
        streaming_flags = {c.streaming for c in collectors}
        if len(streaming_flags) > 1:
            n_streaming = sum(1 for c in collectors if c.streaming)
            raise ValueError(
                "cannot merge streaming and exact collectors: got "
                f"{n_streaming} streaming and "
                f"{len(collectors) - n_streaming} exact of {len(collectors)} "
                "(construct every replica with the same streaming_metrics "
                "flag before pooling)"
            )
        streaming = bool(collectors) and collectors[0].streaming
        merged = cls(warmup_turns=0, streaming=streaming)
        for collector in collectors:
            merged.records.extend(collector.records)
            if streaming:
                merged._n_eval += collector._n_eval
                for outcome, count in collector._outcome_counts.items():
                    merged._outcome_counts[outcome] += count
                merged._ttft_sum += collector._ttft_sum
                merged._queue_delay_sum += collector._queue_delay_sum
                merged._prompt_sum += collector._prompt_sum
                merged._new_sum += collector._new_sum
                merged._reused_sum += collector._reused_sum
                merged._shared_reused_sum += collector._shared_reused_sum
                merged._generated_sum += collector._generated_sum
                merged._prefill_gpu_sum += collector._prefill_gpu_sum
                merged._decode_gpu_sum += collector._decode_gpu_sum
                merged._save_block_sum += collector._save_block_sum
                merged._dropped_sum += collector._dropped_sum
                merged._ttft_hist.merge(collector._ttft_hist)
            merged._gpu_busy_total += collector._gpu_busy_total
            merged._max_decode_stall = max(
                merged._max_decode_stall, collector._max_decode_stall
            )
            merged._decode_stall_total += collector._decode_stall_total
            if collector._first_arrival is not None:
                if (
                    merged._first_arrival is None
                    or collector._first_arrival < merged._first_arrival
                ):
                    merged._first_arrival = collector._first_arrival
            merged._last_completion = max(
                merged._last_completion, collector._last_completion
            )
        return merged

    def record_decode_stall(self, seconds: float) -> None:
        """Time the decoding batch spent blocked behind a prefill slice."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self._max_decode_stall = max(self._max_decode_stall, seconds)
        self._decode_stall_total += seconds

    def summarise(self) -> RunSummary:
        """Aggregate over the evaluation window."""
        if self.streaming:
            return self._summarise_streaming()
        evals = [r for r in self.records if r.in_eval_window]
        n = len(evals)
        # Sums run in recording order (not sorted order) so the streaming
        # collector, which folds turns in as they arrive, produces the
        # same float totals bit-for-bit.
        ttfts = sorted(r.ttft for r in evals)
        outcome_counts = {outcome: 0 for outcome in TurnOutcome}
        for r in evals:
            outcome_counts[r.outcome] += 1
        n_lookups = sum(
            count
            for outcome, count in outcome_counts.items()
            if outcome is not TurnOutcome.FIRST_TURN
        )
        return RunSummary(
            n_turns=n,
            n_lookups=n_lookups,
            hits_dram=outcome_counts[TurnOutcome.HIT_DRAM],
            hits_disk=outcome_counts[TurnOutcome.HIT_DISK],
            hits_hbm=outcome_counts[TurnOutcome.HIT_HBM],
            hits_shared=outcome_counts[TurnOutcome.HIT_SHARED],
            misses=outcome_counts[TurnOutcome.MISS],
            fallbacks=outcome_counts[TurnOutcome.FALLBACK_RECOMPUTE],
            mean_ttft=sum(r.ttft for r in evals) / n if n else 0.0,
            p95_ttft=ttfts[min(n - 1, int(0.95 * n))] if n else 0.0,
            mean_queue_delay=(
                sum(r.queue_delay for r in evals) / n if n else 0.0
            ),
            prompt_tokens_total=sum(r.prompt_tokens for r in evals),
            new_tokens_total=sum(r.new_tokens for r in evals),
            reused_tokens_total=sum(r.reused_tokens for r in evals),
            shared_reused_tokens_total=sum(r.shared_hit_tokens for r in evals),
            generated_tokens_total=sum(r.generated_tokens for r in evals),
            prefill_gpu_time=sum(r.prefill_gpu_time for r in evals),
            decode_gpu_time=sum(r.decode_gpu_share for r in evals),
            save_block_time=sum(r.save_block_time for r in evals),
            overflow_dropped_tokens=sum(r.dropped_tokens for r in evals),
            max_decode_stall=self._max_decode_stall,
            decode_stall_time=self._decode_stall_total,
            total_gpu_busy_time=self._gpu_busy_total,
            makespan=(
                self._last_completion - self._first_arrival
                if self._first_arrival is not None
                else 0.0
            ),
        )

    def _summarise_streaming(self) -> RunSummary:
        n = self._n_eval
        counts = self._outcome_counts
        n_lookups = sum(
            count
            for outcome, count in counts.items()
            if outcome is not TurnOutcome.FIRST_TURN
        )
        return RunSummary(
            n_turns=n,
            n_lookups=n_lookups,
            hits_dram=counts[TurnOutcome.HIT_DRAM],
            hits_disk=counts[TurnOutcome.HIT_DISK],
            hits_hbm=counts[TurnOutcome.HIT_HBM],
            hits_shared=counts[TurnOutcome.HIT_SHARED],
            misses=counts[TurnOutcome.MISS],
            fallbacks=counts[TurnOutcome.FALLBACK_RECOMPUTE],
            mean_ttft=self._ttft_sum / n if n else 0.0,
            p95_ttft=self._ttft_hist.quantile(0.95),
            mean_queue_delay=self._queue_delay_sum / n if n else 0.0,
            prompt_tokens_total=self._prompt_sum,
            new_tokens_total=self._new_sum,
            reused_tokens_total=self._reused_sum,
            shared_reused_tokens_total=self._shared_reused_sum,
            generated_tokens_total=self._generated_sum,
            prefill_gpu_time=self._prefill_gpu_sum,
            decode_gpu_time=self._decode_gpu_sum,
            save_block_time=self._save_block_sum,
            overflow_dropped_tokens=self._dropped_sum,
            max_decode_stall=self._max_decode_stall,
            decode_stall_time=self._decode_stall_total,
            total_gpu_busy_time=self._gpu_busy_total,
            makespan=(
                self._last_completion - self._first_arrival
                if self._first_arrival is not None
                else 0.0
            ),
        )
