"""Preallocated continuation objects for the engine's turn lifecycle.

The original turn path scheduled a fresh closure per event — an
epoch-guard wrapper (``_after_epoch``'s ``fire``) around a capture
lambda for every decode chunk, prefill slice, save block and think-time
timer.  At replay scale that is two allocations and two call frames per
event, and the profiler collapsed 98 % of loop time into two anonymous
closure names (see DESIGN.md §13).

This module replaces the pattern with small ``__slots__`` callables:

* **Epoch-guarded continuations** (:class:`DecodeChunkDone`,
  :class:`PrefillSliceDone`, :class:`SaveBlockDone`, :class:`TtlSweep`)
  store the crash epoch they were scheduled under and no-op when the
  engine's epoch has moved — exactly the ``_after_epoch`` semantics,
  with the check inlined into ``__call__`` instead of a wrapper frame.
  The event still *fires* (a crash cannot unschedule it), so event
  counts stay bit-identical to the closure implementation.
* **Single-flight reuse**: the GPU serialises prefill slices, decode
  chunks and save blocks, so at most one instance of each continuation
  is pending at a time.  The engine preallocates one of each and
  mutates its fields at schedule time — zero per-event allocation.  A
  crash drops the preallocated set (:meth:`ServingEngine.crash` calls
  ``_init_continuations``): a stale instance may still sit in the event
  queue, and reusing it would alias the old scheduled event with the
  new work's fields, turning the epoch no-op into an early fire.
* **Per-session reuse**: :class:`NextTurnTimer` lives on the
  :class:`~repro.engine.session.SessionState` and is rescheduled for
  every think-time gap (one pending timer per session, and think timers
  deliberately survive crashes — clients keep typing into an outage).
* **Named one-shots** (:class:`SessionStart`, :class:`FetchDone`,
  :class:`TierLoss`, :class:`StreamArrival`): allocated where several
  can be in flight at once, still slotted and class-named so the
  event-loop profiler attributes cost to the operation instead of to
  ``<locals>.<lambda>``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..store.attention_store import AttentionStore
    from ..store.item import Tier
    from ..workload.trace import Conversation
    from .batching import ActiveJob
    from .engine import ServingEngine
    from .session import SessionState

#: Placeholder for not-yet-scheduled slots; never invoked (the engine
#: always assigns real fields before handing a continuation to the
#: simulator).
_UNSET = None


class SessionStart:
    """Arrival of one pre-scheduled conversation (materialised trace)."""

    __slots__ = ("engine", "conv")

    def __init__(self, engine: "ServingEngine", conv: "Conversation") -> None:
        self.engine = engine
        self.conv = conv

    def __call__(self) -> None:
        self.engine._start_session(self.conv)


class StreamArrival:
    """The single pending arrival of a streamed trace.

    Streaming replays keep exactly one arrival event in flight: when it
    fires, the engine starts the session and this same instance is
    rescheduled at the next conversation pulled from the generator —
    O(1) arrival state however long the stream is.
    """

    __slots__ = ("engine", "conv")

    def __init__(self, engine: "ServingEngine", conv: "Conversation") -> None:
        self.engine = engine
        self.conv = conv

    def __call__(self) -> None:
        self.engine._on_stream_arrival(self)


class NextTurnTimer:
    """A session's think-time timer; fires the next turn's submission.

    One instance per session, created at the first completion and
    rescheduled for every later turn (at most one is pending per
    session).  ``engine`` is refreshed at schedule time because a
    cluster may complete consecutive turns of one session on different
    replicas; the routing hook is read at fire time, matching the
    hook's installed-for-the-whole-run contract.  Deliberately *not*
    epoch-guarded: think timers survive replica crashes.
    """

    __slots__ = ("engine", "session")

    def __init__(self, engine: "ServingEngine", session: "SessionState") -> None:
        self.engine = engine
        self.session = session

    def __call__(self) -> None:
        engine = self.engine
        hook = engine.next_turn_hook
        if hook is not None:
            hook(engine, self.session)
        else:
            engine._submit_next_turn(self.session)


class PrefillSliceDone:
    """End of one (possibly chunked) prefill slice; epoch-guarded."""

    __slots__ = ("engine", "epoch", "job", "remaining_slices", "slice_duration")

    def __init__(self, engine: "ServingEngine") -> None:
        self.engine = engine
        self.epoch = engine._epoch
        self.job: "ActiveJob | None" = _UNSET
        self.remaining_slices = 0
        self.slice_duration = 0.0

    def __call__(self) -> None:
        engine = self.engine
        if engine._epoch == self.epoch:
            job = self.job
            assert job is not None
            engine._on_prefill_slice_done(
                job, self.remaining_slices, self.slice_duration
            )


class ResumePrefill:
    """Continuation of a paused chunked prefill after a piggybacked
    decode chunk.  Invoked synchronously by the (already epoch-guarded)
    decode-done/save-done handlers, so it carries no epoch itself."""

    __slots__ = ("engine", "job", "remaining_slices", "slice_duration")

    def __init__(self, engine: "ServingEngine") -> None:
        self.engine = engine
        self.job: "ActiveJob | None" = _UNSET
        self.remaining_slices = 0
        self.slice_duration = 0.0

    def __call__(self) -> None:
        job = self.job
        assert job is not None
        self.engine._continue_prefill(
            job, self.remaining_slices, self.slice_duration
        )


class DecodeChunkDone:
    """End of one decode chunk; epoch-guarded."""

    __slots__ = ("engine", "epoch", "n_iters", "duration", "batch_len", "resume")

    def __init__(self, engine: "ServingEngine") -> None:
        self.engine = engine
        self.epoch = engine._epoch
        self.n_iters = 0
        self.duration = 0.0
        self.batch_len = 0
        self.resume: ResumePrefill | None = _UNSET

    def __call__(self) -> None:
        engine = self.engine
        if engine._epoch == self.epoch:
            engine._on_decode_chunk_done(
                self.n_iters, self.duration, self.batch_len, self.resume
            )


class SaveBlockDone:
    """End of the residual KV write-back blocking window; epoch-guarded."""

    __slots__ = ("engine", "epoch", "resume")

    def __init__(self, engine: "ServingEngine") -> None:
        self.engine = engine
        self.epoch = engine._epoch
        self.resume: ResumePrefill | None = _UNSET

    def __call__(self) -> None:
        engine = self.engine
        if engine._epoch == self.epoch:
            engine._on_save_block_done(self.resume)


class TtlSweep:
    """Self-rescheduling TTL expiry sweep; epoch-guarded so a sweep
    armed before a crash does not race the one restart() re-arms."""

    __slots__ = ("engine", "epoch")

    def __init__(self, engine: "ServingEngine") -> None:
        self.engine = engine
        self.epoch = engine._epoch

    def __call__(self) -> None:
        engine = self.engine
        if engine._epoch == self.epoch:
            engine._ttl_sweep()


class FetchDone:
    """Completion of one scheduler-aware prefetch transfer.

    Allocated per prefetch (several can be in flight concurrently), but
    slotted and class-named for the profiler.
    """

    __slots__ = ("store", "session_id")

    def __init__(self, store: "AttentionStore", session_id: int) -> None:
        self.store = store
        self.session_id = session_id

    def __call__(self) -> None:
        self.store.complete_fetch(self.session_id)


class TierLoss:
    """A fault-injected storage-tier loss at an absolute time."""

    __slots__ = ("store", "tier")

    def __init__(self, store: "AttentionStore", tier: "Tier") -> None:
        self.store = store
        self.tier = tier

    def __call__(self) -> None:
        self.store.lose_tier(self.tier)
