"""Conversation session state tracked by the serving engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..workload.trace import Conversation

if TYPE_CHECKING:
    from .continuations import NextTurnTimer


@dataclass(slots=True)
class SessionState:
    """Mutable per-session serving state.

    ``history_tokens`` is the session context visible to the *next* turn —
    all question/answer tokens so far, minus anything removed by context-
    window truncation.  It equals the number of tokens whose KV cache the
    engine would reuse on a perfect cache hit.
    """

    conversation: Conversation
    next_turn: int = 0
    history_tokens: int = 0
    truncated_tokens_total: int = 0
    overflow_events: int = 0
    #: Content hash of the conversation's shared prefix, computed lazily
    #: by the engine on the first prefill of a prefix-bearing session.
    shared_hash: str | None = None
    #: True once the session has *diverged* from its shared prefix
    #: (context-window truncation rewrote the history): its KV no longer
    #: starts with the shared block, so sharing is off for good —
    #: histories only ever append, truncation is the only divergence
    #: point, and divergence is sticky.
    shared_detached: bool = False
    #: The session's reusable think-time timer (at most one is pending per
    #: session), created at the first turn completion and rescheduled for
    #: every later gap.  Excluded from comparison/repr: scheduling plumbing,
    #: not conversation state.
    timer: "NextTurnTimer | None" = field(default=None, compare=False, repr=False)

    @property
    def session_id(self) -> int:
        return self.conversation.session_id

    @property
    def finished(self) -> bool:
        return self.next_turn >= self.conversation.n_turns

    def record_turn_served(self, prompt_tokens: int, generated_tokens: int) -> None:
        """Advance past the current turn.

        Args:
            prompt_tokens: context length after prefill (history after any
                truncation plus the new question tokens).
            generated_tokens: response tokens actually decoded.
        """
        if self.finished:
            raise RuntimeError(
                f"session {self.session_id} has no turns left to serve"
            )
        self.history_tokens = prompt_tokens + generated_tokens
        self.next_turn += 1

    def record_truncation(self, dropped_tokens: int) -> None:
        if dropped_tokens < 0:
            raise ValueError(f"dropped_tokens must be >= 0, got {dropped_tokens}")
        if dropped_tokens:
            self.truncated_tokens_total += dropped_tokens
            self.overflow_events += 1
            self.history_tokens -= dropped_tokens
            if self.history_tokens < 0:
                raise RuntimeError("truncated more history than the session has")
