"""Overlapped KV cache access: the Section 3.2 timing models.

Two mechanisms hide KV transfer latency behind computation:

* **Layer-wise pre-loading** (Section 3.2.1, Figures 6-7): while the GPU
  computes transformer layer *i*, the read stream loads the KV cache of
  later layers.  An HBM *read buffer* of ``B`` layers lets the stream start
  during the previous job, so the first ``B`` layers' KV is already
  resident when computation begins.
* **Asynchronous saving** (Section 3.2.2, Figure 8): newly produced KV is
  written back layer by layer while decoding continues; an HBM *write
  buffer* absorbs the unfinished tail so the next job is not blocked.

Both models work on aggregate per-job times; the per-layer pipeline
recurrence reproduces the partial-overlap gaps of Figure 7 exactly.
"""

from __future__ import annotations

from ..sanitize import (
    check_overlap_envelope,
    check_save_blocking_envelope,
    runtime_checks_active,
)


def no_preload_prefill_time(compute_time: float, load_time: float) -> float:
    """Prefill duration when the KV cache is loaded up front (NO-PL):
    the full transfer strictly precedes computation."""
    _check_nonneg(compute_time, load_time)
    return load_time + compute_time


def layerwise_prefill_time(
    n_layers: int,
    compute_time: float,
    load_time: float,
    buffer_layers: int = 0,
) -> float:
    """Prefill duration with layer-wise pre-loading (PL-B<buffer_layers>).

    Args:
        n_layers: transformer layer count ``L``.
        compute_time: total prefill computation time of the new tokens.
        load_time: total KV-cache transfer time of the historical tokens.
        buffer_layers: read-buffer depth ``B`` — layers whose KV was
            pre-loaded before the job started (0 = no read buffer).

    Returns:
        The finish time of the last layer's computation.  Per layer,
        compute takes ``c = compute_time / L`` and the load stream delivers
        one layer's KV every ``d = load_time / L``; layer ``i`` computes at
        ``max(finish(i-1), load_finish(i)) + c`` where layers below ``B``
        are ready at time 0 and layer ``i >= B`` is ready at
        ``(i - B + 1) * d``.

    Unrolling the recurrence gives ``finish = max_i(ready(i) + (L-i)*c)``:
    the critical path enters the pipeline at exactly one layer ``i`` and
    computes straight through from there.  ``ready`` is piecewise linear in
    ``i``, so the maximum sits at a segment endpoint — ``i = 0`` (pure
    compute), ``i = B`` (first unbuffered layer) or ``i = L-1`` (the drain-
    limited tail) — and the whole pipeline solves in O(1).
    """
    if n_layers <= 0:
        raise ValueError(f"n_layers must be positive, got {n_layers}")
    if buffer_layers < 0:
        raise ValueError(f"buffer_layers must be >= 0, got {buffer_layers}")
    _check_nonneg(compute_time, load_time)
    c = compute_time / n_layers
    d = load_time / n_layers
    b = min(buffer_layers, n_layers)
    if b >= n_layers:
        # Every layer's KV is pre-buffered: pure compute.
        return n_layers * c
    # Critical path entering at the first unbuffered layer vs. at the last
    # layer; the max over the linear segment is attained at one of the two.
    head = d + (n_layers - b) * c
    tail = (n_layers - b) * d + c
    finish = max(head, tail)
    if b > 0:
        # With a buffer, the path may also enter at layer 0 (ready at 0).
        finish = max(finish, n_layers * c)
    if runtime_checks_active():
        # §3.2.1 envelope: overlap never beats pure compute, never loses
        # to fully serialising the transfer.
        check_overlap_envelope(finish, compute_time, load_time)
    return finish


def layerwise_prefill_time_reference(
    n_layers: int,
    compute_time: float,
    load_time: float,
    buffer_layers: int = 0,
) -> float:
    """Reference O(L) recurrence for :func:`layerwise_prefill_time`.

    Evaluates the per-layer pipeline literally (Figures 6-7).  Kept as the
    oracle for the property test pinning the closed form; the serving hot
    path uses the O(1) solution above.
    """
    if n_layers <= 0:
        raise ValueError(f"n_layers must be positive, got {n_layers}")
    if buffer_layers < 0:
        raise ValueError(f"buffer_layers must be >= 0, got {buffer_layers}")
    _check_nonneg(compute_time, load_time)
    c = compute_time / n_layers
    d = load_time / n_layers
    b = min(buffer_layers, n_layers)
    finish = 0.0
    for layer in range(n_layers):
        ready = 0.0 if layer < b else (layer - b + 1) * d
        finish = max(finish, ready) + c
    return finish


def preload_speedup(
    n_layers: int, compute_time: float, load_time: float, buffer_layers: int
) -> float:
    """Fractional prefill-time reduction of PL-B<buffer> over NO-PL."""
    base = no_preload_prefill_time(compute_time, load_time)
    if base <= 0.0:
        return 0.0
    return 1.0 - layerwise_prefill_time(
        n_layers, compute_time, load_time, buffer_layers
    ) / base


def perfect_overlap_buffer_layers(
    n_layers: int, compute_time: float, load_time: float
) -> int:
    """Smallest read-buffer depth achieving (near-)perfect overlap.

    Perfect overlap means the prefill finishes at
    ``max(compute_time, residual stream time) ~= compute_time`` — i.e. no
    inter-layer gap remains.  Derived from the pipeline recurrence: gaps
    vanish once ``B >= L * (1 - c/d)`` when ``d > c``.
    """
    if n_layers <= 0:
        raise ValueError(f"n_layers must be positive, got {n_layers}")
    _check_nonneg(compute_time, load_time)
    if load_time <= compute_time:
        return 0
    c = compute_time / n_layers
    d = load_time / n_layers
    needed = n_layers * (1.0 - c / d)
    return min(n_layers, max(0, int(needed) + 1))


def async_save_blocking_time(
    save_time: float,
    overlap_window: float,
    n_layers: int,
    write_buffer_layers: int = 0,
) -> float:
    """GPU blocking caused by saving a job's KV cache, with async writes.

    Args:
        save_time: time to write the job's full KV cache to host memory.
        overlap_window: computation time the write stream can hide behind —
            for the prefill-phase KV this is the decoding phase, and for
            decode-phase KV the remaining decode iterations (Section 3.2.2).
        n_layers: transformer layer count.
        write_buffer_layers: HBM write-buffer depth; unfinished KV of up to
            this many layers is parked in the buffer instead of blocking
            the next job.

    Returns:
        Residual blocking time on the critical path (0 when the write is
        fully hidden).
    """
    if n_layers <= 0:
        raise ValueError(f"n_layers must be positive, got {n_layers}")
    if write_buffer_layers < 0:
        raise ValueError(
            f"write_buffer_layers must be >= 0, got {write_buffer_layers}"
        )
    _check_nonneg(save_time, overlap_window)
    buffered = min(write_buffer_layers, n_layers) / n_layers * save_time
    blocking = max(0.0, save_time - overlap_window - buffered)
    if runtime_checks_active():
        # §3.2.2 envelope: the write buffer can only hide time, so the
        # residual blocking stays within [0, save_time].
        check_save_blocking_envelope(blocking, save_time)
    return blocking


def sync_save_blocking_time(save_time: float) -> float:
    """GPU blocking with the baseline write-after-finish scheme: the full
    save sits on the critical path (Figure 8a)."""
    _check_nonneg(save_time)
    return save_time


def overlap_exposure(
    compute_time: float, load_time: float, overlapped_duration: float
) -> tuple[float, float]:
    """Split a KV load into its (hidden, exposed) parts.

    Given a prefill whose pure compute takes ``compute_time``, whose KV
    preload takes ``load_time``, and whose overlapped wall time came out
    as ``overlapped_duration`` (from :func:`layerwise_prefill_time` or
    :func:`no_preload_prefill_time`), the load time the turn actually
    *paid* is ``overlapped_duration - compute_time``; the rest was hidden
    behind computation.  Observation helper for trace annotation — it
    derives from already-computed durations and feeds nothing back.

    Returns:
        ``(hidden, exposed)`` with ``hidden + exposed == load_time`` up to
        clamping at 0 for degenerate inputs.
    """
    _check_nonneg(compute_time, load_time, overlapped_duration)
    exposed = max(0.0, overlapped_duration - compute_time)
    hidden = max(0.0, load_time - exposed)
    return hidden, exposed


def _check_nonneg(*values: float) -> None:
    for value in values:
        if value < 0:
            raise ValueError(f"times must be non-negative, got {value}")
