"""Rotary positional embedding (RoPE), the relative PE of Section 3.4.

RoPE rotates each (even, odd) feature pair of the query/key vectors by an
angle proportional to the token's position, so attention scores depend only
on *relative* distance.  Because it is applied to Q/K rather than added to
the input embeddings (Figure 11b), the KV cache can be stored *before*
rotation (Figure 11c) — the mechanism CachedAttention relies on to keep
truncated caches valid.
"""

from __future__ import annotations

import numpy as np


def rope_angles(
    positions: np.ndarray, head_dim: int, base: float = 10000.0
) -> tuple[np.ndarray, np.ndarray]:
    """Cos/sin tables for the given positions.

    Args:
        positions: integer positions, shape (S,).
        head_dim: per-head dimension (must be even).

    Returns:
        (cos, sin), each of shape (S, head_dim // 2).
    """
    if head_dim % 2 != 0:
        raise ValueError(f"head_dim must be even, got {head_dim}")
    inv_freq = base ** (-np.arange(0, head_dim, 2, dtype=np.float64) / head_dim)
    theta = np.asarray(positions, dtype=np.float64)[:, None] * inv_freq[None, :]
    return np.cos(theta), np.sin(theta)


def apply_rope(
    x: np.ndarray, positions: np.ndarray, base: float = 10000.0
) -> np.ndarray:
    """Rotate Q/K features by their positions.

    Args:
        x: (..., S, head_dim) queries or keys; the second-to-last axis is
            the sequence axis the positions refer to.
        positions: (S,) integer positions.

    Returns:
        The rotated array, same shape and dtype as ``x``.
    """
    head_dim = x.shape[-1]
    cos, sin = rope_angles(positions, head_dim, base)
    cos = cos.astype(x.dtype)
    sin = sin.astype(x.dtype)
    x1 = x[..., 0::2]
    x2 = x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = x1 * cos - x2 * sin
    out[..., 1::2] = x1 * sin + x2 * cos
    return out


def unapply_rope(
    x: np.ndarray, positions: np.ndarray, base: float = 10000.0
) -> np.ndarray:
    """Inverse rotation (rotation by ``-positions``).

    Used both to *decouple* positions from an embedded-PE cache (only
    possible when the original positions are known) and as the exact
    gradient of :func:`apply_rope` (a rotation's Jacobian is its
    transpose, i.e. the inverse rotation).
    """
    head_dim = x.shape[-1]
    cos, sin = rope_angles(positions, head_dim, base)
    cos = cos.astype(x.dtype)
    sin = sin.astype(x.dtype)
    x1 = x[..., 0::2]
    x2 = x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = x1 * cos + x2 * sin
    out[..., 1::2] = -x1 * sin + x2 * cos
    return out
