"""KV-cache compression via token discarding lists (TDLs).

Section 3.4 of the paper: "CachedAttention also allows for selective
preservation of certain KV cache for compression, e.g., the initial tokens
with important scores or important tokens ... a given KV cache compression
technique essentially provides a methodology for creating a token
discarding list (TDL) ... CachedAttention straightforwardly complies with
the TDL, discarding the KV cache associated with the TDL."

This module makes that hook concrete on the NumPy transformer:

* :func:`attention_importance` — H2O-style accumulated-attention scores
  (how much attention mass each position has received);
* :func:`make_tdl` — turn scores into a discard list, protecting the
  initial *attention sink* tokens (StreamingLLM) and the most recent ones;
* :func:`KVCache`-level application via :func:`compress_cache` — possible
  only for decoupled-PE caches, since surviving tokens are re-numbered;
* :func:`evaluate_compression` — perplexity of continuations after
  compressing the prompt cache with different strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from .functional import softmax, token_nll
from .kvcache import KVCache, PEMode
from .rope import apply_rope
from .transformer import TinyTransformer


class CompressionStrategy(str, Enum):
    """How the discard list is chosen."""

    TDL_ATTENTION = "tdl-attention"  # drop lowest accumulated attention
    RECENT_ONLY = "recent-only"  # drop oldest (plain truncation)
    RANDOM = "random"  # drop uniformly at random


def attention_importance(model: TinyTransformer, tokens: np.ndarray) -> np.ndarray:
    """Accumulated-attention importance score per position.

    Runs a full forward pass and sums, over all layers, heads and query
    positions, the attention probability each key position receives —
    the heavy-hitter statistic of H2O / Scissorhands.

    Args:
        model: a (trained) transformer.
        tokens: (S,) token ids.

    Returns:
        (S,) non-negative scores, higher = more attended.
    """
    tokens = np.asarray(tokens)
    if tokens.ndim != 1 or tokens.shape[0] < 1:
        raise ValueError("need a 1-D token sequence")
    c = model.config
    p = model.params
    s = tokens.shape[0]
    positions = np.arange(s)
    mask = np.triu(np.full((s, s), -np.inf, dtype=model.dtype), k=1)
    from .functional import gelu, rmsnorm  # local to avoid cycles at import

    scores_sum = np.zeros(s, dtype=np.float64)
    x = p["emb"][tokens]
    for i in range(c.n_layers):
        a, _ = rmsnorm(x, p[f"l{i}.ln1"])
        q = (a @ p[f"l{i}.wq"]).reshape(s, c.n_heads, c.head_dim).transpose(1, 0, 2)
        k = (a @ p[f"l{i}.wk"]).reshape(s, c.n_heads, c.head_dim).transpose(1, 0, 2)
        v = (a @ p[f"l{i}.wv"]).reshape(s, c.n_heads, c.head_dim).transpose(1, 0, 2)
        qr = apply_rope(q, positions, c.rope_base)
        kr = apply_rope(k, positions, c.rope_base)
        att = softmax(qr @ kr.transpose(0, 2, 1) / np.sqrt(c.head_dim) + mask)
        scores_sum += att.sum(axis=(0, 1))  # mass received per key position
        merged = (att @ v).transpose(1, 0, 2).reshape(s, c.d_model)
        x = x + merged @ p[f"l{i}.wo"]
        h, _ = rmsnorm(x, p[f"l{i}.ln2"])
        act, _ = gelu(h @ p[f"l{i}.w1"])
        x = x + act @ p[f"l{i}.w2"]
    return scores_sum


def make_tdl(
    importance: np.ndarray,
    n_discard: int,
    protect_initial: int = 4,
    protect_recent: int = 8,
) -> np.ndarray:
    """Build a token discarding list from importance scores.

    The lowest-scoring positions are discarded, never touching the first
    ``protect_initial`` tokens (attention sinks) or the last
    ``protect_recent`` tokens (local context).

    Returns:
        Sorted indices of the positions to discard.
    """
    importance = np.asarray(importance, dtype=np.float64)
    s = importance.shape[0]
    if n_discard < 0:
        raise ValueError(f"n_discard must be >= 0, got {n_discard}")
    droppable = np.arange(s)[protect_initial : s - protect_recent if protect_recent else s]
    if n_discard > droppable.shape[0]:
        raise ValueError(
            f"cannot discard {n_discard} of {droppable.shape[0]} droppable tokens"
        )
    if n_discard == 0:
        return np.array([], dtype=np.int64)
    order = droppable[np.argsort(importance[droppable], kind="stable")]
    return np.sort(order[:n_discard])


def select_cache(cache: KVCache, keep_indices: np.ndarray) -> KVCache:
    """Build a new cache containing only ``keep_indices`` (in order).

    Only valid for decoupled-PE caches: survivors are re-numbered
    0..k-1, exactly the operation AttentionStore performs when applying a
    TDL (Section 3.4).
    """
    if cache.mode is not PEMode.DECOUPLED:
        raise ValueError(
            "TDL compression requires a decoupled-PE cache; embedded "
            "positions cannot be re-numbered"
        )
    keep_indices = np.asarray(keep_indices, dtype=np.int64)
    if keep_indices.size and (
        keep_indices.min() < 0 or keep_indices.max() >= len(cache)
    ):
        raise IndexError("keep index out of range")
    first = cache.layers[0]
    out = KVCache(
        cache.n_layers, first.n_heads, first.head_dim, PEMode.DECOUPLED,
        dtype=first.dtype,
    )
    new_positions = np.arange(keep_indices.shape[0])
    for src, dst in zip(cache.layers, out.layers):
        dst.append(
            src.k[:, keep_indices, :], src.v[:, keep_indices, :], new_positions
        )
    return out


def compress_cache(
    model: TinyTransformer,
    tokens: np.ndarray,
    cache: KVCache,
    keep_ratio: float,
    strategy: CompressionStrategy,
    rng: np.random.Generator | None = None,
) -> KVCache:
    """Compress ``cache`` (built from ``tokens``) down to ``keep_ratio``."""
    if not (0.0 < keep_ratio <= 1.0):
        raise ValueError(f"keep_ratio must be in (0, 1], got {keep_ratio}")
    s = len(cache)
    n_keep = max(1, int(round(s * keep_ratio)))
    n_discard = s - n_keep
    if n_discard == 0:
        return cache
    if strategy is CompressionStrategy.TDL_ATTENTION:
        importance = attention_importance(model, tokens[:s])
        protect_recent = min(8, n_keep)
        protect_initial = min(4, max(0, n_keep - protect_recent))
        tdl = make_tdl(
            importance, n_discard,
            protect_initial=protect_initial,
            protect_recent=protect_recent,
        )
    elif strategy is CompressionStrategy.RECENT_ONLY:
        tdl = np.arange(n_discard)
    elif strategy is CompressionStrategy.RANDOM:
        rng = rng or np.random.default_rng(0)
        tdl = np.sort(rng.choice(s, size=n_discard, replace=False))
    else:
        raise ValueError(f"unknown strategy {strategy}")
    keep = np.setdiff1d(np.arange(s), tdl)
    return select_cache(cache, keep)


@dataclass(frozen=True)
class CompressionResult:
    """Continuation quality after compressing the prompt cache."""

    strategy: CompressionStrategy
    keep_ratio: float
    nll_sum: float
    n_predicted: int

    @property
    def perplexity(self) -> float:
        if self.n_predicted == 0:
            return 0.0
        return float(np.exp(self.nll_sum / self.n_predicted))


def evaluate_compression(
    model: TinyTransformer,
    documents: list[np.ndarray],
    keep_ratio: float,
    strategy: CompressionStrategy,
    prompt_fraction: float = 0.6,
    seed: int = 0,
) -> CompressionResult:
    """PPL of document continuations given a compressed prompt cache.

    Each document is split into a prompt and a continuation; the prompt's
    KV cache is compressed with ``strategy`` and the continuation is scored
    against it.
    """
    if not documents:
        raise ValueError("no documents")
    if not (0.0 < prompt_fraction < 1.0):
        raise ValueError(
            f"prompt_fraction must be in (0, 1), got {prompt_fraction}"
        )
    rng = np.random.default_rng(seed)
    nll_sum = 0.0
    n_pred = 0
    for doc in documents:
        doc = np.asarray(doc)
        split = max(1, int(doc.shape[0] * prompt_fraction))
        prompt, continuation = doc[:split], doc[split:]
        if continuation.shape[0] < 2:
            continue
        cache = model.new_cache(PEMode.DECOUPLED)
        model.forward_with_cache(prompt, cache)
        cache = compress_cache(model, prompt, cache, keep_ratio, strategy, rng)
        logits = model.forward_with_cache(continuation[:-1], cache)
        nll = token_nll(logits, continuation[1:])
        nll_sum += float(nll.sum())
        n_pred += nll.shape[0]
    return CompressionResult(
        strategy=strategy,
        keep_ratio=keep_ratio,
        nll_sum=nll_sum,
        n_predicted=n_pred,
    )
