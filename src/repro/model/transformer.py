"""A small-but-real autoregressive RoPE transformer in NumPy.

This is the substrate for the paper's Tables 1-2: the quality experiments
need an actual trained language model whose KV cache can be stored with
positional encodings either decoupled (CachedAttention) or embedded (the
conventional engine), truncated, and re-used.

The architecture is a standard pre-RMSNorm decoder: embeddings, ``n_layers``
blocks of causal multi-head attention (RoPE on Q/K) + GELU MLP, a final
RMSNorm and an untied output projection.  Training uses hand-written
backward passes (verified against finite differences in the test suite);
inference supports incremental decoding against a :class:`KVCache` in
either PE mode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from .functional import (
    cross_entropy,
    gelu,
    gelu_backward,
    rmsnorm,
    rmsnorm_backward,
    softmax,
    softmax_backward,
    token_nll,
)
from .kvcache import KVCache, PEMode
from .rope import apply_rope, unapply_rope


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of the tiny transformer."""

    vocab_size: int = 64
    d_model: int = 64
    n_layers: int = 2
    n_heads: int = 4
    d_ff: int = 256
    context_window: int = 96
    rope_base: float = 10000.0
    init_scale: float = 0.02

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads != 0:
            raise ValueError(
                f"d_model ({self.d_model}) must divide by n_heads ({self.n_heads})"
            )
        if (self.d_model // self.n_heads) % 2 != 0:
            raise ValueError("head_dim must be even for RoPE")
        if self.context_window <= 1:
            raise ValueError(
                f"context_window must exceed 1, got {self.context_window}"
            )

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads


class TinyTransformer:
    """Decoder-only transformer with manual forward/backward."""

    def __init__(
        self,
        config: ModelConfig,
        seed: int = 0,
        dtype: npt.DTypeLike = np.float32,
    ) -> None:
        self.config = config
        self.dtype = dtype
        rng = np.random.default_rng(seed)
        c = config
        s = c.init_scale

        def w(*shape: int) -> np.ndarray:
            return (rng.standard_normal(shape) * s).astype(dtype)

        self.params: dict[str, np.ndarray] = {"emb": w(c.vocab_size, c.d_model)}
        for i in range(c.n_layers):
            self.params[f"l{i}.ln1"] = np.ones(c.d_model, dtype=dtype)
            self.params[f"l{i}.wq"] = w(c.d_model, c.d_model)
            self.params[f"l{i}.wk"] = w(c.d_model, c.d_model)
            self.params[f"l{i}.wv"] = w(c.d_model, c.d_model)
            self.params[f"l{i}.wo"] = w(c.d_model, c.d_model)
            self.params[f"l{i}.ln2"] = np.ones(c.d_model, dtype=dtype)
            self.params[f"l{i}.w1"] = w(c.d_model, c.d_ff)
            self.params[f"l{i}.w2"] = w(c.d_ff, c.d_model)
        self.params["lnf"] = np.ones(c.d_model, dtype=dtype)
        self.params["wout"] = w(c.d_model, c.vocab_size)

    @property
    def n_params(self) -> int:
        return sum(p.size for p in self.params.values())

    # ------------------------------------------------------------------
    # Training path (full sequences, no cache)
    # ------------------------------------------------------------------
    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        """(B, S, d) -> (B, h, S, hd)."""
        b, s, _ = x.shape
        c = self.config
        return x.reshape(b, s, c.n_heads, c.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        """(B, h, S, hd) -> (B, S, d)."""
        b, h, s, hd = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, s, h * hd)

    def forward(self, tokens: np.ndarray) -> tuple[np.ndarray, list]:
        """Full-sequence forward.

        Args:
            tokens: (B, S) integer token ids.

        Returns:
            (logits (B, S, vocab), caches for :meth:`backward`).
        """
        c = self.config
        p = self.params
        b, s = tokens.shape
        positions = np.arange(s)
        mask = np.triu(np.full((s, s), -np.inf, dtype=self.dtype), k=1)

        x = p["emb"][tokens]
        caches: list = [tokens]
        for i in range(c.n_layers):
            a, ln1c = rmsnorm(x, p[f"l{i}.ln1"])
            q = self._split_heads(a @ p[f"l{i}.wq"])
            k = self._split_heads(a @ p[f"l{i}.wk"])
            v = self._split_heads(a @ p[f"l{i}.wv"])
            qr = apply_rope(q, positions, c.rope_base)
            kr = apply_rope(k, positions, c.rope_base)
            scores = qr @ kr.transpose(0, 1, 3, 2) / np.sqrt(c.head_dim) + mask
            probs = softmax(scores)
            attn = probs @ v
            merged = self._merge_heads(attn)
            att_out = merged @ p[f"l{i}.wo"]
            x_att = x + att_out
            h, ln2c = rmsnorm(x_att, p[f"l{i}.ln2"])
            pre = h @ p[f"l{i}.w1"]
            act, gc = gelu(pre)
            ffn = act @ p[f"l{i}.w2"]
            x = x_att + ffn
            caches.append(
                (a, ln1c, qr, kr, v, probs, merged, x_att, h, ln2c, act, gc)
            )
        xf, lnfc = rmsnorm(x, p["lnf"])
        logits = xf @ p["wout"]
        caches.append((xf, lnfc, positions))
        return logits, caches

    def loss_and_grads(
        self, tokens: np.ndarray, targets: np.ndarray
    ) -> tuple[float, dict[str, np.ndarray]]:
        """Mean cross-entropy and parameter gradients for one batch."""
        c = self.config
        p = self.params
        logits, caches = self.forward(tokens)
        loss, dlogits = cross_entropy(logits, targets)

        grads = {name: np.zeros_like(arr) for name, arr in p.items()}
        xf, lnfc, positions = caches[-1]
        grads["wout"] = xf.reshape(-1, c.d_model).T @ dlogits.reshape(
            -1, c.vocab_size
        )
        dxf = dlogits @ p["wout"].T
        dx, grads["lnf"] = rmsnorm_backward(dxf, lnfc)

        inv_sqrt = 1.0 / np.sqrt(c.head_dim)
        for i in reversed(range(c.n_layers)):
            a, ln1c, qr, kr, v, probs, merged, x_att, h, ln2c, act, gc = caches[
                i + 1
            ]
            # FFN backward: x = x_att + act @ w2, act = gelu(h @ w1)
            dffn = dx
            grads[f"l{i}.w2"] = act.reshape(-1, c.d_ff).T @ dffn.reshape(
                -1, c.d_model
            )
            dact = dffn @ p[f"l{i}.w2"].T
            dpre = gelu_backward(dact, gc)
            grads[f"l{i}.w1"] = h.reshape(-1, c.d_model).T @ dpre.reshape(
                -1, c.d_ff
            )
            dh = dpre @ p[f"l{i}.w1"].T
            dx_att, grads[f"l{i}.ln2"] = rmsnorm_backward(dh, ln2c)
            dx_att = dx_att + dx  # residual

            # Attention backward: x_att = x + merged @ wo
            datt_out = dx_att
            grads[f"l{i}.wo"] = merged.reshape(-1, c.d_model).T @ datt_out.reshape(
                -1, c.d_model
            )
            dmerged = datt_out @ p[f"l{i}.wo"].T
            dattn = self._split_heads(dmerged)
            dprobs = dattn @ v.transpose(0, 1, 3, 2)
            dv = probs.transpose(0, 1, 3, 2) @ dattn
            dscores = softmax_backward(dprobs, probs)
            dqr = dscores @ kr * inv_sqrt
            dkr = dscores.transpose(0, 1, 3, 2) @ qr * inv_sqrt
            dq = unapply_rope(dqr, positions, c.rope_base)
            dk = unapply_rope(dkr, positions, c.rope_base)

            da = np.zeros_like(a)
            for w_name, dproj in ((f"l{i}.wq", dq), (f"l{i}.wk", dk), (f"l{i}.wv", dv)):
                dflat = self._merge_heads(dproj)
                grads[w_name] = a.reshape(-1, c.d_model).T @ dflat.reshape(
                    -1, c.d_model
                )
                da += dflat @ p[w_name].T
            dx_pre, grads[f"l{i}.ln1"] = rmsnorm_backward(da, ln1c)
            dx = dx_pre + dx_att  # residual into the block input

        tokens_in = caches[0]
        np.add.at(grads["emb"], tokens_in.reshape(-1), dx.reshape(-1, c.d_model))
        return loss, grads

    # ------------------------------------------------------------------
    # Inference path (incremental, KV cache)
    # ------------------------------------------------------------------
    def new_cache(self, mode: PEMode = PEMode.DECOUPLED) -> KVCache:
        c = self.config
        return KVCache(c.n_layers, c.n_heads, c.head_dim, mode, dtype=self.dtype)

    def forward_with_cache(self, tokens: np.ndarray, cache: KVCache) -> np.ndarray:
        """Process a block of tokens against (and extending) a KV cache.

        Args:
            tokens: (S_new,) token ids to append.
            cache: the sequence's cache; its PE mode decides whether keys
                are stored pre- or post-rotation.

        Returns:
            logits (S_new, vocab) for the appended tokens.

        Position semantics: new queries take positions ``len(cache)..``.
        For a DECOUPLED cache all keys are rotated at their *current*
        indices 0..len-1 each call, so truncation renumbers cleanly.  For
        an EMBEDDED cache keys keep the rotation they were stored with —
        after truncation those absolute positions no longer line up with
        the restarted query positions, reproducing NKVT.
        """
        c = self.config
        p = self.params
        tokens = np.asarray(tokens)
        if tokens.ndim != 1:
            raise ValueError(f"expected a 1-D token block, got shape {tokens.shape}")
        s_new = tokens.shape[0]
        offset = len(cache)
        new_positions = np.arange(offset, offset + s_new)
        mask = np.triu(np.full((s_new, s_new), -np.inf, dtype=self.dtype), k=1)

        x = p["emb"][tokens]
        for i in range(c.n_layers):
            layer_cache = cache.layers[i]
            a, _ = rmsnorm(x, p[f"l{i}.ln1"])
            q = (a @ p[f"l{i}.wq"]).reshape(s_new, c.n_heads, c.head_dim)
            k = (a @ p[f"l{i}.wk"]).reshape(s_new, c.n_heads, c.head_dim)
            v = (a @ p[f"l{i}.wv"]).reshape(s_new, c.n_heads, c.head_dim)
            q = q.transpose(1, 0, 2)  # (h, S_new, hd)
            k = k.transpose(1, 0, 2)
            v = v.transpose(1, 0, 2)

            qr = apply_rope(q, new_positions, c.rope_base)
            if cache.mode is PEMode.DECOUPLED:
                layer_cache.append(k, v, new_positions)
                all_positions = np.arange(len(layer_cache))
                keys = apply_rope(layer_cache.k, all_positions, c.rope_base)
            else:
                kr_new = apply_rope(k, new_positions, c.rope_base)
                layer_cache.append(kr_new, v, new_positions)
                keys = layer_cache.k
            values = layer_cache.v

            scores = qr @ keys.transpose(0, 2, 1) / np.sqrt(c.head_dim)
            # Causal structure: new token t may attend to every cached
            # token plus new tokens up to t.
            scores[:, :, offset:] += mask
            probs = softmax(scores)
            attn = probs @ values  # (h, S_new, hd)
            merged = attn.transpose(1, 0, 2).reshape(s_new, c.d_model)
            x = x + merged @ p[f"l{i}.wo"]

            h, _ = rmsnorm(x, p[f"l{i}.ln2"])
            act, _ = gelu(h @ p[f"l{i}.w1"])
            x = x + act @ p[f"l{i}.w2"]

        xf, _ = rmsnorm(x, p["lnf"])
        return xf @ p["wout"]

    # ------------------------------------------------------------------
    # Convenience evaluation helpers
    # ------------------------------------------------------------------
    def sequence_nll(self, tokens: np.ndarray) -> np.ndarray:
        """Per-token NLL of a single sequence (teacher forcing, no cache)."""
        tokens = np.asarray(tokens)
        logits, _ = self.forward(tokens[None, :-1])
        return token_nll(logits[0], tokens[1:])

    def state_dict(self) -> dict[str, np.ndarray]:
        return {k: v.copy() for k, v in self.params.items()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for name, arr in state.items():
            if name not in self.params:
                raise KeyError(f"unknown parameter {name!r}")
            if self.params[name].shape != arr.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{self.params[name].shape} vs {arr.shape}"
                )
            self.params[name] = arr.astype(self.dtype)
