"""CachedAttention on the real NumPy transformer: multi-turn chat serving.

The serving simulator (`repro.engine`) models CachedAttention's *costs*;
this module executes its *mechanism* on actual computation: a
:class:`TinyChatServer` keeps every inactive session's KV cache (stored
with decoupled positional encodings) and, when the session's next turn
arrives, reuses it — prefilling only the new tokens.  Context-window
overflow is handled by truncating the stored cache directly, which is
valid precisely because the positions are decoupled (Section 3.4).

It is deliberately minimal — one model, in-process "storage" — but every
token produced is real model output, so equality between cached and
recomputed serving can be asserted bit-for-bit (see
``tests/model/test_serving.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .kvcache import KVCache, PEMode
from .transformer import TinyTransformer


@dataclass
class SessionRecord:
    """Stored state of one inactive conversation session."""

    cache: KVCache
    history_tokens: list[int] = field(default_factory=list)
    turns_served: int = 0


@dataclass(frozen=True)
class TurnResult:
    """Outcome of serving one turn."""

    session_id: int
    reply: np.ndarray
    prefilled_tokens: int  # tokens actually computed this turn
    reused_tokens: int  # tokens served from the stored cache
    truncated_tokens: int  # tokens dropped by window overflow


class TinyChatServer:
    """Multi-turn serving with KV-cache reuse on a real model.

    Args:
        model: a (usually trained) :class:`TinyTransformer`.
        context_window: maximum cache length; ``None`` uses the model's.
        truncation_ratio: fraction of the window dropped per overflow
            (paper default 0.5).
        cached: True = CachedAttention (reuse stored caches); False = the
            RE baseline (recompute the full history each turn).  Both
            produce identical tokens — that equality is the paper's
            correctness claim for decoupled-PE reuse.
    """

    def __init__(
        self,
        model: TinyTransformer,
        context_window: int | None = None,
        truncation_ratio: float = 0.5,
        cached: bool = True,
    ) -> None:
        if not (0.0 < truncation_ratio < 1.0):
            raise ValueError(
                f"truncation_ratio must be in (0, 1), got {truncation_ratio}"
            )
        self.model = model
        self.window = context_window or model.config.context_window
        self.truncation_ratio = truncation_ratio
        self.cached = cached
        self.sessions: dict[int, SessionRecord] = {}
        self.prefilled_tokens_total = 0

    # ------------------------------------------------------------------
    def serve_turn(
        self,
        session_id: int,
        prompt_tokens: np.ndarray,
        max_new_tokens: int = 32,
        stop_token: int | None = None,
    ) -> TurnResult:
        """Serve one conversation turn and store the session's cache.

        Greedy decoding; generation stops at ``stop_token`` (if given) or
        after ``max_new_tokens``.
        """
        prompt_tokens = np.asarray(prompt_tokens, dtype=np.int64)
        if prompt_tokens.ndim != 1 or prompt_tokens.shape[0] == 0:
            raise ValueError("prompt_tokens must be a non-empty 1-D array")
        if max_new_tokens <= 0:
            raise ValueError(
                f"max_new_tokens must be positive, got {max_new_tokens}"
            )

        record = self.sessions.get(session_id)
        if record is None:
            record = SessionRecord(cache=self.model.new_cache(PEMode.DECOUPLED))
            self.sessions[session_id] = record

        truncated = self._handle_overflow(record, prompt_tokens.shape[0])

        if self.cached:
            cache = record.cache
            reused = len(cache)
            to_prefill = list(prompt_tokens)
        else:
            # RE baseline: rebuild from the (token) history every turn.
            cache = self.model.new_cache(PEMode.DECOUPLED)
            reused = 0
            to_prefill = record.history_tokens + list(prompt_tokens)

        logits = self.model.forward_with_cache(np.array(to_prefill), cache)
        prefilled = len(to_prefill)

        reply: list[int] = []
        next_token = int(logits[-1].argmax())
        for _ in range(max_new_tokens):
            if stop_token is not None and next_token == stop_token:
                break
            reply.append(next_token)
            if len(cache) >= self.window:
                break  # no room to extend the context this turn
            step_logits = self.model.forward_with_cache(
                np.array([next_token]), cache
            )
            next_token = int(step_logits[-1].argmax())

        record.cache = cache
        record.history_tokens.extend(int(t) for t in prompt_tokens)
        record.history_tokens.extend(reply)
        record.turns_served += 1
        self.prefilled_tokens_total += prefilled

        return TurnResult(
            session_id=session_id,
            reply=np.array(reply, dtype=np.int64),
            prefilled_tokens=prefilled,
            reused_tokens=reused,
            truncated_tokens=truncated,
        )

    # ------------------------------------------------------------------
    def _handle_overflow(self, record: SessionRecord, incoming: int) -> int:
        """Truncate the stored cache/history so the prompt fits the window."""
        dropped_total = 0
        cut = max(1, int(self.window * self.truncation_ratio))
        while record.history_tokens and (
            len(record.history_tokens) + incoming > self.window
        ):
            dropped = min(cut, len(record.history_tokens))
            record.history_tokens = record.history_tokens[dropped:]
            # Decoupled-PE KV truncation: drop the oldest cache entries and
            # keep serving — no recomputation (Section 3.4).
            record.cache.truncate(len(record.history_tokens))
            dropped_total += dropped
        return dropped_total

    def end_session(self, session_id: int) -> None:
        """Discard a session's stored state."""
        self.sessions.pop(session_id, None)

    @property
    def stored_cache_tokens(self) -> int:
        """Total KV-cache entries currently stored across sessions."""
        return sum(len(r.cache) for r in self.sessions.values())
