"""KV caches for the NumPy transformer, with decoupled or embedded PE.

Two storage disciplines (Figure 11):

* ``DECOUPLED`` — K is cached *before* RoPE (CachedAttention, Figure 11c).
  Rotations are applied at attention time using the cache's *current*
  positions 0..len-1, so :meth:`KVCache.truncate` simply drops the oldest
  entries and the cache stays valid.
* ``EMBEDDED`` — K is cached *after* RoPE at its original absolute
  position (the conventional engine, Figure 11b).  Truncation leaves the
  old rotations baked in while subsequent queries restart at small
  positions: relative distances are scrambled — the NKVT failure mode of
  Tables 1 and 2.
"""

from __future__ import annotations

from enum import Enum

import numpy as np
import numpy.typing as npt


class PEMode(str, Enum):
    """Whether positional encodings are embedded in cached keys."""

    DECOUPLED = "decoupled"
    EMBEDDED = "embedded"


class LayerKVCache:
    """K/V tensors of one attention layer for one sequence.

    Shapes: K and V are (n_heads, S, head_dim), grown along S.
    """

    def __init__(
        self,
        n_heads: int,
        head_dim: int,
        mode: PEMode,
        dtype: npt.DTypeLike = np.float32,
    ) -> None:
        self.mode = mode
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.dtype = dtype
        self.k = np.zeros((n_heads, 0, head_dim), dtype=dtype)
        self.v = np.zeros((n_heads, 0, head_dim), dtype=dtype)
        # For EMBEDDED caches: the absolute position each key was rotated
        # at when it was stored (needed only for introspection/tests).
        self.stored_positions = np.zeros((0,), dtype=np.int64)

    def __len__(self) -> int:
        return self.k.shape[1]

    def append(self, k: np.ndarray, v: np.ndarray, positions: np.ndarray) -> None:
        """Append new keys/values.

        ``k`` must already respect the cache's PE mode: pre-rotation values
        for DECOUPLED, rotated-at-``positions`` values for EMBEDDED.
        """
        if k.shape != v.shape:
            raise ValueError(f"K/V shape mismatch: {k.shape} vs {v.shape}")
        if k.shape[0] != self.n_heads or k.shape[2] != self.head_dim:
            raise ValueError(
                f"expected (*, {self.n_heads}, S, {self.head_dim}), got {k.shape}"
            )
        self.k = np.concatenate([self.k, k.astype(self.dtype)], axis=1)
        self.v = np.concatenate([self.v, v.astype(self.dtype)], axis=1)
        self.stored_positions = np.concatenate(
            [self.stored_positions, np.asarray(positions, dtype=np.int64)]
        )

    def truncate(self, keep_last: int) -> None:
        """Drop the oldest entries, keeping the most recent ``keep_last``."""
        if keep_last < 0:
            raise ValueError(f"keep_last must be >= 0, got {keep_last}")
        if keep_last >= len(self):
            return
        self.k = self.k[:, -keep_last:, :] if keep_last else self.k[:, :0, :]
        self.v = self.v[:, -keep_last:, :] if keep_last else self.v[:, :0, :]
        self.stored_positions = (
            self.stored_positions[-keep_last:]
            if keep_last
            else self.stored_positions[:0]
        )


class KVCache:
    """Per-layer KV caches for one sequence."""

    def __init__(
        self,
        n_layers: int,
        n_heads: int,
        head_dim: int,
        mode: PEMode = PEMode.DECOUPLED,
        dtype: npt.DTypeLike = np.float32,
    ) -> None:
        if n_layers <= 0:
            raise ValueError(f"n_layers must be positive, got {n_layers}")
        self.mode = mode
        self.layers = [
            LayerKVCache(n_heads, head_dim, mode, dtype) for _ in range(n_layers)
        ]

    def __len__(self) -> int:
        return len(self.layers[0])

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    def truncate(self, keep_last: int) -> None:
        """KV-cache truncation (Section 3.4), applied to every layer.

        For DECOUPLED caches the result is a valid cache over positions
        0..keep_last-1.  For EMBEDDED caches this reproduces the *naive KV
        truncation* (NKVT) baseline: the stale rotations stay baked in.
        """
        for layer in self.layers:
            layer.truncate(keep_last)
