"""Synthetic LongEval-style retrieval benchmarks (Table 2 substitute).

The paper's Table 2 feeds a long text to trigger context-window overflow,
then asks benchmark questions: with decoupled truncation (CA) or token
truncation (TT) the model still answers; with naive KV truncation (NKVT)
it does not.

Two substitutes are provided:

* **Word recall** (the benchmark used by ``bench_tab2_accuracy``): a long
  copy-corpus document — sentences drawn from a per-document vocabulary —
  overflows the window, then a probe sentence reuses words from the kept
  suffix.  Accuracy is measured on the probe words' continuation
  characters, which the model can only produce by *retrieving the spelling
  from context* (the words are random strings unique to the document).
  This is exactly the capability LongEval's line-retrieval probes.
* **Key-value retrieval** (``run_retrieval_benchmark``): ``kv␣``
  assignments queried with ``?k``.  A cleaner probe conceptually, but a
  2-layer character model learns the underlying induction circuit only
  partially — the benchmark is retained as API (and as an honest negative
  data point) while word recall carries the headline Table-2 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from .corpus import KVDocument, LETTERS, encode, make_kv_document, _CHAR_TO_ID
from .evaluate import Scheme, evaluate_with_overflow
from .transformer import TinyTransformer


# ----------------------------------------------------------------------
# Word recall
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RecallCase:
    """A long copy-style document plus probe scoring positions."""

    tokens: np.ndarray
    answer_positions: np.ndarray


def make_recall_case(
    window: int,
    rng: np.random.Generator,
    n_words: int = 8,
    word_length: int = 5,
    sentence_words: int = 4,
    overflow_factor: float = 2.0,
    probe_sentences: int = 2,
) -> RecallCase:
    """Build one word-recall case.

    The document body repeats sentences from a private ``n_words``-word
    vocabulary until it exceeds ``overflow_factor * window`` tokens, then
    ``probe_sentences`` more sentences are appended whose words are drawn
    from the *most recent* sentences (so their antecedents survive
    truncation).  Scored positions are the probe words' characters after
    the first — predictable only by retrieving the word from context.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    words = [
        "".join(rng.choice(list(LETTERS), size=word_length))
        for _ in range(n_words)
    ]
    sentences: list[list[str]] = []
    length = 0
    while length <= overflow_factor * window:
        chosen = [str(w) for w in rng.choice(words, size=sentence_words)]
        sentences.append(chosen)
        length += sum(len(w) + 1 for w in chosen) + 1

    # Probe words: seen in the last two body sentences.
    recent = list(dict.fromkeys(w for s in sentences[-2:] for w in s))
    probes: list[list[str]] = [
        [str(w) for w in rng.choice(recent, size=sentence_words)]
        for _ in range(probe_sentences)
    ]

    def render(sentence: list[str]) -> str:
        return " ".join(sentence) + ". "

    body_text = "".join(render(s) for s in sentences)
    cursor = len(body_text)
    answer_positions: list[int] = []
    probe_text = ""
    for sentence in probes:
        col = 0
        for w in sentence:
            for j in range(1, len(w)):
                answer_positions.append(cursor + col + j)
            col += len(w) + 1
        rendered = render(sentence)
        probe_text += rendered
        cursor += len(rendered)

    return RecallCase(
        tokens=encode(body_text + probe_text),
        answer_positions=np.array(answer_positions, dtype=np.int64),
    )


@dataclass(frozen=True)
class RetrievalBenchResult:
    """Accuracy of one scheme on a retrieval benchmark."""

    scheme: Scheme
    n_queries: int
    n_correct: int

    @property
    def accuracy(self) -> float:
        return self.n_correct / self.n_queries if self.n_queries else 0.0


def run_word_recall_benchmark(
    model: TinyTransformer,
    scheme: Scheme,
    n_cases: int = 30,
    window: int | None = None,
    truncation_ratio: float = 0.5,
    seed: int = 321,
    **case_kwargs: Any,
) -> RetrievalBenchResult:
    """Word-recall accuracy of one truncation scheme."""
    window = window or model.config.context_window
    rng = np.random.default_rng(seed)
    n_total = 0
    n_correct = 0
    for _ in range(n_cases):
        case = make_recall_case(window, rng, **case_kwargs)
        result = evaluate_with_overflow(
            model,
            case.tokens,
            scheme,
            window=window,
            truncation_ratio=truncation_ratio,
            block_size=8,
            positions_of_interest=case.answer_positions,
        )
        n_total += result.n_predicted
        n_correct += result.n_correct
    return RetrievalBenchResult(scheme=scheme, n_queries=n_total, n_correct=n_correct)


# ----------------------------------------------------------------------
# Key-value retrieval
# ----------------------------------------------------------------------
def make_retrieval_case(
    n_pairs: int,
    n_queries: int,
    window: int,
    rng: np.random.Generator,
    tail_pool: int = 5,
) -> KVDocument:
    """Build one long key-value retrieval document.

    Queried keys are drawn from the last ``tail_pool`` assignments, which
    survive every truncation.  ``n_pairs * 3`` must exceed ``window``.
    """
    if n_pairs * 3 <= window:
        raise ValueError(
            f"{n_pairs} pairs ({n_pairs * 3} tokens) do not overflow "
            f"window {window}"
        )
    base = make_kv_document(n_pairs, rng, query_keys=[])
    tail_keys = list(base.value_of)[-tail_pool:]
    chosen = [str(k) for k in rng.choice(tail_keys, size=n_queries)]
    return _with_queries(base, chosen)


def _with_queries(base: KVDocument, query_keys: list[str]) -> KVDocument:
    """Append trailing queries to an assignment-only document."""
    parts = []
    cursor = base.tokens.shape[0]
    answer_positions = []
    answers = []
    for k in query_keys:
        v = base.value_of[k]
        parts.append(f"?{k}{v} ")
        answer_positions.append(cursor + 2)
        answers.append(_CHAR_TO_ID[v])
        cursor += 4
    return KVDocument(
        tokens=np.concatenate([base.tokens, encode("".join(parts))]),
        answer_positions=np.array(answer_positions, dtype=np.int64),
        answers=np.array(answers, dtype=np.int64),
        value_of=base.value_of,
    )


def run_retrieval_benchmark(
    model: TinyTransformer,
    scheme: Scheme,
    n_cases: int = 50,
    n_pairs: int = 20,
    n_queries: int = 3,
    window: int = 48,
    truncation_ratio: float = 0.5,
    seed: int = 123,
) -> RetrievalBenchResult:
    """Key-value retrieval accuracy of one truncation scheme."""
    rng = np.random.default_rng(seed)
    n_total = 0
    n_correct = 0
    for _ in range(n_cases):
        case = make_retrieval_case(n_pairs, n_queries, window, rng)
        result = evaluate_with_overflow(
            model,
            case.tokens,
            scheme,
            window=window,
            truncation_ratio=truncation_ratio,
            block_size=4,
            positions_of_interest=case.answer_positions,
        )
        n_total += result.n_predicted
        n_correct += result.n_correct
    return RetrievalBenchResult(
        scheme=scheme, n_queries=n_total, n_correct=n_correct
    )
