"""Adam optimizer for the NumPy transformer."""

from __future__ import annotations

import numpy as np


class Adam:
    """Standard Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params: dict[str, np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.t = 0
        self.m = {k: np.zeros_like(v) for k, v in params.items()}
        self.v = {k: np.zeros_like(v) for k, v in params.items()}

    def step(
        self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]
    ) -> None:
        """Apply one update in place."""
        self.t += 1
        bc1 = 1.0 - self.beta1**self.t
        bc2 = 1.0 - self.beta2**self.t
        for name, g in grads.items():
            if name not in params:
                raise KeyError(f"gradient for unknown parameter {name!r}")
            m = self.m[name]
            v = self.v[name]
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            update = (m / bc1) / (np.sqrt(v / bc2) + self.eps)
            params[name] -= (self.lr * update).astype(params[name].dtype)
