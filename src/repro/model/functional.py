"""Numerically stable primitives for the NumPy transformer.

Forward functions return whatever the matching backward needs; backwards
take the upstream gradient first, mirroring the layout of hand-written
autodiff in small research codebases.
"""

from __future__ import annotations

import numpy as np


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def softmax_backward(grad: np.ndarray, out: np.ndarray, axis: int = -1) -> np.ndarray:
    """Gradient of softmax given its output ``out``."""
    dot = np.sum(grad * out, axis=axis, keepdims=True)
    return out * (grad - dot)


def cross_entropy(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy over all positions, plus dLoss/dLogits.

    Args:
        logits: (..., vocab) unnormalised scores.
        targets: integer class ids, shape ``logits.shape[:-1]``.

    Returns:
        (mean loss, gradient with the same shape as ``logits``).
    """
    if logits.shape[:-1] != targets.shape:
        raise ValueError(
            f"targets shape {targets.shape} does not match logits "
            f"{logits.shape[:-1]}"
        )
    flat = logits.reshape(-1, logits.shape[-1])
    t = targets.reshape(-1)
    n = flat.shape[0]
    shifted = flat - flat.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1)) + flat.max(axis=1)
    nll = logsumexp - flat[np.arange(n), t]
    loss = float(nll.mean())
    probs = softmax(flat, axis=1)
    probs[np.arange(n), t] -= 1.0
    grad = (probs / n).reshape(logits.shape)
    return loss, grad


def token_nll(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Per-position negative log-likelihood (no reduction, no gradient)."""
    flat = logits.reshape(-1, logits.shape[-1])
    t = targets.reshape(-1)
    shifted = flat - flat.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1)) + flat.max(axis=1)
    nll = logsumexp - flat[np.arange(flat.shape[0]), t]
    return nll.reshape(targets.shape)


#: Saved activations threaded from a forward pass to its backward pass.
RMSNormCache = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
GeluCache = tuple[np.ndarray, np.ndarray, float]


def rmsnorm(
    x: np.ndarray, weight: np.ndarray, eps: float = 1e-5
) -> tuple[np.ndarray, RMSNormCache]:
    """RMSNorm forward: ``x / rms(x) * weight``.

    Returns (output, cache) where cache feeds :func:`rmsnorm_backward`.
    """
    rms = np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + eps)
    normed = x / rms
    return normed * weight, (x, rms, normed, weight)


def rmsnorm_backward(
    grad: np.ndarray, cache: RMSNormCache
) -> tuple[np.ndarray, np.ndarray]:
    """Gradient of RMSNorm w.r.t. input and weight."""
    x, rms, normed, weight = cache
    d = x.shape[-1]
    g = grad * weight
    # d/dx of x / rms(x): g/rms - x * <g, x> / (d * rms^3)
    dot = np.sum(g * x, axis=-1, keepdims=True)
    dx = g / rms - x * dot / (d * rms**3)
    dw = np.sum(grad * normed, axis=tuple(range(grad.ndim - 1)))
    return dx, dw


def gelu(x: np.ndarray) -> tuple[np.ndarray, GeluCache]:
    """Tanh-approximation GELU forward; returns (output, cache)."""
    c = np.sqrt(2.0 / np.pi)
    inner = c * (x + 0.044715 * x**3)
    t = np.tanh(inner)
    return 0.5 * x * (1.0 + t), (x, t, c)


def gelu_backward(grad: np.ndarray, cache: GeluCache) -> np.ndarray:
    """Gradient of the tanh-approximation GELU."""
    x, t, c = cache
    dt = (1.0 - t * t) * c * (1.0 + 3 * 0.044715 * x**2)
    return grad * (0.5 * (1.0 + t) + 0.5 * x * dt)
