"""Synthetic corpora for the quality experiments (Tables 1-2).

The paper evaluates perplexity on WikiText-2 / PTB / C4 and accuracy on
MMLU / LongEval / PIQA with pretrained LLaMA models.  Neither the datasets
nor the pretrained weights are available here, so we build corpora with the
one property those experiments actually probe: *the model must rely on
long-range attention*, so that scrambling the positional alignment of a
truncated KV cache (NKVT) destroys predictions while decoupled truncation
(CA) and token-truncation-plus-recompute (TT) do not.

Two kinds of documents:

* **Copy corpora** — each document samples its own small vocabulary of
  made-up words and then writes sentences reusing them.  Predicting the
  rest of a word after its first character requires attending to earlier
  occurrences (in-context copying / induction), which a character-level
  n-gram model cannot do.  Three parameterisations stand in for the three
  PPL datasets.
* **Key-value corpora** — documents of ``k=v;`` assignments followed by
  ``?k:v`` queries: a synthetic LongEval-style retrieval benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

CHARS = "abcdefghijklmnopqrstuvwxyz0123456789 .?=:;"
VOCAB_SIZE = len(CHARS)
_CHAR_TO_ID = {ch: i for i, ch in enumerate(CHARS)}

LETTERS = "abcdefghijklmnopqrstuvwxyz"
DIGITS = "0123456789"


def encode(text: str) -> np.ndarray:
    """Map text to token ids; raises on characters outside the charset."""
    try:
        return np.array([_CHAR_TO_ID[ch] for ch in text], dtype=np.int64)
    except KeyError as exc:
        raise ValueError(f"character {exc.args[0]!r} not in corpus charset") from None


def decode(ids: np.ndarray) -> str:
    """Map token ids back to text."""
    return "".join(CHARS[int(i)] for i in ids)


@dataclass(frozen=True)
class CopyCorpusSpec:
    """Parameters of one copy-structured corpus."""

    name: str
    word_length: int = 5
    words_per_doc: int = 8
    sentence_words: int = 4
    doc_sentences: int = 12
    seed: int = 7

    @property
    def doc_length(self) -> int:
        """Approximate document length in characters."""
        sentence = self.sentence_words * (self.word_length + 1) + 1
        return self.doc_sentences * sentence


#: Stand-ins for the paper's three PPL datasets.  They differ in word
#: length, per-document vocabulary and sentence length, giving three
#: distinct difficulty levels just as WikiText-2 / PTB / C4 do.  The small
#: per-document vocabularies make words repeat often, which is what lets a
#: 2-layer model develop the in-context copying (induction) circuit the
#: truncation experiments rely on.
COPY_CORPORA: dict[str, CopyCorpusSpec] = {
    "synth-wikitext": CopyCorpusSpec(
        "synth-wikitext", word_length=5, words_per_doc=5, sentence_words=5,
        doc_sentences=10,
    ),
    "synth-ptb": CopyCorpusSpec(
        "synth-ptb", word_length=4, words_per_doc=4, sentence_words=6,
        doc_sentences=10,
    ),
    "synth-c4": CopyCorpusSpec(
        "synth-c4", word_length=6, words_per_doc=6, sentence_words=4,
        doc_sentences=10,
    ),
}


def make_copy_document(spec: CopyCorpusSpec, rng: np.random.Generator) -> np.ndarray:
    """One document: sentences built from a per-document word set."""
    words = [
        "".join(rng.choice(list(LETTERS), size=spec.word_length))
        for _ in range(spec.words_per_doc)
    ]
    parts: list[str] = []
    for _ in range(spec.doc_sentences):
        chosen = rng.choice(words, size=spec.sentence_words, replace=True)
        parts.append(" ".join(chosen) + ".")
    return encode(" ".join(parts))


def make_copy_corpus(
    spec: CopyCorpusSpec, n_docs: int, seed: int | None = None
) -> list[np.ndarray]:
    """Generate ``n_docs`` documents from one corpus specification."""
    if n_docs <= 0:
        raise ValueError(f"n_docs must be positive, got {n_docs}")
    rng = np.random.default_rng(spec.seed if seed is None else seed)
    return [make_copy_document(spec, rng) for _ in range(n_docs)]


@dataclass(frozen=True)
class KVDocument:
    """A key-value retrieval document with its query ground truth.

    Assignments are ``kv␣`` (a letter key immediately followed by a digit
    value) and queries are ``?kv␣``: at a query, the model reads ``?k`` and
    must predict ``v`` — a pure induction pattern (the earlier occurrence
    of ``k`` is followed by ``v``).  Keys are distinct within a document so
    the retrieval target is unambiguous.  ``answer_positions[i]`` indexes
    the value token of query ``i`` inside ``tokens``.
    """

    tokens: np.ndarray
    answer_positions: np.ndarray
    answers: np.ndarray
    value_of: dict[str, str]  # key -> its assigned value


def make_kv_document(
    n_pairs: int,
    rng: np.random.Generator,
    query_prob: float = 0.8,
    query_keys: list[str] | None = None,
) -> KVDocument:
    """Build one retrieval document with interleaved queries.

    After every assignment (except the first) a query of a random
    already-assigned key is emitted with probability ``query_prob``; the
    distance diversity this creates is what lets a small transformer learn
    the induction circuit.  ``query_keys``, if given, are appended as
    trailing queries instead (used by the LongEval-style benchmark).

    Args:
        n_pairs: number of assignments; must not exceed the alphabet since
            keys are distinct.
    """
    if n_pairs <= 0:
        raise ValueError(f"n_pairs must be positive, got {n_pairs}")
    if n_pairs > len(LETTERS):
        raise ValueError(
            f"at most {len(LETTERS)} distinct keys available, got {n_pairs}"
        )
    keys = [str(k) for k in rng.choice(list(LETTERS), size=n_pairs, replace=False)]
    values = [str(v) for v in rng.choice(list(DIGITS), size=n_pairs)]
    value_of = dict(zip(keys, values))

    parts: list[str] = []
    answer_positions: list[int] = []
    answers: list[int] = []
    cursor = 0

    def emit_query(key: str) -> None:
        nonlocal cursor
        parts.append(f"?{key}{value_of[key]} ")
        answer_positions.append(cursor + 2)
        answers.append(_CHAR_TO_ID[value_of[key]])
        cursor += 4

    for i, (k, v) in enumerate(zip(keys, values)):
        parts.append(f"{k}{v} ")
        cursor += 3
        if query_keys is None and i >= 1 and rng.random() < query_prob:
            emit_query(str(rng.choice(keys[: i + 1])))
    if query_keys is not None:
        for k in query_keys:
            if k not in value_of:
                raise ValueError(f"query key {k!r} was never assigned")
            emit_query(k)

    return KVDocument(
        tokens=encode("".join(parts)),
        answer_positions=np.array(answer_positions, dtype=np.int64),
        answers=np.array(answers, dtype=np.int64),
        value_of=value_of,
    )


def make_kv_corpus(
    n_docs: int, n_pairs: int = 10, seed: int = 11, query_prob: float = 0.8
) -> list[KVDocument]:
    """Training corpus of retrieval documents."""
    rng = np.random.default_rng(seed)
    return [make_kv_document(n_pairs, rng, query_prob) for _ in range(n_docs)]


def training_batches_padded(
    docs: list[np.ndarray],
    batch_size: int,
    n_batches: int,
    pad_id: int | None = None,
    seed: int = 0,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield document-aligned (tokens, targets) batches.

    Documents are sampled whole and right-padded to the batch's longest
    document, so retrieval queries always see their assignments (a random
    window over a concatenated stream would cut them apart).
    """
    if batch_size <= 0 or n_batches <= 0:
        raise ValueError("batch_size and n_batches must be positive")
    if not docs:
        raise ValueError("no documents")
    if pad_id is None:
        pad_id = _CHAR_TO_ID[" "]
    rng = np.random.default_rng(seed)
    for _ in range(n_batches):
        idx = rng.integers(0, len(docs), size=batch_size)
        longest = max(docs[i].shape[0] for i in idx)
        batch = np.full((batch_size, longest), pad_id, dtype=np.int64)
        for row, i in enumerate(idx):
            batch[row, : docs[i].shape[0]] = docs[i]
        yield batch[:, :-1], batch[:, 1:]


def training_batches(
    docs: list[np.ndarray],
    seq_len: int,
    batch_size: int,
    n_batches: int,
    seed: int = 0,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (tokens, targets) batches of shape (B, seq_len) sampled from a
    concatenation of the documents (next-token prediction)."""
    if seq_len <= 0 or batch_size <= 0 or n_batches <= 0:
        raise ValueError("seq_len, batch_size and n_batches must be positive")
    stream = np.concatenate(list(docs))
    if stream.shape[0] <= seq_len + 1:
        raise ValueError(
            f"corpus too small ({stream.shape[0]} tokens) for seq_len {seq_len}"
        )
    rng = np.random.default_rng(seed)
    max_start = stream.shape[0] - seq_len - 1
    for _ in range(n_batches):
        starts = rng.integers(0, max_start, size=batch_size)
        tokens = np.stack([stream[s : s + seq_len] for s in starts])
        targets = np.stack([stream[s + 1 : s + seq_len + 1] for s in starts])
        yield tokens, targets
