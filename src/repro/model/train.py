"""Training loop and cached model factory for the quality experiments."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, asdict
from pathlib import Path

import numpy as np

from .adam import Adam
from .corpus import (
    COPY_CORPORA,
    VOCAB_SIZE,
    make_copy_corpus,
    make_kv_corpus,
    training_batches,
    training_batches_padded,
)
from .transformer import ModelConfig, TinyTransformer


@dataclass(frozen=True)
class TrainConfig:
    """Training hyperparameters."""

    steps: int = 400
    batch_size: int = 16
    seq_len: int = 96
    lr: float = 3e-3
    lr_half_life: int | None = None
    seed: int = 0
    log_every: int = 50

    def __post_init__(self) -> None:
        if self.steps <= 0:
            raise ValueError(f"steps must be positive, got {self.steps}")
        if self.lr <= 0:
            raise ValueError(f"lr must be positive, got {self.lr}")


def train_model(
    model: TinyTransformer,
    docs: list[np.ndarray],
    config: TrainConfig,
    doc_aligned: bool = False,
    verbose: bool = False,
) -> list[float]:
    """Train ``model`` in place on next-token prediction; return the loss
    curve (one entry per step).

    ``doc_aligned=True`` samples whole (padded) documents per batch row
    instead of windows over a concatenated stream — required for the
    retrieval corpora, whose queries must see their assignments.
    """
    optimizer = Adam(model.params, lr=config.lr)
    losses: list[float] = []
    if doc_aligned:
        batches = training_batches_padded(
            docs,
            batch_size=config.batch_size,
            n_batches=config.steps,
            seed=config.seed,
        )
    else:
        batches = training_batches(
            docs,
            seq_len=config.seq_len,
            batch_size=config.batch_size,
            n_batches=config.steps,
            seed=config.seed,
        )
    for step, (tokens, targets) in enumerate(batches):
        if config.lr_half_life is not None:
            optimizer.lr = config.lr * 0.5 ** (step / config.lr_half_life)
        loss, grads = model.loss_and_grads(tokens, targets)
        optimizer.step(model.params, grads)
        losses.append(loss)
        if verbose and (step % config.log_every == 0 or step == config.steps - 1):
            print(f"step {step:5d}  loss {loss:.4f}")
    return losses


def _cache_key(kind: str, model_config: ModelConfig, train_config: TrainConfig) -> str:
    payload = f"{kind}|{sorted(asdict(model_config).items())}|{sorted(asdict(train_config).items())}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def make_trained_model(
    kind: str,
    model_config: ModelConfig | None = None,
    train_config: TrainConfig | None = None,
    cache_dir: str | Path | None = None,
    verbose: bool = False,
) -> TinyTransformer:
    """Train (or load from cache) a model for one experiment corpus.

    Args:
        kind: a copy-corpus name from :data:`COPY_CORPORA`, or ``"kv"`` for
            the retrieval task, or ``"mixed"`` for both (the configuration
            used by the Table 1-2 benchmarks).
        model_config: architecture; defaults match :class:`ModelConfig`.
        train_config: training hyperparameters.
        cache_dir: if given, trained weights are stored/loaded as ``.npz``
            keyed by the full configuration, so benchmark reruns are cheap.
    """
    model_config = model_config or ModelConfig(vocab_size=VOCAB_SIZE)
    train_config = train_config or TrainConfig()
    if model_config.vocab_size != VOCAB_SIZE:
        raise ValueError(
            f"quality-experiment models must use the corpus vocab "
            f"({VOCAB_SIZE}), got {model_config.vocab_size}"
        )
    model = TinyTransformer(model_config, seed=train_config.seed)

    cache_path: Path | None = None
    if cache_dir is not None:
        cache_path = Path(cache_dir) / (
            f"tiny-{kind}-{_cache_key(kind, model_config, train_config)}.npz"
        )
        if cache_path.exists():
            with np.load(cache_path) as data:
                model.load_state_dict({k: data[k] for k in data.files})
            return model

    docs = _corpus_for(kind, train_config)
    train_model(
        model,
        docs,
        train_config,
        doc_aligned=kind == "kv",
        verbose=verbose,
    )

    if cache_path is not None:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        np.savez(cache_path, **model.state_dict())
    return model


def _corpus_for(kind: str, train_config: TrainConfig) -> list[np.ndarray]:
    if kind in COPY_CORPORA:
        return make_copy_corpus(COPY_CORPORA[kind], n_docs=200)
    if kind == "kv":
        return [d.tokens for d in make_kv_corpus(n_docs=1500, n_pairs=10)]
    if kind == "mixed":
        docs: list[np.ndarray] = []
        for spec in COPY_CORPORA.values():
            docs.extend(make_copy_corpus(spec, n_docs=120))
        rng = np.random.default_rng(train_config.seed)
        rng.shuffle(docs)
        return docs
    raise ValueError(
        f"unknown corpus kind {kind!r}; expected one of "
        f"{sorted(COPY_CORPORA)}, 'kv', or 'mixed'"
    )
