"""A trainable NumPy transformer with decoupled-PE KV caching (Tables 1-2)."""

from .adam import Adam
from .corpus import (
    CHARS,
    COPY_CORPORA,
    VOCAB_SIZE,
    CopyCorpusSpec,
    KVDocument,
    decode,
    encode,
    make_copy_corpus,
    make_copy_document,
    make_kv_corpus,
    make_kv_document,
    training_batches,
    training_batches_padded,
)
from .compression import (
    CompressionResult,
    CompressionStrategy,
    attention_importance,
    compress_cache,
    evaluate_compression,
    make_tdl,
    select_cache,
)
from .evaluate import (
    OverflowEvalResult,
    Scheme,
    evaluate_corpus,
    evaluate_with_overflow,
)
from .kvcache import KVCache, LayerKVCache, PEMode
from .longeval import (
    RecallCase,
    RetrievalBenchResult,
    make_recall_case,
    make_retrieval_case,
    run_retrieval_benchmark,
    run_word_recall_benchmark,
)
from .rope import apply_rope, rope_angles, unapply_rope
from .serving import SessionRecord, TinyChatServer, TurnResult
from .train import TrainConfig, make_trained_model, train_model
from .transformer import ModelConfig, TinyTransformer

__all__ = [
    "Adam",
    "CHARS",
    "COPY_CORPORA",
    "CompressionResult",
    "CompressionStrategy",
    "CopyCorpusSpec",
    "KVCache",
    "KVDocument",
    "LayerKVCache",
    "ModelConfig",
    "OverflowEvalResult",
    "PEMode",
    "RecallCase",
    "RetrievalBenchResult",
    "Scheme",
    "SessionRecord",
    "TinyChatServer",
    "TinyTransformer",
    "TrainConfig",
    "TurnResult",
    "VOCAB_SIZE",
    "apply_rope",
    "attention_importance",
    "compress_cache",
    "decode",
    "encode",
    "evaluate_compression",
    "evaluate_corpus",
    "evaluate_with_overflow",
    "make_copy_corpus",
    "make_copy_document",
    "make_kv_corpus",
    "make_kv_document",
    "make_recall_case",
    "make_retrieval_case",
    "make_tdl",
    "make_trained_model",
    "rope_angles",
    "run_retrieval_benchmark",
    "run_word_recall_benchmark",
    "select_cache",
    "train_model",
    "training_batches",
    "training_batches_padded",
    "unapply_rope",
]
