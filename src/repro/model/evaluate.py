"""Quality evaluation under context-window overflow (Tables 1-2).

Three truncation schemes are compared when a document exceeds the model's
context window (the paper's Section 4.3.5 setup):

* **TT** (token truncation): keep the most recent tokens and *recompute*
  their KV cache from scratch — the quality reference, at full
  recomputation cost.
* **CA** (CachedAttention): the KV cache was stored with positions
  decoupled; drop the oldest cache entries and re-embed fresh positions.
  No recomputation.
* **NKVT** (naive KV truncation): the KV cache has positions embedded;
  dropping entries leaves stale rotations behind while queries restart at
  small positions — relative distances are scrambled.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from .functional import token_nll
from .kvcache import KVCache, PEMode
from .transformer import TinyTransformer


class Scheme(str, Enum):
    """Context-overflow handling schemes of Section 4.3.5."""

    CA = "ca"
    TT = "tt"
    NKVT = "nkvt"


@dataclass(frozen=True)
class OverflowEvalResult:
    """Per-document evaluation outcome."""

    nll_sum: float
    n_predicted: int
    n_correct: int
    n_truncations: int

    @property
    def mean_nll(self) -> float:
        return self.nll_sum / self.n_predicted if self.n_predicted else 0.0

    @property
    def perplexity(self) -> float:
        return float(np.exp(self.mean_nll))

    @property
    def accuracy(self) -> float:
        return self.n_correct / self.n_predicted if self.n_predicted else 0.0


def _truncate_keep(window: int, ratio: float) -> int:
    """Tokens kept after one truncation (paper ratio 0.5: drop the
    earliest ``window * ratio``)."""
    keep = window - int(window * ratio)
    return max(1, keep)


def evaluate_with_overflow(
    model: TinyTransformer,
    tokens: np.ndarray,
    scheme: Scheme,
    window: int | None = None,
    truncation_ratio: float = 0.5,
    block_size: int = 16,
    positions_of_interest: np.ndarray | None = None,
) -> OverflowEvalResult:
    """Stream a document through the model, truncating on overflow.

    Tokens are fed in blocks; before a block would push the cache past the
    context window, the scheme's truncation is applied.  Every fed token
    (except the first) is scored: NLL of the true next token and top-1
    correctness.

    Args:
        model: a trained :class:`TinyTransformer`.
        tokens: (N,) document token ids.
        scheme: how overflow is handled.
        window: context window; defaults to the model's configuration.
        truncation_ratio: fraction of the window dropped per overflow.
        block_size: tokens fed per step (1 reproduces pure decoding).
        positions_of_interest: if given, only predictions *at* these token
            indices count towards the statistics (used by the retrieval
            benchmark); otherwise every predicted token counts.

    Returns:
        Aggregated NLL / accuracy statistics for the document.
    """
    tokens = np.asarray(tokens)
    if tokens.ndim != 1 or tokens.shape[0] < 2:
        raise ValueError("need a 1-D document with at least 2 tokens")
    window = window or model.config.context_window
    if block_size <= 0 or block_size > window:
        raise ValueError(
            f"block_size must be in [1, window], got {block_size} vs {window}"
        )
    interest: set[int] | None = None
    if positions_of_interest is not None:
        interest = {int(i) for i in positions_of_interest}

    mode = PEMode.EMBEDDED if scheme is Scheme.NKVT else PEMode.DECOUPLED
    cache = model.new_cache(mode)
    history: list[int] = []  # token ids currently represented in the cache
    keep = _truncate_keep(window, truncation_ratio)

    nll_sum = 0.0
    n_predicted = 0
    n_correct = 0
    n_truncations = 0

    cursor = 0
    n = tokens.shape[0]
    while cursor < n:
        block = tokens[cursor : cursor + block_size]
        if len(cache) + block.shape[0] > window:
            n_truncations += 1
            if scheme is Scheme.TT:
                # Token truncation + full recomputation.
                history = history[-keep:]
                cache = model.new_cache(PEMode.DECOUPLED)
                if history:
                    model.forward_with_cache(np.array(history), cache)
            else:
                # Direct KV-cache truncation (valid for CA, scrambled for
                # NKVT whose rotations stay at their original positions).
                cache.truncate(keep)
                history = history[-keep:]

        logits = model.forward_with_cache(block, cache)
        history.extend(int(t) for t in block)

        # Score predictions of each block token's successor (within block),
        # plus the first token of the *next* block via the last logit row.
        next_targets = tokens[cursor + 1 : cursor + block.shape[0] + 1]
        n_score = next_targets.shape[0]
        if n_score:
            rows = logits[:n_score]
            nlls = token_nll(rows, next_targets)
            preds = rows.argmax(axis=1)
            for j in range(n_score):
                target_index = cursor + 1 + j
                if interest is not None and target_index not in interest:
                    continue
                nll_sum += float(nlls[j])
                n_predicted += 1
                n_correct += int(preds[j] == next_targets[j])
        cursor += block.shape[0]

    return OverflowEvalResult(
        nll_sum=nll_sum,
        n_predicted=n_predicted,
        n_correct=n_correct,
        n_truncations=n_truncations,
    )


def evaluate_corpus(
    model: TinyTransformer,
    documents: list[np.ndarray],
    scheme: Scheme,
    window: int | None = None,
    truncation_ratio: float = 0.5,
    block_size: int = 16,
) -> OverflowEvalResult:
    """Aggregate :func:`evaluate_with_overflow` over many documents."""
    if not documents:
        raise ValueError("no documents to evaluate")
    totals = OverflowEvalResult(0.0, 0, 0, 0)
    nll, pred, corr, trunc = 0.0, 0, 0, 0
    for doc in documents:
        r = evaluate_with_overflow(
            model,
            doc,
            scheme,
            window=window,
            truncation_ratio=truncation_ratio,
            block_size=block_size,
        )
        nll += r.nll_sum
        pred += r.n_predicted
        corr += r.n_correct
        trunc += r.n_truncations
    return OverflowEvalResult(nll, pred, corr, trunc)
