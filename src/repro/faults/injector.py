"""The seeded, deterministic fault injector.

One :class:`FaultInjector` per run owns a dedicated ``random.Random`` so
fault decisions are a pure function of (config, decision order) — two runs
with the same trace and fault profile inject identical faults.  It
implements the channel fault-hook protocol (``transfer_fails`` /
``bandwidth_factor``) consulted by :class:`repro.sim.Channel`, plus the
per-save corruption/loss draws consulted by the store.
"""

from __future__ import annotations

import random

from .config import FaultConfig


class FaultInjector:
    """Draws fault decisions from one seeded RNG and counts injections."""

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self.injected_transfer_faults = 0
        self.injected_corruptions = 0
        self.injected_losses = 0

    # ------------------------------------------------------------------
    # Channel fault-hook protocol
    # ------------------------------------------------------------------
    def _rate_for(self, channel: str) -> float:
        if channel == "ssd":
            return self.config.ssd_fault_rate
        if channel.startswith("pcie"):
            return self.config.pcie_fault_rate
        if channel == "cluster-net":
            return self.config.net_fault_rate
        return 0.0

    def transfer_fails(self, channel: str, now: float) -> bool:
        """Decide whether this transfer suffers a transient failure."""
        rate = self._rate_for(channel)
        if rate <= 0.0:
            return False
        if self._rng.random() < rate:
            self.injected_transfer_faults += 1
            return True
        return False

    def bandwidth_factor(self, channel: str, now: float) -> float:
        """Effective-bandwidth multiplier at ``now`` (degradation windows).

        Deterministic in time — no RNG is consumed, so adding or removing
        windows does not shift the other fault classes' decision streams.
        """
        factor = 1.0
        for window in self.config.degraded_windows:
            if window.channel == channel and window.active(now):
                factor = min(factor, window.factor)
        return factor

    # ------------------------------------------------------------------
    # Store save-time decisions
    # ------------------------------------------------------------------
    def corrupts_save(self) -> bool:
        """Decide whether a just-saved KV item is corrupt on next load."""
        if self.config.corruption_rate <= 0.0:
            return False
        if self._rng.random() < self.config.corruption_rate:
            self.injected_corruptions += 1
            return True
        return False

    def loses_save(self) -> bool:
        """Decide whether a just-saved KV item is silently lost."""
        if self.config.loss_rate <= 0.0:
            return False
        if self._rng.random() < self.config.loss_rate:
            self.injected_losses += 1
            return True
        return False
