"""Replica-level fault scheduling: crash, restart and drain events.

PR 1's fault classes degrade a replica *internally* (flaky transfers,
corrupt KV items); this module lets a replica *die*.  A
:class:`ReplicaFaultSchedule` holds the cluster-level lifecycle events of
one run:

* :class:`ReplicaCrash` — at ``at`` the replica's volatile state (HBM and
  DRAM KV, queued and in-flight turns) is wiped; the SSD tier physically
  survives and is re-admitted when the replica restarts ``downtime``
  seconds later;
* :class:`ReplicaDrain` — at ``at`` the replica stops admitting sessions,
  migrates its live sessions to healthy peers over the cluster network,
  and stops once none remain.

Schedules are plain data: event times are explicit, so a (trace, schedule)
pair replays identically.  :meth:`ReplicaFaultSchedule.random_crashes`
derives a schedule from a seed for chaos-style sweeps — the draw uses a
dedicated ``random.Random``, never global state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class ReplicaCrash:
    """One scheduled replica crash (volatile wipe) and its downtime."""

    at: float
    replica: int
    downtime: float = 60.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"at must be >= 0, got {self.at}")
        if self.replica < 0:
            raise ValueError(f"replica must be >= 0, got {self.replica}")
        if self.downtime <= 0:
            raise ValueError(f"downtime must be positive, got {self.downtime}")

    @property
    def restart_at(self) -> float:
        return self.at + self.downtime


@dataclass(frozen=True)
class ReplicaDrain:
    """One scheduled graceful drain of a replica."""

    at: float
    replica: int

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"at must be >= 0, got {self.at}")
        if self.replica < 0:
            raise ValueError(f"replica must be >= 0, got {self.replica}")


@dataclass(frozen=True)
class ReplicaFaultSchedule:
    """The replica lifecycle events of one cluster run."""

    crashes: tuple[ReplicaCrash, ...] = ()
    drains: tuple[ReplicaDrain, ...] = ()

    @property
    def enabled(self) -> bool:
        """True when the schedule contains at least one event."""
        return bool(self.crashes or self.drains)

    @property
    def max_replica(self) -> int:
        """Highest replica index any event names (-1 for an empty schedule)."""
        indices = [e.replica for e in self.crashes] + [
            e.replica for e in self.drains
        ]
        return max(indices) if indices else -1

    def validate_for(self, n_instances: int) -> None:
        """Raise if any event targets a replica the cluster does not have."""
        if self.max_replica >= n_instances:
            raise ValueError(
                f"replica fault schedule targets replica {self.max_replica} "
                f"but the cluster has only {n_instances} instance(s)"
            )

    @classmethod
    def random_crashes(
        cls,
        seed: int,
        n_replicas: int,
        n_crashes: int,
        horizon: float,
        downtime: float = 60.0,
        start: float = 0.0,
    ) -> "ReplicaFaultSchedule":
        """Derive a seeded crash schedule (chaos-style sweeps).

        Draws ``n_crashes`` (replica, time) pairs uniformly from a
        dedicated ``random.Random(seed)``; times land in
        ``[start, horizon)`` and are sorted so the schedule reads in
        event order.  Purely a convenience — the result is ordinary
        explicit event data.
        """
        if n_replicas <= 0:
            raise ValueError(f"n_replicas must be positive, got {n_replicas}")
        if horizon <= start:
            raise ValueError(
                f"horizon ({horizon}) must exceed start ({start})"
            )
        rng = random.Random(seed)
        crashes = sorted(
            (
                ReplicaCrash(
                    at=rng.uniform(start, horizon),
                    replica=rng.randrange(n_replicas),
                    downtime=downtime,
                )
                for _ in range(n_crashes)
            ),
            key=lambda c: (c.at, c.replica),
        )
        return cls(crashes=tuple(crashes))
