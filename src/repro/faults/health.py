"""Per-tier health tracking: a consecutive-failure circuit breaker.

Repeated transfer failures against a tier (in practice the SSD) trip the
breaker: the tier is bypassed entirely — demotions degrade to drops, disk
hits degrade to recompute fallbacks — instead of burning the retry budget
on every operation against a sick device.  After ``cooldown`` seconds the
breaker half-opens and lets probe operations through; the first success
closes it again.
"""

from __future__ import annotations

from enum import Enum


class BreakerState(str, Enum):
    """Circuit-breaker states (classic closed / open / half-open)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class TierHealth:
    """Tracks one tier's failure history and gates access to it."""

    def __init__(self, threshold: int, cooldown: float) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown <= 0:
            raise ValueError(f"cooldown must be positive, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self.recoveries = 0
        self._opened_at = 0.0

    def allows(self, now: float) -> bool:
        """Whether an operation against the tier may proceed at ``now``.

        An open breaker half-opens once the cooldown has elapsed, letting
        recovery probes through.
        """
        if self.state is BreakerState.OPEN:
            if now - self._opened_at >= self.cooldown:
                self.state = BreakerState.HALF_OPEN
                return True
            return False
        return True

    def record_failure(self, now: float) -> bool:
        """Register a failed operation; return True when this trips
        (or, from half-open, re-trips) the breaker."""
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            # The recovery probe failed: re-open for another cooldown.
            self.state = BreakerState.OPEN
            self._opened_at = now
            self.trips += 1
            return True
        if (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.threshold
        ):
            self.state = BreakerState.OPEN
            self._opened_at = now
            self.trips += 1
            return True
        return False

    def record_success(self) -> bool:
        """Register a successful operation; return True on recovery
        (a non-closed breaker closing again)."""
        self.consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self.state = BreakerState.CLOSED
            self.recoveries += 1
            return True
        return False
