"""Fault injection and graceful degradation for AttentionStore serving.

CachedAttention's safety net is its RE baseline: a lost, corrupt or
unreachable KV cache costs a full-recompute prefill, never a crash and
never a wrong answer.  This package makes that fallback explicit and
measurable:

* :class:`FaultConfig` / :func:`fault_profile` — per-fault-class rates and
  episode windows (transient SSD/PCIe failures, bandwidth degradation, KV
  corruption, whole-tier loss) plus retry/breaker policy knobs;
* :class:`FaultInjector` — one seeded RNG per run drawing every fault
  decision deterministically; doubles as the channel fault hook;
* :class:`TierHealth` — a consecutive-failure circuit breaker that bypasses
  a sick tier and probes it for recovery after a cooldown.

The store and engine consult these objects only when a run opts in; with
no injector configured the serving paths are untouched.
"""

from .config import (
    FAULT_PROFILES,
    TIER_NAMES,
    DegradedWindow,
    FaultConfig,
    TierLossEvent,
    fault_profile,
)
from .health import BreakerState, TierHealth
from .injector import FaultInjector
from .replica import ReplicaCrash, ReplicaDrain, ReplicaFaultSchedule

__all__ = [
    "BreakerState",
    "DegradedWindow",
    "FAULT_PROFILES",
    "FaultConfig",
    "FaultInjector",
    "ReplicaCrash",
    "ReplicaDrain",
    "ReplicaFaultSchedule",
    "TIER_NAMES",
    "TierHealth",
    "TierLossEvent",
    "fault_profile",
]
