"""Fault-injection configuration.

:class:`FaultConfig` describes which faults a run injects and how the
system is allowed to react to them.  Four fault classes model the ways an
AttentionStore deployment degrades in production:

* **transient transfer failures** — an SSD or PCIe transfer aborts (CRC
  error, command timeout); per-transfer probability, retried with capped
  exponential backoff up to ``max_retries``;
* **bandwidth degradation** — a link's effective bandwidth drops to a
  fraction of nominal during :class:`DegradedWindow` episodes (e.g. an SSD
  garbage-collection storm pinning it at 20 % for two minutes);
* **KV-item corruption** — a stored cache fails checksum validation when
  it is next looked up and must not be served;
* **whole-tier loss** — a :class:`TierLossEvent` drops every item resident
  in one tier at a point in time (host restart wiping DRAM, disk failure).

All randomised decisions are drawn from one dedicated seeded RNG owned by
the run's :class:`~repro.faults.injector.FaultInjector`, never from global
state, so a (trace, config) pair replays identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from .replica import ReplicaCrash, ReplicaDrain, ReplicaFaultSchedule

#: Tier names accepted by :class:`TierLossEvent` (string-typed so this
#: package stays import-free of :mod:`repro.store`).
TIER_NAMES = ("hbm", "dram", "disk")


@dataclass(frozen=True)
class DegradedWindow:
    """One bandwidth-degradation episode on a channel.

    The channel runs at ``factor`` of nominal bandwidth from ``start`` for
    ``duration`` seconds; with a ``period`` the episode repeats (a window
    every ``period`` seconds, phase-aligned to ``start``).
    """

    start: float
    duration: float
    factor: float
    period: float | None = None
    channel: str = "ssd"

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if not (0.0 < self.factor <= 1.0):
            raise ValueError(f"factor must be in (0, 1], got {self.factor}")
        if self.period is not None and self.period < self.duration:
            raise ValueError(
                f"period ({self.period}) must be >= duration ({self.duration})"
            )

    def active(self, now: float) -> bool:
        """Whether the degradation applies at simulated time ``now``."""
        if now < self.start:
            return False
        offset = now - self.start
        if self.period is not None:
            offset %= self.period
        return offset < self.duration


@dataclass(frozen=True)
class TierLossEvent:
    """A simulated restart dropping one storage tier's entire contents."""

    at: float
    tier: str = "dram"

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"at must be >= 0, got {self.at}")
        if self.tier not in TIER_NAMES:
            raise ValueError(f"tier must be one of {TIER_NAMES}, got {self.tier!r}")


@dataclass(frozen=True)
class FaultConfig:
    """Per-fault-class rates/windows plus the degradation policy knobs.

    With the defaults (all rates zero, no windows or loss events) the
    config is inert — :attr:`enabled` is False and the engine builds no
    injector, so the fault machinery costs nothing and runs are
    bit-identical to a fault-free engine.
    """

    seed: int = 0
    #: Per-transfer probability that an SSD transfer fails transiently.
    ssd_fault_rate: float = 0.0
    #: Per-transfer probability that a PCIe transfer fails transiently.
    pcie_fault_rate: float = 0.0
    #: Per-save probability that the stored KV is corrupt (detected by
    #: checksum at the next lookup; never served).
    corruption_rate: float = 0.0
    #: Per-save probability that the stored KV is silently lost before its
    #: next use (plain miss at lookup).
    loss_rate: float = 0.0
    #: Per-transfer probability that an inter-host (cluster-net) KV
    #: migration fails transiently; only meaningful in cluster runs.
    net_fault_rate: float = 0.0
    degraded_windows: tuple[DegradedWindow, ...] = ()
    tier_loss_events: tuple[TierLossEvent, ...] = ()
    #: Cluster-level replica crash/drain events.  Consumed by
    #: :class:`~repro.cluster.ClusterEngine` (which strips it from the
    #: per-replica configs); a standalone engine has no replicas to kill
    #: and rejects a schedule-bearing config.
    replica_schedule: ReplicaFaultSchedule | None = None
    #: Retry budget for transient transfer failures.
    max_retries: int = 3
    #: Base backoff before the first retry (seconds); doubles per attempt.
    retry_backoff: float = 1e-3
    retry_backoff_cap: float = 0.1
    #: Consecutive SSD failures that trip the tier's circuit breaker.
    breaker_threshold: int = 5
    #: Seconds a tripped breaker stays open before a recovery probe.
    breaker_cooldown: float = 30.0

    def __post_init__(self) -> None:
        for attr in (
            "ssd_fault_rate",
            "pcie_fault_rate",
            "corruption_rate",
            "loss_rate",
            "net_fault_rate",
        ):
            value = getattr(self, attr)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{attr} must be in [0, 1], got {value}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff < 0 or self.retry_backoff_cap < 0:
            raise ValueError("retry backoff values must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown <= 0:
            raise ValueError(
                f"breaker_cooldown must be positive, got {self.breaker_cooldown}"
            )

    @property
    def enabled(self) -> bool:
        """True when this config can actually inject at least one fault."""
        return (
            self.ssd_fault_rate > 0.0
            or self.pcie_fault_rate > 0.0
            or self.corruption_rate > 0.0
            or self.loss_rate > 0.0
            or self.net_fault_rate > 0.0
            or bool(self.degraded_windows)
            or bool(self.tier_loss_events)
            or (
                self.replica_schedule is not None
                and self.replica_schedule.enabled
            )
        )

    def backoff(self, attempt: int) -> float:
        """Backoff delay before retry ``attempt`` (1-based), capped."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return min(self.retry_backoff_cap, self.retry_backoff * (2 ** (attempt - 1)))


#: CLI-facing preset names (``repro run --fault-profile ...``).
FAULT_PROFILES = ("none", "flaky-ssd", "degraded-ssd", "chaos", "chaos-cluster")


def fault_profile(name: str, seed: int = 0) -> FaultConfig | None:
    """Build the :class:`FaultConfig` for a named CLI fault profile.

    * ``none`` — no injection (returns None).
    * ``flaky-ssd`` — 5 % transient SSD transfer failure rate.
    * ``degraded-ssd`` — SSD at 20 % bandwidth for 2 minutes in every 10.
    * ``chaos`` — flaky SSD and PCIe, 2 % KV corruption, 1 % silent loss,
      periodic SSD degradation and a DRAM wipe 15 minutes in.
    * ``chaos-cluster`` — flaky SSD, a flaky inter-host link, plus replica
      lifecycle events: replica 1 crashes 10 minutes in (90 s downtime)
      and replica 0 drains 40 minutes in.  Requires a cluster run whose
      ``--instances`` covers the scheduled replicas (>= 2 here); a
      single-engine run has no replicas to kill and rejects the profile.
    """
    if name == "none":
        return None
    if name == "flaky-ssd":
        return FaultConfig(seed=seed, ssd_fault_rate=0.05)
    if name == "degraded-ssd":
        return FaultConfig(
            seed=seed,
            degraded_windows=(
                DegradedWindow(start=60.0, duration=120.0, factor=0.2, period=600.0),
            ),
        )
    if name == "chaos":
        return FaultConfig(
            seed=seed,
            ssd_fault_rate=0.05,
            pcie_fault_rate=0.01,
            corruption_rate=0.02,
            loss_rate=0.01,
            degraded_windows=(
                DegradedWindow(start=120.0, duration=90.0, factor=0.2, period=900.0),
            ),
            tier_loss_events=(TierLossEvent(at=900.0, tier="dram"),),
        )
    if name == "chaos-cluster":
        return FaultConfig(
            seed=seed,
            ssd_fault_rate=0.02,
            net_fault_rate=0.02,
            replica_schedule=ReplicaFaultSchedule(
                crashes=(ReplicaCrash(at=600.0, replica=1, downtime=90.0),),
                drains=(ReplicaDrain(at=2400.0, replica=0),),
            ),
        )
    raise ValueError(f"unknown fault profile {name!r}; choose from {FAULT_PROFILES}")
