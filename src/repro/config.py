"""Run configuration for the serving simulator.

Three dataclasses describe a run:

* :class:`HardwareConfig` — the testbed (GPUs, interconnect, host memory,
  disks).  Defaults mirror the paper's testbed: 4 NVIDIA A100-80GB GPUs,
  PCIe Gen4 x16 at 26 GB/s effective, 128 GB DRAM, 10 TB SSD.
* :class:`StoreConfig` — AttentionStore sizing and policy knobs.
* :class:`EngineConfig` — serving-engine behaviour (mode, batching,
  truncation, overlap optimisations).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any

from .models import GiB, MiB, TiB, ModelSpec


@dataclass(frozen=True)
class GPUSpec:
    """A single GPU's capabilities.

    Defaults describe an NVIDIA A100-80GB: 312 TFLOPS dense FP16, 80 GB HBM
    at ~2 TB/s.  ``mfu`` is the model-FLOPs-utilisation achieved in practice;
    0.58 calibrates the roofline model so prefilling 2K tokens of LLaMA-65B
    on 4 GPUs takes ~360 ms as reported in Section 2.4 of the paper.
    """

    name: str = "a100-80g"
    peak_flops: float = 312e12
    hbm_bytes: int = 80 * GiB
    hbm_bandwidth: float = 2.0e12
    mfu: float = 0.58
    mbu: float = 0.70

    def __post_init__(self) -> None:
        if self.peak_flops <= 0:
            raise ValueError(f"peak_flops must be positive, got {self.peak_flops}")
        if self.hbm_bytes <= 0:
            raise ValueError(f"hbm_bytes must be positive, got {self.hbm_bytes}")
        if self.hbm_bandwidth <= 0:
            raise ValueError(
                f"hbm_bandwidth must be positive, got {self.hbm_bandwidth}"
            )
        if not (0.0 < self.mfu <= 1.0):
            raise ValueError(f"mfu must be in (0, 1], got {self.mfu}")
        if not (0.0 < self.mbu <= 1.0):
            raise ValueError(f"mbu must be in (0, 1], got {self.mbu}")


@dataclass(frozen=True)
class HardwareConfig:
    """The serving testbed.

    Bandwidths are *effective* (already discounted for protocol overhead):
    the paper measures 26 GB/s on 16 lanes of PCIe Gen4 and states the
    disks deliver just under 5 GB/s.
    """

    gpu: GPUSpec = field(default_factory=GPUSpec)
    num_gpus: int = 4
    pcie_bandwidth: float = 26e9
    ssd_bandwidth: float = 5e9
    dram_bytes: int = 128 * GiB
    ssd_bytes: int = 10 * TiB

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValueError(f"num_gpus must be positive, got {self.num_gpus}")
        for attr in ("pcie_bandwidth", "ssd_bandwidth"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        for attr in ("dram_bytes", "ssd_bytes"):
            if getattr(self, attr) < 0:
                raise ValueError(
                    f"{attr} must be non-negative, got {getattr(self, attr)}"
                )

    @property
    def total_hbm_bytes(self) -> int:
        return self.num_gpus * self.gpu.hbm_bytes

    def free_hbm_bytes(self, model: ModelSpec) -> int:
        """HBM left for KV caches after loading model weights."""
        free = self.total_hbm_bytes - model.weight_bytes
        if free <= 0:
            raise ValueError(
                f"model {model.name} ({model.weight_bytes / GiB:.0f} GiB) does "
                f"not fit in {self.total_hbm_bytes / GiB:.0f} GiB of HBM"
            )
        return free

    def for_model(self, model: ModelSpec) -> "HardwareConfig":
        """Return a copy sized with the model's default GPU count."""
        return replace(self, num_gpus=model.default_num_gpus)


class EvictionPolicyName(str, Enum):
    """Eviction policies available in AttentionStore."""

    SCHEDULER_AWARE = "scheduler-aware"
    LRU = "lru"
    FIFO = "fifo"


@dataclass(frozen=True)
class StoreConfig:
    """AttentionStore sizing and policy configuration.

    ``dram_bytes``/``ssd_bytes`` cap the two tiers.  ``block_bytes`` is the
    allocation granularity (Section 4.1: host memory and disks are managed
    in blocks, similar to vLLM's paged KV cache).  ``hbm_cache_bytes``
    optionally enables an HBM caching tier used only for the Figure 24
    storage-medium comparison.  ``ttl_seconds`` is the per-session
    time-to-live from Section 4.3.6.
    """

    dram_bytes: int = 128 * GiB
    ssd_bytes: int = 10 * TiB
    hbm_cache_bytes: int = 0
    block_bytes: int = 16 * MiB
    policy: EvictionPolicyName = EvictionPolicyName.SCHEDULER_AWARE
    enable_prefetch: bool = True
    # Cross-session KV sharing: content-addressed copy-on-write prefix
    # blocks.  When enabled, prefix-bearing sessions save their shared
    # prefix once per content hash and later sessions reuse it; has no
    # effect on workloads without shared prefixes.
    enable_sharing: bool = True
    # Per-session time-to-live (Section 4.3.6).  None disables expiry; the
    # paper's end-to-end runs are capacity-bound, with the TTL exercised
    # only in the cache-capacity study (Figure 23).
    ttl_seconds: float | None = None
    dram_buffer_fraction: float = 0.05
    # Fraction of DRAM the look-ahead prefetch window may fill; the rest is
    # headroom for KV saves of completing jobs, so prefetched caches are
    # not immediately evicted again by the save path (thrash control).
    prefetch_capacity_fraction: float = 0.7

    def __post_init__(self) -> None:
        if self.block_bytes <= 0:
            raise ValueError(f"block_bytes must be positive, got {self.block_bytes}")
        if self.dram_bytes < 0 or self.ssd_bytes < 0 or self.hbm_cache_bytes < 0:
            raise ValueError("tier capacities must be non-negative")
        if self.ttl_seconds is not None and self.ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be positive, got {self.ttl_seconds}")
        if not (0.0 <= self.dram_buffer_fraction < 1.0):
            raise ValueError(
                "dram_buffer_fraction must be in [0, 1), got "
                f"{self.dram_buffer_fraction}"
            )
        if not (0.0 < self.prefetch_capacity_fraction <= 1.0):
            raise ValueError(
                "prefetch_capacity_fraction must be in (0, 1], got "
                f"{self.prefetch_capacity_fraction}"
            )


class ServingMode(str, Enum):
    """End-to-end serving strategies compared in the paper.

    * ``RECOMPUTE`` (RE) — discard KV caches between turns; recompute the
      full history on each turn (the baseline).
    * ``CACHED`` (CA) — CachedAttention: save KV caches to AttentionStore
      on session deactivation, reuse on reactivation.
    """

    RECOMPUTE = "re"
    CACHED = "ca"


class TruncationPolicyName(str, Enum):
    """How context-window overflow is handled.

    * ``TOKEN`` — token truncation + full recomputation (TT / the RE path).
    * ``KV_DECOUPLED`` — CachedAttention's decoupled-positional-encoding KV
      truncation: saved KV stays valid (CA).
    * ``KV_EMBEDDED`` — KV saved with positions embedded; overflow
      invalidates the stored cache (the OF baseline of Figure 22).
    """

    TOKEN = "token"
    KV_DECOUPLED = "kv-decoupled"
    KV_EMBEDDED = "kv-embedded"


@dataclass(frozen=True)
class EngineConfig:
    """Serving-engine behaviour.

    ``truncation_ratio`` follows the paper's setting of 0.5 (on overflow the
    earliest half of the context is discarded).  ``read_buffer_layers`` and
    ``enable_async_save`` control the Section 3.2 overlap optimisations.
    ``decode_tokens_cap`` bounds per-turn decoding in the simulator.
    """

    mode: ServingMode = ServingMode.CACHED
    truncation: TruncationPolicyName = TruncationPolicyName.KV_DECOUPLED
    truncation_ratio: float = 0.5
    batch_size: int = 24
    enable_preload: bool = True
    read_buffer_layers: int = 15
    enable_async_save: bool = True
    write_buffer_layers: int = 15
    decode_chunk_iters: int = 32
    # Sarathi-style chunked prefill (the paper's [1]): split each prefill
    # into slices of roughly this many tokens and interleave decode
    # iterations between slices, so long prefills stop starving the
    # decoding batch.  None = prefill runs to completion (the paper's and
    # the default behaviour).
    chunked_prefill_tokens: int | None = None
    # Serving-path prefill efficiency relative to the Section 2.4
    # microbenchmark MFU.  The paper's end-to-end TTFT figures imply its
    # Transformers-based executor prefills at roughly a quarter of its own
    # microbenchmark rate (see EXPERIMENTS.md, "calibration").
    prefill_efficiency_factor: float = 0.25

    def __post_init__(self) -> None:
        if self.decode_chunk_iters <= 0:
            raise ValueError(
                f"decode_chunk_iters must be positive, got {self.decode_chunk_iters}"
            )
        if self.chunked_prefill_tokens is not None and self.chunked_prefill_tokens <= 0:
            raise ValueError(
                "chunked_prefill_tokens must be positive or None, got "
                f"{self.chunked_prefill_tokens}"
            )
        if not (0.0 < self.prefill_efficiency_factor <= 1.0):
            raise ValueError(
                "prefill_efficiency_factor must be in (0, 1], got "
                f"{self.prefill_efficiency_factor}"
            )
        if not (0.0 < self.truncation_ratio < 1.0):
            raise ValueError(
                f"truncation_ratio must be in (0, 1), got {self.truncation_ratio}"
            )
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.read_buffer_layers < 0 or self.write_buffer_layers < 0:
            raise ValueError("buffer layer counts must be non-negative")

    @classmethod
    def recompute_baseline(cls, **overrides: Any) -> "EngineConfig":
        """The RE baseline: no KV reuse, token truncation on overflow."""
        defaults: dict[str, Any] = dict(
            mode=ServingMode.RECOMPUTE,
            truncation=TruncationPolicyName.TOKEN,
        )
        defaults.update(overrides)
        return cls(**defaults)
