"""Sweep points and their outcomes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One unit of sweep work.

    ``key`` identifies the point — it names it in results, errors and
    logs, and seeds its random stream via
    :func:`~repro.runner.seeds.seed_for` — so keys must be unique within
    a sweep.  ``params`` is an arbitrary picklable payload interpreted by
    the worker (a config dict, a tuple of grid coordinates, ...).
    """

    key: str
    params: Any = None


@dataclass(slots=True)
class PointResult:
    """Outcome of one sweep point.

    Exactly one of ``value`` (success) or ``error`` (a formatted
    traceback, or a crash description when the worker process died) is
    meaningful; check :attr:`ok`.  ``duration`` is the point's own
    wall-clock seconds — informational only, deliberately excluded from
    equality so determinism tests can compare result lists directly.
    """

    key: str
    value: Any = None
    error: str | None = None
    duration: float = field(default=0.0, compare=False)

    @property
    def ok(self) -> bool:
        return self.error is None


class SweepError(RuntimeError):
    """Raised by :func:`unwrap` when any sweep point failed."""

    def __init__(self, failures: list[PointResult]) -> None:
        self.failures = failures
        lines = [f"{len(failures)} sweep point(s) failed:"]
        for result in failures:
            first_line = (result.error or "").strip().splitlines()[-1:]
            lines.append(f"  {result.key}: {first_line[0] if first_line else '?'}")
        super().__init__("\n".join(lines))


def unwrap(results: list[PointResult]) -> dict[str, Any]:
    """Map point key -> value, raising :class:`SweepError` on any failure.

    Benchmarks use this to fail fast with every failed point named,
    instead of crashing on the first ``None`` value downstream.
    """
    failures = [r for r in results if not r.ok]
    if failures:
        raise SweepError(failures)
    return {r.key: r.value for r in results}
