"""Process-parallel sweep execution.

``run_sweep`` is the one entry point.  Three properties it guarantees:

* **Determinism** — results are returned in point order regardless of
  completion order, each point's seed comes from
  :func:`~repro.runner.seeds.seed_for`, and ``jobs=1`` runs everything
  inline in the parent (the bit-identical reference a parallel run is
  tested against).
* **Spawn safety** — workers run under the ``spawn`` start method (the
  only one available everywhere and the only one that cannot inherit a
  forked copy of the parent's warmed-up caches, which would make results
  depend on parent state).  Workers and point params must therefore be
  picklable: module-level functions, no closures.
* **Crash containment** — an exception inside a worker is caught in the
  child and returned as that point's error; a worker process *dying*
  (OOM kill, segfault) breaks the pool, which surfaces as errors on the
  affected points while completed points keep their results.  A sweep
  never hangs on a lost worker.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Sequence

from .points import PointResult, SweepPoint
from .seeds import seed_for

#: A worker takes ``(point, seed)`` and returns the point's value.  It
#: must be defined at module level (spawn pickles it by reference).
SweepWorker = Callable[[SweepPoint, int], Any]

#: Set in every worker process so point code can detect it runs inside a
#: sweep (and e.g. keep any nested sweep of its own serial).
WORKER_ENV_FLAG = "REPRO_SWEEP_WORKER"


def in_sweep_worker() -> bool:
    """True when called from inside a sweep worker process."""
    return os.environ.get(WORKER_ENV_FLAG) == "1"


def _init_worker() -> None:
    os.environ[WORKER_ENV_FLAG] = "1"


def _execute_point(worker: SweepWorker, point: SweepPoint, seed: int) -> PointResult:
    """Run one point, capturing any exception as the point's error.

    Runs in the child for parallel sweeps and in the parent for
    ``jobs=1`` — same code path, so error semantics don't depend on the
    job count.
    """
    # The three perf_counter reads below time the *host-side* execution of
    # a sweep point for operator reporting; the value never feeds simulated
    # state or results, so determinism is unaffected.
    start = time.perf_counter()  # repro-lint: allow=wall-clock (host-side duration metric, never enters simulated state)
    try:
        value = worker(point, seed)
    except Exception:
        return PointResult(
            key=point.key,
            error=traceback.format_exc(),
            duration=time.perf_counter() - start,  # repro-lint: allow=wall-clock (host-side duration metric, never enters simulated state)
        )
    return PointResult(
        key=point.key,
        value=value,
        duration=time.perf_counter() - start,  # repro-lint: allow=wall-clock (host-side duration metric, never enters simulated state)
    )


def run_sweep(
    worker: SweepWorker,
    points: Iterable[SweepPoint],
    *,
    jobs: int = 1,
    base_seed: int = 0,
) -> list[PointResult]:
    """Execute every sweep point and return results in point order.

    Args:
        worker: module-level callable ``(point, seed) -> value``.
        points: the sweep grid; keys must be unique.
        jobs: worker processes; ``<= 1`` runs inline in this process.
        base_seed: experiment-level seed each point's seed derives from.
    """
    point_list = list(points)
    keys = [p.key for p in point_list]
    if len(set(keys)) != len(keys):
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        raise ValueError(f"duplicate sweep point keys: {dupes}")
    seeds = [seed_for(base_seed, p.key) for p in point_list]

    if jobs <= 1 or len(point_list) <= 1:
        return [
            _execute_point(worker, point, seed)
            for point, seed in zip(point_list, seeds)
        ]

    context = multiprocessing.get_context("spawn")
    results: list[PointResult | None] = [None] * len(point_list)
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(point_list)),
        mp_context=context,
        initializer=_init_worker,
    ) as pool:
        futures = [
            pool.submit(_execute_point, worker, point, seed)
            for point, seed in zip(point_list, seeds)
        ]
        for index, future in enumerate(futures):
            try:
                results[index] = future.result()
            except BrokenProcessPool:
                # The worker process died without returning (OOM kill,
                # segfault, interpreter abort).  Attribute the crash to
                # this point; sibling futures on the broken pool fail
                # the same way and get their own per-point error.
                results[index] = PointResult(
                    key=point_list[index].key,
                    error=(
                        "worker process crashed before returning "
                        "(BrokenProcessPool)"
                    ),
                )
            except Exception:  # defensive: pickling errors on the result
                results[index] = PointResult(
                    key=point_list[index].key, error=traceback.format_exc()
                )
    return [r for r in results if r is not None]
