"""Deterministic per-point seed derivation.

A sweep point's seed must be a pure function of the experiment's base seed
and the point's identity — never of worker id, submission order or wall
clock — so that re-running a sweep at any ``--jobs`` level, or re-running
a single failed point by itself, reproduces the same random stream.
"""

from __future__ import annotations

import hashlib

_MASK_63 = (1 << 63) - 1


def seed_for(base_seed: int, point_key: str) -> int:
    """Derive a 63-bit seed for one sweep point.

    SHA-256 over ``"{base_seed}:{point_key}"`` keeps distinct points'
    streams independent (unlike ``base_seed + index`` schemes, where
    neighbouring points get correlated low bits) and is stable across
    Python processes and versions — ``hash()`` is salted per process and
    would break spawn-based workers.
    """
    digest = hashlib.sha256(f"{base_seed}:{point_key}".encode()).digest()
    # Keep it non-negative and within range for every consumer
    # (random.Random accepts anything, numpy wants < 2**64).
    return int.from_bytes(digest[:8], "big") & _MASK_63
