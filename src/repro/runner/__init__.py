"""Deterministic parallel experiment runner.

The paper's evaluation is a grid of independent serving runs (policies x
storage sizes x models).  Each point is a pure function of its
configuration, so the grid parallelises across processes without changing
any result — this package supplies the harness:

* :func:`~repro.runner.seeds.seed_for` — per-point seed derivation, so a
  point's random stream depends only on ``(base_seed, point key)`` and
  never on which worker ran it or in what order;
* :class:`~repro.runner.points.SweepPoint` /
  :class:`~repro.runner.points.PointResult` — the unit of work and its
  outcome (value or captured error);
* :func:`~repro.runner.runner.run_sweep` — execute points inline
  (``jobs=1``, the bit-identical reference) or across a spawn-based
  process pool, returning results in point order with worker crashes
  surfaced as per-point errors rather than a hung sweep.
"""

from .points import PointResult, SweepError, SweepPoint, unwrap
from .runner import in_sweep_worker, run_sweep
from .seeds import seed_for

__all__ = [
    "PointResult",
    "SweepError",
    "SweepPoint",
    "in_sweep_worker",
    "run_sweep",
    "seed_for",
    "unwrap",
]
