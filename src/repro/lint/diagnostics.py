"""Lint findings and their presentation."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One lint finding, anchored to a source location.

    ``rule`` is the rule's kebab-case name (e.g. ``"wall-clock"``);
    ``message`` states the violation and, where useful, the fix.
    Diagnostics order by location so reports are stable regardless of the
    rule execution order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Render as a ``path:line:col: [rule] message`` report line."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


def format_report(diagnostics: list[Diagnostic]) -> str:
    """Render a full report: sorted findings plus a per-rule tally."""
    if not diagnostics:
        return "repro-lint: clean"
    ordered = sorted(diagnostics, key=Diagnostic.sort_key)
    lines = [diag.format() for diag in ordered]
    tally: dict[str, int] = {}
    for diag in ordered:
        tally[diag.rule] = tally.get(diag.rule, 0) + 1
    summary = ", ".join(f"{rule}: {count}" for rule, count in sorted(tally.items()))
    lines.append(f"repro-lint: {len(ordered)} finding(s) ({summary})")
    return "\n".join(lines)
