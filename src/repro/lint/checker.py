"""File walking, suppression handling and the public lint entry points."""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from .config import LintConfig, load_config
from .diagnostics import Diagnostic
from .rules import ALL_RULE_NAMES, RULES

#: Inline suppression: ``# repro-lint: allow=<rule>[,<rule>...] (<why>)``.
#: The parenthesised justification is mandatory — a suppression that cannot
#: say why it is safe is itself a finding (``bare-allow``).
_ALLOW_RE = re.compile(
    r"#\s*repro-lint:\s*allow=(?P<rules>[a-z0-9,-]+)"
    r"(?:\s*\((?P<why>[^)]*)\))?"
)

BARE_ALLOW = "bare-allow"
UNUSED_SUPPRESSION = "unused-suppression"


def statement_spans(tree: ast.Module) -> dict[int, tuple[int, int]]:
    """Map each source line to the line span of its enclosing statement.

    Simple statements span all their physical lines; compound statements
    (defs, classes, ifs, loops) contribute only their *header* lines —
    decorators through the line before the first body statement — so a
    suppression inside a function body never leaks onto the whole def.
    The map lets a suppression comment anywhere on a multi-line statement
    (or on a decorator line) cover findings anchored at the statement's
    first line, and vice versa.
    """
    spans: dict[int, tuple[int, int]] = {}

    def claim(start: int, end: int) -> None:
        if end < start:
            end = start
        for line in range(start, end + 1):
            spans[line] = (start, end)

    # Compound headers first; simple statements then override any overlap
    # (e.g. a same-line ``if x: y = 1`` body) with their tighter span.
    simple: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        decorators = getattr(node, "decorator_list", None)
        if decorators:
            start = min(start, *(d.lineno for d in decorators))
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            claim(start, max(start, body[0].lineno - 1))
        else:
            end = node.end_lineno if node.end_lineno is not None else start
            simple.append((start, end))
    for start, end in simple:
        claim(start, end)
    return spans


class SpanAllows:
    """Suppression matching over statement spans, with usage tracking.

    Built either from source text plus a parsed tree, or (for the flow
    analyzer's cached summaries) from pre-extracted ``(line, rules)``
    pairs and spans.  ``allows`` records which comments matched so the
    ``--unused-suppressions`` audit can report the ones that never fire.
    """

    def __init__(
        self,
        by_line: dict[int, frozenset[str]],
        spans: dict[int, tuple[int, int]],
    ) -> None:
        self.by_line = by_line
        self.spans = spans
        self.used: set[tuple[int, str]] = set()

    def _candidates(self, line: int) -> Iterator[int]:
        span = self.spans.get(line)
        if span is None:
            yield line
            return
        yield from range(span[0], span[1] + 1)

    def allows(self, line: int, rule: str) -> bool:
        """Whether a finding of ``rule`` anchored at ``line`` is allowed."""
        for candidate in self._candidates(line):
            allowed = self.by_line.get(candidate)
            if allowed is not None and rule in allowed:
                self.used.add((candidate, rule))
                return True
        return False

    def unused(self, path: str) -> list[Diagnostic]:
        """Suppression comments whose rule never fired on their statement."""
        out: list[Diagnostic] = []
        for line, rules in sorted(self.by_line.items()):
            for rule in sorted(rules):
                if rule not in ALL_RULE_NAMES:
                    continue  # already reported as a bare-allow finding
                if (line, rule) not in self.used:
                    out.append(
                        Diagnostic(
                            path,
                            line,
                            0,
                            UNUSED_SUPPRESSION,
                            f"suppression for '{rule}' never fires on this "
                            "statement; remove the dead allow comment",
                        )
                    )
        return out


class Suppressions:
    """Per-file suppression comments: parse, validate, match."""

    def __init__(
        self, path: str, source: str, tree: ast.Module | None = None
    ) -> None:
        by_line: dict[int, frozenset[str]] = {}
        self.bare: list[Diagnostic] = []
        self.unknown: list[Diagnostic] = []
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _ALLOW_RE.search(text)
            if match is None:
                continue
            rules = frozenset(
                name for name in match.group("rules").split(",") if name
            )
            why = (match.group("why") or "").strip()
            if not why:
                self.bare.append(
                    Diagnostic(
                        path,
                        lineno,
                        match.start(),
                        BARE_ALLOW,
                        "suppression without a justification; write "
                        "`# repro-lint: allow=<rule> (<why this is safe>)`",
                    )
                )
                continue
            for name in sorted(rules):
                if name not in ALL_RULE_NAMES:
                    self.unknown.append(
                        Diagnostic(
                            path,
                            lineno,
                            match.start(),
                            BARE_ALLOW,
                            f"suppression names unknown rule '{name}'",
                        )
                    )
            by_line[lineno] = rules
        spans = statement_spans(tree) if tree is not None else {}
        self.matcher = SpanAllows(by_line, spans)

    @property
    def by_line(self) -> dict[int, frozenset[str]]:
        return self.matcher.by_line

    def allows(self, line: int, rule: str) -> bool:
        return self.matcher.allows(line, rule)


def lint_module(
    source: str,
    path: str = "<string>",
    module: str = "",
    config: LintConfig | None = None,
) -> tuple[list[Diagnostic], Suppressions | None]:
    """Lint one module; return (diagnostics, suppression state).

    The suppression state is ``None`` when the module failed to parse.
    """
    cfg = config if config is not None else LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        line = exc.lineno if exc.lineno is not None else 1
        col = exc.offset if exc.offset is not None else 0
        return [Diagnostic(path, line, col, "syntax-error", str(exc.msg))], None
    suppressions = Suppressions(path, source, tree)
    diagnostics: list[Diagnostic] = [*suppressions.bare, *suppressions.unknown]
    for rule in RULES:
        if rule.name in cfg.disable:
            continue
        if not rule.applies_to(module, cfg):
            continue
        for finding in rule.check(tree, module, cfg):
            if suppressions.allows(finding.line, rule.name):
                continue
            diagnostics.append(
                Diagnostic(path, finding.line, finding.col, rule.name, finding.message)
            )
    diagnostics.sort(key=Diagnostic.sort_key)
    return diagnostics, suppressions


def lint_source(
    source: str,
    path: str = "<string>",
    module: str = "",
    config: LintConfig | None = None,
) -> list[Diagnostic]:
    """Lint one module given as text.

    ``module`` is the dotted module name used for scope decisions; tests
    pass it explicitly to pull fixture snippets into (or out of) the
    hot-path/cluster scopes.
    """
    diagnostics, _ = lint_module(source, path=path, module=module, config=config)
    return diagnostics


def module_name_for(path: Path) -> str:
    """Infer the dotted module name from a file path.

    Anchors on the last ``repro`` path component so both installed layouts
    and the in-repo ``src/repro`` tree resolve to ``repro.<...>`` names.
    """
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        mod_parts = parts[idx:]
    else:
        mod_parts = [parts[-1]]
    if mod_parts and mod_parts[-1] == "__init__":
        mod_parts = mod_parts[:-1]
    return ".".join(mod_parts) if mod_parts else path.stem


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield every .py file under ``paths`` in sorted order."""
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def read_python_source(path: Path) -> str:
    """Read a module's text, tolerating a UTF-8 byte-order mark.

    ``ast.parse`` rejects a leading U+FEFF in str input even though the
    file is a valid Python source; decoding as utf-8-sig strips it.
    """
    return path.read_text(encoding="utf-8-sig")


def lint_paths(
    paths: Iterable[Path],
    config: LintConfig | None = None,
    *,
    suppressions_out: dict[str, Suppressions] | None = None,
) -> list[Diagnostic]:
    """Lint files/trees; loads ``[tool.repro-lint]`` when no config given.

    ``suppressions_out``, when given, collects each file's suppression
    state (keyed by path) for the ``--unused-suppressions`` audit.
    """
    path_list = [Path(p) for p in paths]
    cfg = config
    if cfg is None:
        start = path_list[0] if path_list else Path.cwd()
        cfg = load_config(start)
    diagnostics: list[Diagnostic] = []
    for file_path in iter_python_files(path_list):
        source = read_python_source(file_path)
        file_diags, suppressions = lint_module(
            source,
            path=str(file_path),
            module=module_name_for(file_path),
            config=cfg,
        )
        diagnostics.extend(file_diags)
        if suppressions_out is not None and suppressions is not None:
            suppressions_out[str(file_path)] = suppressions
    diagnostics.sort(key=Diagnostic.sort_key)
    return diagnostics


def unused_suppression_report(
    suppression_sets: Sequence[Mapping[str, Suppressions | SpanAllows]],
) -> list[Diagnostic]:
    """Merge usage across analysis layers; report never-firing allows.

    A comment is *used* when any layer (per-file rules, flow passes)
    matched it; only comments unused by every layer are dead.
    """
    comments: dict[tuple[str, int], set[str]] = {}
    used: set[tuple[str, int, str]] = set()
    matchers: dict[str, list[SpanAllows]] = {}
    for layer in suppression_sets:
        for path, entry in layer.items():
            matcher = entry.matcher if isinstance(entry, Suppressions) else entry
            matchers.setdefault(path, []).append(matcher)
            for line, rules in matcher.by_line.items():
                comments.setdefault((path, line), set()).update(rules)
            for line, rule in matcher.used:
                used.add((path, line, rule))
    out: list[Diagnostic] = []
    for (path, line), rules in sorted(comments.items()):
        for rule in sorted(rules):
            if rule not in ALL_RULE_NAMES:
                continue
            if (path, line, rule) not in used:
                out.append(
                    Diagnostic(
                        path,
                        line,
                        0,
                        UNUSED_SUPPRESSION,
                        f"suppression for '{rule}' never fires on this "
                        "statement; remove the dead allow comment",
                    )
                )
    out.sort(key=Diagnostic.sort_key)
    return out


def run_lint(argv: list[str] | None = None) -> int:
    """CLI entry: lint the given paths, print a report, return exit status."""
    import argparse

    from .diagnostics import format_report

    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="simulator-specific static analysis over src/repro",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="run the whole-program analyzer (call-graph taint, epoch "
        "guards, store-protocol typestate, batch races) instead of the "
        "per-file rules",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (json/sarif include baselined findings)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="flow baseline file (default: [tool.repro-lint.flow] "
        "baseline, resolved against the pyproject root)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the flow baseline from the current findings; "
        "ratcheted — refuses to add entries unless "
        "REPRO_LINT_BASELINE_GROW=1",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the flow summary cache",
    )
    parser.add_argument(
        "--unused-suppressions",
        action="store_true",
        help="audit mode: report `# repro-lint: allow=` comments whose "
        "rule never fires on their statement (add --flow to credit "
        "flow-rule suppressions too)",
    )
    args = parser.parse_args(argv)
    paths = [Path(p) for p in args.paths]
    config = load_config(paths[0] if paths else Path.cwd())

    if args.unused_suppressions:
        per_file: dict[str, Suppressions] = {}
        lint_paths(paths, config, suppressions_out=per_file)
        layers: list[Mapping[str, Suppressions | SpanAllows]] = [per_file]
        if args.flow:
            from .flow import analyze_paths

            flow_result = analyze_paths(
                paths, config, use_cache=not args.no_cache
            )
            layers.append(flow_result.suppressions)
        dead = unused_suppression_report(layers)
        print(format_report(dead))
        return 1 if dead else 0

    if args.flow:
        from .flow import run_flow

        return run_flow(
            paths,
            config,
            report_format=args.format,
            baseline_path=args.baseline,
            write_baseline=args.write_baseline,
            use_cache=not args.no_cache,
        )

    diagnostics = lint_paths(paths, config)
    if args.format == "json":
        from .flow.output import findings_json

        print(findings_json(diagnostics, baselined=[], limits={}))
    elif args.format == "sarif":
        from .flow.output import findings_sarif

        print(findings_sarif(diagnostics, baselined=[]))
    else:
        print(format_report(diagnostics))
    return 1 if diagnostics else 0
