"""File walking, suppression handling and the public lint entry points."""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Iterator

from .config import LintConfig, load_config
from .diagnostics import Diagnostic
from .rules import RULES, RULES_BY_NAME

#: Inline suppression: ``# repro-lint: allow=<rule>[,<rule>...] (<why>)``.
#: The parenthesised justification is mandatory — a suppression that cannot
#: say why it is safe is itself a finding (``bare-allow``).
_ALLOW_RE = re.compile(
    r"#\s*repro-lint:\s*allow=(?P<rules>[a-z0-9,-]+)"
    r"(?:\s*\((?P<why>[^)]*)\))?"
)

BARE_ALLOW = "bare-allow"


class Suppressions:
    """Per-file map of line number -> allowed rule names."""

    def __init__(self, path: str, source: str) -> None:
        self.by_line: dict[int, frozenset[str]] = {}
        self.bare: list[Diagnostic] = []
        self.unknown: list[Diagnostic] = []
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _ALLOW_RE.search(text)
            if match is None:
                continue
            rules = frozenset(
                name for name in match.group("rules").split(",") if name
            )
            why = (match.group("why") or "").strip()
            if not why:
                self.bare.append(
                    Diagnostic(
                        path,
                        lineno,
                        match.start(),
                        BARE_ALLOW,
                        "suppression without a justification; write "
                        "`# repro-lint: allow=<rule> (<why this is safe>)`",
                    )
                )
                continue
            for name in rules:
                if name not in RULES_BY_NAME:
                    self.unknown.append(
                        Diagnostic(
                            path,
                            lineno,
                            match.start(),
                            BARE_ALLOW,
                            f"suppression names unknown rule '{name}'",
                        )
                    )
            self.by_line[lineno] = rules

    def allows(self, line: int, rule: str) -> bool:
        allowed = self.by_line.get(line)
        return allowed is not None and rule in allowed


def lint_source(
    source: str,
    path: str = "<string>",
    module: str = "",
    config: LintConfig | None = None,
) -> list[Diagnostic]:
    """Lint one module given as text.

    ``module`` is the dotted module name used for scope decisions; tests
    pass it explicitly to pull fixture snippets into (or out of) the
    hot-path/cluster scopes.
    """
    cfg = config if config is not None else LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        line = exc.lineno if exc.lineno is not None else 1
        col = exc.offset if exc.offset is not None else 0
        return [Diagnostic(path, line, col, "syntax-error", str(exc.msg))]
    suppressions = Suppressions(path, source)
    diagnostics: list[Diagnostic] = [*suppressions.bare, *suppressions.unknown]
    for rule in RULES:
        if rule.name in cfg.disable:
            continue
        if not rule.applies_to(module, cfg):
            continue
        for finding in rule.check(tree, module, cfg):
            if suppressions.allows(finding.line, rule.name):
                continue
            diagnostics.append(
                Diagnostic(path, finding.line, finding.col, rule.name, finding.message)
            )
    diagnostics.sort(key=Diagnostic.sort_key)
    return diagnostics


def module_name_for(path: Path) -> str:
    """Infer the dotted module name from a file path.

    Anchors on the last ``repro`` path component so both installed layouts
    and the in-repo ``src/repro`` tree resolve to ``repro.<...>`` names.
    """
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        mod_parts = parts[idx:]
    else:
        mod_parts = [parts[-1]]
    if mod_parts and mod_parts[-1] == "__init__":
        mod_parts = mod_parts[:-1]
    return ".".join(mod_parts) if mod_parts else path.stem


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield every .py file under ``paths`` in sorted order."""
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Iterable[Path], config: LintConfig | None = None
) -> list[Diagnostic]:
    """Lint files/trees; loads ``[tool.repro-lint]`` when no config given."""
    path_list = [Path(p) for p in paths]
    cfg = config
    if cfg is None:
        start = path_list[0] if path_list else Path.cwd()
        cfg = load_config(start)
    diagnostics: list[Diagnostic] = []
    for file_path in iter_python_files(path_list):
        source = file_path.read_text(encoding="utf-8")
        diagnostics.extend(
            lint_source(
                source,
                path=str(file_path),
                module=module_name_for(file_path),
                config=cfg,
            )
        )
    diagnostics.sort(key=Diagnostic.sort_key)
    return diagnostics


def run_lint(argv: list[str] | None = None) -> int:
    """CLI entry: lint the given paths, print a report, return exit status."""
    import argparse

    from .diagnostics import format_report

    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="simulator-specific static analysis over src/repro",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    args = parser.parse_args(argv)
    diagnostics = lint_paths([Path(p) for p in args.paths])
    print(format_report(diagnostics))
    return 1 if diagnostics else 0
