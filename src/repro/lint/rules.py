"""The rule catalogue.

Each rule is an AST pass with a stable kebab-case name and a REPxxx code:

======  ==================  ====================================================
code    name                what it enforces
======  ==================  ====================================================
REP101  wall-clock          no wall-clock reads (``time.time`` & friends)
REP102  unseeded-random     no unseeded or global-state randomness
REP103  hash-order          no builtin ``hash()`` (salted per process)
REP104  set-order           no iteration over set displays/constructors
REP201  float-eq            no ``==``/``!=`` against floats on hot paths
REP301  slots-required      hot-path dataclasses must declare ``slots=True``
REP501  untyped-def         every def fully annotated (params + return)
REP401  cluster-isolation   cluster code uses only the store migration API
======  ==================  ====================================================

Rules are pure: they take a parsed module plus its dotted name and yield
``Finding`` tuples; file IO, suppression handling and reporting live in
:mod:`repro.lint.checker`.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from typing import ClassVar, Iterator, NamedTuple

from .config import LintConfig


class Finding(NamedTuple):
    """A raw rule hit before suppression filtering."""

    line: int
    col: int
    message: str


def _at(node: ast.AST, message: str) -> Finding:
    return Finding(node.lineno, node.col_offset, message)


def collect_import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted module/object paths they bind.

    ``import numpy as np`` binds ``np -> numpy``; ``from time import
    perf_counter as pc`` binds ``pc -> time.perf_counter``.  Function-level
    imports are included too — an alias map that is slightly over-broad is
    fine for ban-list rules.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def resolve_dotted(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Resolve an attribute chain to a dotted path, honouring imports.

    Returns e.g. ``"time.perf_counter"`` for ``pc()`` after ``from time
    import perf_counter as pc``, or None when the root is not an imported
    name (a local variable, a call result, ...).
    """
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    root = aliases.get(cur.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


class Rule(ABC):
    """Base class for lint rules."""

    name: ClassVar[str]
    code: ClassVar[str]
    summary: ClassVar[str]

    def applies_to(self, module: str, config: LintConfig) -> bool:
        """Whether this rule runs against ``module`` at all."""
        return True

    @abstractmethod
    def check(
        self, tree: ast.Module, module: str, config: LintConfig
    ) -> Iterator[Finding]:
        """Yield findings for one parsed module."""


# ---------------------------------------------------------------------------
# Determinism rules (REP1xx)
# ---------------------------------------------------------------------------

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule(Rule):
    """Simulated time comes from ``SimClock``; wall clocks leak host state
    into results and break replayability."""

    name = "wall-clock"
    code = "REP101"
    summary = "wall-clock read in simulator code"

    def check(
        self, tree: ast.Module, module: str, config: LintConfig
    ) -> Iterator[Finding]:
        aliases = collect_import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, aliases)
            if dotted in _WALL_CLOCK_CALLS:
                yield _at(
                    node,
                    f"wall-clock call {dotted}(); use the SimClock "
                    "(sim.now) so runs stay replayable",
                )


# Module-level functions drawing from (or reseeding) hidden global RNG state.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "paretovariate",
        "vonmisesvariate",
        "triangular",
        "getrandbits",
        "seed",
    }
)

_NUMPY_GLOBAL_RANDOM_FNS = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "lognormal",
        "exponential",
        "poisson",
        "seed",
    }
)

_ALWAYS_NONDETERMINISTIC_CALLS = frozenset(
    {
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "random.SystemRandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbelow",
        "secrets.choice",
    }
)

# Constructors that are fine *with* an explicit seed but entropy-seeded
# without one.
_SEEDABLE_CONSTRUCTORS = frozenset({"random.Random", "numpy.random.default_rng"})


class UnseededRandomRule(Rule):
    """All randomness must flow from an explicit seed: ``random.Random(seed)``
    or ``numpy.random.default_rng(seed)`` (see ``repro.runner.seeds``)."""

    name = "unseeded-random"
    code = "REP102"
    summary = "unseeded or global-state randomness"

    def check(
        self, tree: ast.Module, module: str, config: LintConfig
    ) -> Iterator[Finding]:
        aliases = collect_import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, aliases)
            if dotted is None:
                continue
            if dotted in _ALWAYS_NONDETERMINISTIC_CALLS:
                yield _at(
                    node,
                    f"{dotted}() is entropy-backed; derive values from the "
                    "run seed instead (repro.runner.seeds.seed_for)",
                )
            elif dotted in _SEEDABLE_CONSTRUCTORS and not node.args:
                seed_kw = any(k.arg in ("seed", "x") for k in node.keywords)
                if not seed_kw:
                    yield _at(
                        node,
                        f"{dotted}() without a seed is entropy-seeded; pass "
                        "an explicit seed",
                    )
            elif (
                dotted.startswith("random.")
                and dotted.removeprefix("random.") in _GLOBAL_RANDOM_FNS
            ):
                yield _at(
                    node,
                    f"{dotted}() draws from the process-global RNG; use a "
                    "seeded random.Random instance",
                )
            elif (
                dotted.startswith("numpy.random.")
                and dotted.removeprefix("numpy.random.")
                in _NUMPY_GLOBAL_RANDOM_FNS
            ):
                yield _at(
                    node,
                    f"{dotted}() uses numpy's global RNG; use a seeded "
                    "numpy.random.default_rng(seed) Generator",
                )


class HashOrderRule(Rule):
    """``hash()`` of str/bytes is salted per process (PYTHONHASHSEED), so any
    hash-derived value or ordering differs between runs."""

    name = "hash-order"
    code = "REP103"
    summary = "builtin hash() is salted per process"

    def check(
        self, tree: ast.Module, module: str, config: LintConfig
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield _at(
                    node,
                    "builtin hash() is salted per process; use a stable "
                    "digest (hashlib, cf. repro.runner.seeds.seed_for)",
                )
                continue
            if isinstance(node, ast.keyword) and node.arg == "key":
                if isinstance(node.value, ast.Name) and node.value.id == "hash":
                    yield _at(
                        node.value,
                        "sorting by builtin hash() is salted per process; "
                        "use a stable key",
                    )


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        # set algebra: `a & b`, `a - b` — only a set hint when an operand
        # is itself syntactically a set.
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class SetOrderRule(Rule):
    """Iterating a set yields hash order, which is salted per process; any
    ordered state derived from it diverges between runs.  Wrap in
    ``sorted(...)`` or keep it as membership-only."""

    name = "set-order"
    code = "REP104"
    summary = "iteration over a set feeds ordered state"

    def check(
        self, tree: ast.Module, module: str, config: LintConfig
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple", "enumerate", "iter", "next")
                and node.args
            ):
                iters.append(node.args[0])
            for it in iters:
                if _is_set_expr(it):
                    yield _at(
                        it,
                        "iterating a set yields salted hash order; wrap in "
                        "sorted(...) before it feeds ordered state",
                    )


# ---------------------------------------------------------------------------
# Float safety (REP2xx)
# ---------------------------------------------------------------------------


def _is_float_operand(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_float_operand(node.operand)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        # True division always produces a float.
        return True
    return False


class FloatEqRule(Rule):
    """Simulated times/bytes-per-second accumulate rounding error; exact
    equality on floats encodes an assumption one refactor away from false.
    Compare with a tolerance or restructure around the zero/nonzero case."""

    name = "float-eq"
    code = "REP201"
    summary = "exact float equality on a hot path"

    def applies_to(self, module: str, config: LintConfig) -> bool:
        return config.in_scope(module, config.hot_path_packages)

    def check(
        self, tree: ast.Module, module: str, config: LintConfig
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for left, op, right in zip(
                operands[:-1], node.ops, operands[1:], strict=True
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_operand(left) or _is_float_operand(right):
                    yield _at(
                        node,
                        "exact ==/!= against a float; use math.isclose, an "
                        "explicit tolerance, or a </<= restructure",
                    )
                    break


# ---------------------------------------------------------------------------
# Hot-path hygiene (REP3xx)
# ---------------------------------------------------------------------------


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    """Return the @dataclass decorator expression, if present."""
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return dec
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return dec
    return None


class SlotsRule(Rule):
    """Hot-path dataclasses are allocated per event/turn; ``slots=True``
    removes the per-instance ``__dict__`` (smaller, faster attribute access)
    and turns attribute typos into hard errors."""

    name = "slots-required"
    code = "REP301"
    summary = "hot-path dataclass without slots=True"

    def applies_to(self, module: str, config: LintConfig) -> bool:
        return config.in_scope(module, config.slots_packages)

    def check(
        self, tree: ast.Module, module: str, config: LintConfig
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            dec = _dataclass_decorator(node)
            if dec is None:
                continue
            has_slots = isinstance(dec, ast.Call) and any(
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in dec.keywords
            )
            if not has_slots:
                yield _at(
                    node,
                    f"dataclass {node.name} in a hot-path package must "
                    "declare slots=True",
                )


# ---------------------------------------------------------------------------
# Isolation (REP4xx)
# ---------------------------------------------------------------------------


class ClusterIsolationRule(Rule):
    """Cluster code coordinates replicas; it must not reach into a replica's
    AttentionStore internals.  The exactly-one-copy invariant (paper §3.3)
    is only auditable if every cross-replica KV movement goes through the
    migration API."""

    name = "cluster-isolation"
    code = "REP401"
    summary = "cluster code bypasses the store migration API"

    def applies_to(self, module: str, config: LintConfig) -> bool:
        return config.in_scope(module, config.cluster_packages)

    def check(
        self, tree: ast.Module, module: str, config: LintConfig
    ) -> Iterator[Finding]:
        allowed = config.store_migration_api
        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            value = node.value
            if isinstance(value, ast.Attribute) and value.attr == "store":
                if node.attr not in allowed:
                    api = ", ".join(sorted(allowed))
                    yield _at(
                        node,
                        f"cluster code touches .store.{node.attr}; a "
                        f"replica's store may only be reached via the "
                        f"migration API ({api})",
                    )


# ---------------------------------------------------------------------------
# Typing (REP5xx)
# ---------------------------------------------------------------------------


class UntypedDefRule(Rule):
    """Local, dependency-free stand-in for ``mypy --strict``'s
    ``disallow_untyped_defs``: every function must annotate its return type
    and every parameter (``self``/``cls`` excepted)."""

    name = "untyped-def"
    code = "REP501"
    summary = "function missing parameter or return annotations"

    def check(
        self, tree: ast.Module, module: str, config: LintConfig
    ) -> Iterator[Finding]:
        # Track which defs are methods (direct children of a class body) so
        # the first self/cls parameter can go unannotated.
        method_defs: set[ast.AST] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                method_defs.update(
                    stmt
                    for stmt in node.body
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                )
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            missing: list[str] = []
            if node.returns is None:
                missing.append("return")
            args = node.args
            positional = [*args.posonlyargs, *args.args]
            skip_first = (
                node in method_defs
                and positional
                and positional[0].arg in ("self", "cls")
                and not any(
                    isinstance(d, ast.Name) and d.id == "staticmethod"
                    for d in node.decorator_list
                )
            )
            params = positional[1:] if skip_first else positional
            params = [*params, *args.kwonlyargs]
            if args.vararg is not None:
                params.append(args.vararg)
            if args.kwarg is not None:
                params.append(args.kwarg)
            missing.extend(
                f"parameter '{p.arg}'" for p in params if p.annotation is None
            )
            if missing:
                yield Finding(
                    node.lineno,
                    node.col_offset,
                    f"def {node.name} missing annotations: "
                    + ", ".join(missing),
                )


#: All rules, in reporting order.
RULES: tuple[Rule, ...] = (
    WallClockRule(),
    UnseededRandomRule(),
    HashOrderRule(),
    SetOrderRule(),
    FloatEqRule(),
    SlotsRule(),
    ClusterIsolationRule(),
    UntypedDefRule(),
)

RULES_BY_NAME: dict[str, Rule] = {rule.name: rule for rule in RULES}

# ---------------------------------------------------------------------------
# Interprocedural (flow) rules — implemented in repro.lint.flow
# ---------------------------------------------------------------------------

#: Rule names emitted by the whole-program analyzer (``repro lint --flow``).
#: Registered here so inline suppressions naming them validate, and so the
#: config layer can check ``disable`` entries without importing the (much
#: heavier) flow package.
#:
#: ======  ====================  ==============================================
#: code    name                  what it enforces
#: ======  ====================  ==============================================
#: REP601  flow-wall-clock       no call path reaches a wall-clock read
#: REP602  flow-unseeded-random  no call path reaches global/unseeded RNG
#: REP603  flow-order            no call path reaches hash/set-order state
#: REP611  epoch-guard           epoch-slotted continuations guard their fire
#: REP621  store-protocol        exactly-one-copy store lifecycle typestate
#: REP631  batch-race            same-timestamp handlers with effect conflicts
#: ======  ====================  ==============================================
FLOW_RULE_CODES: dict[str, str] = {
    "flow-wall-clock": "REP601",
    "flow-unseeded-random": "REP602",
    "flow-order": "REP603",
    "epoch-guard": "REP611",
    "store-protocol": "REP621",
    "batch-race": "REP631",
}

FLOW_RULE_NAMES: frozenset[str] = frozenset(FLOW_RULE_CODES)

#: Every rule name a config or suppression may legally reference.
ALL_RULE_NAMES: frozenset[str] = frozenset(RULES_BY_NAME) | FLOW_RULE_NAMES

#: Option keys each rule accepts in ``[tool.repro-lint.rule-options.<rule>]``.
#: Rules without an entry accept no options; naming one is a config error.
RULE_OPTION_KEYS: dict[str, frozenset[str]] = {
    "store-protocol": frozenset({"max-paths"}),
    "batch-race": frozenset({"ignore-attrs"}),
    "epoch-guard": frozenset({"benign-calls"}),
}
