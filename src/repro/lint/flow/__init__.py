"""Whole-program (interprocedural) analysis for the simulator tree.

Four passes over a project-wide symbol table and call graph, sharing the
per-file linter's diagnostics/config/suppression machinery:

* transitive determinism taint (``flow-wall-clock`` /
  ``flow-unseeded-random`` / ``flow-order``),
* epoch-guard verification for continuation classes (``epoch-guard``),
* store-protocol typestate for the exactly-one-copy lifecycle
  (``store-protocol``),
* same-timestamp batch-race detection (``batch-race``).

Entry points: ``repro lint --flow`` / ``python -m repro.lint --flow``.
"""

from .analyzer import FlowResult, analyze_paths, run_flow
from .baseline import FlowFinding
from .project import ProjectIndex, load_project, summarize_module

__all__ = [
    "FlowFinding",
    "FlowResult",
    "ProjectIndex",
    "analyze_paths",
    "load_project",
    "run_flow",
    "summarize_module",
]
