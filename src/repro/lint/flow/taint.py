"""Transitive determinism taint (flow-wall-clock / flow-unseeded-random /
flow-order).

Direct hits of the per-file determinism rules seed the taint; taint then
propagates backwards over the call graph, so ``def _now(): return
time.time()`` flags every transitive caller at its call site.  Silence
propagates the same way the taint does:

* a justified ``allow`` on the *source* line removes the seed entirely —
  the helper is vouched for, so no caller is flagged;
* a justified ``allow`` on a *call site* suppresses that site's finding
  and stops the taint from flowing through that edge (the caller may
  still be tainted via a different callee).
"""

from __future__ import annotations

from dataclasses import dataclass

from .baseline import FlowFinding
from .callgraph import CallGraph
from .project import ProjectIndex


@dataclass(frozen=True, slots=True)
class Taint:
    """Taint state of one function for one flow rule."""

    rule: str
    #: Where the underlying direct finding lives.
    origin_path: str
    origin_line: int
    detail: str
    #: Call chain from this function down to the direct source.
    chain: tuple[str, ...]


def _short(fid: str) -> str:
    module, _, suffix = fid.partition(":")
    tail = module.rsplit(".", 1)[-1]
    return f"{tail}.{suffix}" if suffix != "<module>" else tail


def seed_taints(index: ProjectIndex) -> dict[str, dict[str, Taint]]:
    """Per-function taint seeds from unsuppressed direct findings."""
    seeds: dict[str, dict[str, Taint]] = {}
    for module in sorted(index.summaries):
        summary = index.summaries[module]
        if summary["error"] is not None:
            continue
        for suffix in sorted(summary["functions"]):
            fn = summary["functions"][suffix]
            fid = f"{module}:{suffix}"
            for taint in fn["taints"]:
                if taint["suppressed"]:
                    continue
                rule = str(taint["rule"])
                if rule in seeds.get(fid, {}):
                    continue
                seeds.setdefault(fid, {})[rule] = Taint(
                    rule=rule,
                    origin_path=str(summary["path"]),
                    origin_line=int(taint["line"]),
                    detail=str(taint["detail"]),
                    chain=(fid,),
                )
    return seeds


def run_taint_pass(
    index: ProjectIndex, graph: CallGraph
) -> list[FlowFinding]:
    """Propagate seeds over reverse call edges; emit per-call-site findings."""
    state: dict[str, dict[str, Taint]] = {
        fid: dict(taints) for fid, taints in seed_taints(index).items()
    }
    queue: list[tuple[str, str]] = sorted(
        (fid, rule) for fid, taints in state.items() for rule in taints
    )
    findings: list[FlowFinding] = []
    emitted: set[tuple[str, int, int, str, str]] = set()

    while queue:
        callee, rule = queue.pop(0)
        taint = state[callee][rule]
        for edge in sorted(
            graph.callers_of(callee), key=lambda e: (e.caller, e.line, e.col)
        ):
            matcher = index.matcher_for(edge.caller)
            if matcher is not None and matcher.allows(edge.line, rule):
                continue  # justified at the call site: silence propagates
            caller_fn = index.function(edge.caller)
            if caller_fn is None:
                continue
            dedup = (edge.caller, edge.line, edge.col, rule, callee)
            if dedup not in emitted:
                emitted.add(dedup)
                chain = " -> ".join(_short(f) for f in (edge.caller, *taint.chain))
                findings.append(
                    FlowFinding(
                        path=index.path_of(edge.caller),
                        line=edge.line,
                        col=edge.col,
                        rule=rule,
                        message=(
                            f"call to {_short(callee)}() transitively reaches "
                            f"{taint.detail} "
                            f"({taint.origin_path}:{taint.origin_line}) "
                            f"via {chain}"
                        ),
                        scope=edge.caller,
                        key=f"{callee}|{taint.detail}",
                    )
                )
            if rule not in state.setdefault(edge.caller, {}):
                state[edge.caller][rule] = Taint(
                    rule=rule,
                    origin_path=taint.origin_path,
                    origin_line=taint.origin_line,
                    detail=taint.detail,
                    chain=(edge.caller, *taint.chain),
                )
                queue.append((edge.caller, rule))
    findings.sort(key=FlowFinding.sort_key)
    return findings
