"""JSON and SARIF 2.1.0 rendering for lint findings."""

from __future__ import annotations

import json
from typing import Any, Sequence

from ..diagnostics import Diagnostic
from ..rules import FLOW_RULE_CODES, RULES

_TOOL_NAME = "repro-lint"
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_catalogue() -> list[dict[str, Any]]:
    entries: list[dict[str, Any]] = []
    for rule in RULES:
        entries.append(
            {
                "id": rule.name,
                "name": rule.code,
                "shortDescription": {"text": rule.name},
            }
        )
    for name in sorted(FLOW_RULE_CODES):
        entries.append(
            {
                "id": name,
                "name": FLOW_RULE_CODES[name],
                "shortDescription": {"text": name},
            }
        )
    return entries


def _diag_payload(diag: Diagnostic, baselined: bool) -> dict[str, Any]:
    return {
        "path": diag.path,
        "line": diag.line,
        "col": diag.col,
        "rule": diag.rule,
        "message": diag.message,
        "baselined": baselined,
    }


def findings_json(
    diagnostics: Sequence[Diagnostic],
    baselined: Sequence[Diagnostic] = (),
    limits: dict[str, int] | None = None,
) -> str:
    payload = {
        "tool": _TOOL_NAME,
        "findings": [
            *(_diag_payload(d, False) for d in diagnostics),
            *(_diag_payload(d, True) for d in baselined),
        ],
        "counts": {"new": len(diagnostics), "baselined": len(baselined)},
        "limits": dict(limits) if limits else {},
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_result(diag: Diagnostic, baselined: bool) -> dict[str, Any]:
    return {
        "ruleId": diag.rule,
        "level": "warning" if baselined else "error",
        "baselineState": "unchanged" if baselined else "new",
        "message": {"text": diag.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": diag.path.replace("\\", "/")},
                    "region": {
                        "startLine": max(diag.line, 1),
                        "startColumn": diag.col + 1,
                    },
                }
            }
        ],
    }


def findings_sarif(
    diagnostics: Sequence[Diagnostic],
    baselined: Sequence[Diagnostic] = (),
) -> str:
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": _rule_catalogue(),
                    }
                },
                "results": [
                    *(_sarif_result(d, False) for d in diagnostics),
                    *(_sarif_result(d, True) for d in baselined),
                ],
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
