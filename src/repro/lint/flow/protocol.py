"""Store-protocol typestate checking (exactly-one-copy lifecycle).

Each function containing protocol calls was lowered to a compact IR at
summary time; this pass enumerates its acyclic paths (loops unrolled
once, path count capped by ``flow.max_paths``) and interprets the
lifecycle automaton along each:

* ``extract`` hands the caller the only copy — extracting the same
  session again before the first copy is accounted is use-after-extract;
* ``admit_migrated`` must be able to match an extracted copy on the same
  path (by session argument or by the variable holding the item);
* ``record_migration_loss`` / ``discard_stale`` account copies the
  lossy/stale way;
* ``wipe_volatile`` and ``decommission`` are terminal for their store —
  any later protocol op on the same receiver is use-after-terminal
  (``restore_offline`` legitimately revives a wiped store); the
  shared-prefix ops (``register_shared``/``acquire_shared``/
  ``release_shared``) participate only in this terminal check —
  their refcount discipline is the store's own business, enforced by
  ``check_invariants`` and SimSan, not by callers;
* a copy that reaches a normal exit unaccounted — not admitted,
  discarded, loss-recorded, returned, or escaped into another call — is
  a leak of the one copy.

Functions on classes that *implement* the protocol (three or more of
the lifecycle methods, i.e. the store itself) are exempt: the automaton
constrains callers, not the implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .baseline import FlowFinding
from .project import ProjectIndex

PROTOCOL_RULE = "store-protocol"

#: Ops that account for a previously extracted copy.
_ACCOUNTING = frozenset({"admit_migrated", "discard_stale", "record_migration_loss"})


@dataclass(slots=True)
class _Copy:
    """One live extracted copy on the current path."""

    recv: str
    session: str
    var: str | None
    line: int
    col: int
    accounted: bool = False
    absent: bool = False  # the None-returning branch of the extract
    escaped: bool = False  # the copy was handed to other code


@dataclass(slots=True)
class _State:
    copies: list[_Copy] = field(default_factory=list)
    #: receiver -> terminal op name ("wipe_volatile"/"decommission")
    terminal: dict[str, str] = field(default_factory=dict)

    def clone(self) -> "_State":
        return _State(
            copies=[
                _Copy(
                    c.recv,
                    c.session,
                    c.var,
                    c.line,
                    c.col,
                    c.accounted,
                    c.absent,
                    c.escaped,
                )
                for c in self.copies
            ],
            terminal=dict(self.terminal),
        )


def _compatible(a: str | None, b: str | None) -> bool:
    if a is None or b is None:
        return False
    return a == b or a == "?" or b == "?"


class _PathBudget(Exception):
    pass


class _Interp:
    """Interpret one function's IR over all paths."""

    def __init__(self, max_paths: int) -> None:
        self.max_paths = max_paths
        self.paths = 0
        #: (kind, line, col, detail, stable-key)
        self.findings: set[tuple[str, int, int, str, str]] = set()

    def _finalize(self, state: _State, abnormal: bool) -> None:
        self.paths += 1
        if self.paths > self.max_paths:
            raise _PathBudget()
        if abnormal:
            return
        for copy in state.copies:
            if not (copy.accounted or copy.absent or copy.escaped):
                detail = f"{copy.recv}.extract({copy.session})"
                self.findings.add(
                    ("unaccounted", copy.line, copy.col, detail, detail)
                )

    def _op(self, state: _State, node: list[Any]) -> None:
        method = str(node[1])
        recv = str(node[2])
        session = node[3] if node[3] is None else str(node[3])
        line, col = int(node[4]), int(node[5])
        var = node[6] if node[6] is None else str(node[6])

        terminal_op = state.terminal.get(recv)
        if terminal_op is not None and method != "restore_offline":
            detail = f"{recv}.{method} after {recv}.{terminal_op}"
            self.findings.add(("after-terminal", line, col, detail, detail))
        if method == "extract":
            for copy in state.copies:
                if (
                    not copy.accounted
                    and not copy.absent
                    and not copy.escaped
                    and copy.recv == recv
                    and _compatible(copy.session, session)
                ):
                    self.findings.add(
                        (
                            "use-after-extract",
                            line,
                            col,
                            f"{recv}.extract({session}) while the copy from "
                            f"line {copy.line} is still unaccounted",
                            f"{recv}.extract({session})",
                        )
                    )
            state.copies.append(
                _Copy(recv, session if session is not None else "?", var, line, col)
            )
        elif method == "admit_migrated":
            matched = False
            for copy in state.copies:
                if copy.accounted or copy.absent:
                    continue
                if _compatible(copy.session, session) or (
                    copy.var is not None and copy.var == session
                ):
                    copy.accounted = True
                    matched = True
                    break
            if not matched:
                self.findings.add(
                    (
                        "admit-without-extract",
                        line,
                        col,
                        f"admit_migrated({session}) with no unaccounted "
                        "extract on this path",
                        f"admit_migrated({session})",
                    )
                )
        elif method == "discard_stale":
            for copy in state.copies:
                if not copy.accounted and _compatible(copy.session, session):
                    copy.accounted = True
        elif method == "record_migration_loss":
            for copy in state.copies:
                copy.accounted = True
        elif method == "decommission":
            state.terminal[recv] = method
            for copy in state.copies:
                if copy.recv == recv:
                    copy.accounted = True
        elif method == "wipe_volatile":
            state.terminal[recv] = method
        elif method == "restore_offline":
            state.terminal.pop(recv, None)

    def _use(self, state: _State, names: list[str]) -> None:
        # Passing the copy anywhere (logging aside, we cannot tell)
        # excuses the leak check — the copy may have left this
        # function's custody — but it stays matchable for a later
        # admit on the same path.
        for copy in state.copies:
            if copy.var is not None and copy.var in names:
                copy.escaped = True

    def run(self, ir: list[Any], state: _State) -> None:
        i = 0
        while i < len(ir):
            node = ir[i]
            kind = str(node[0])
            if kind == "op":
                self._op(state, node)
            elif kind == "use":
                self._use(state, [str(n) for n in node[1]])
            elif kind == "return":
                self._use(state, [str(n) for n in node[1]])
                self._finalize(state, abnormal=False)
                return
            elif kind == "exit":
                self._finalize(state, abnormal=True)
                return
            elif kind == "branch":
                cond = node[1]
                then_state = state.clone()
                else_state = state
                if cond[0] == "isnone":
                    for copy in then_state.copies:
                        if copy.var == cond[1]:
                            copy.absent = True
                elif cond[0] == "notnone":
                    for copy in else_state.copies:
                        if copy.var == cond[1]:
                            copy.absent = True
                self.run([*node[2], *ir[i + 1 :]], then_state)
                self.run([*node[3], *ir[i + 1 :]], else_state)
                return
            elif kind == "loop":
                skip_state = state.clone()
                self.run([*node[1], *ir[i + 1 :]], state)
                self.run(ir[i + 1 :], skip_state)
                return
            i += 1
        self._finalize(state, abnormal=False)


_MESSAGES = {
    "use-after-extract": "use-after-extract: {detail}",
    "admit-without-extract": "{detail}",
    "after-terminal": "protocol op on a decommissioned/wiped store: {detail}",
    "unaccounted": (
        "extracted copy may leak: {detail} is neither admitted, discarded, "
        "loss-recorded nor handed off on some path"
    ),
}


def run_protocol_pass(
    index: ProjectIndex, max_paths: int
) -> tuple[list[FlowFinding], int]:
    """Check every protocol-using function; returns (findings, skipped)."""
    findings: list[FlowFinding] = []
    skipped = 0
    for module in sorted(index.summaries):
        summary = index.summaries[module]
        if summary["error"] is not None:
            continue
        matcher = index.matcher_for(module)
        for suffix in sorted(summary["functions"]):
            fn = summary["functions"][suffix]
            if fn["proto"] is None:
                continue
            cls = fn["cls"]
            if cls is not None:
                cls_summary = summary["classes"].get(cls)
                if cls_summary is not None and cls_summary["defines_protocol"]:
                    continue  # the store's own implementation
            interp = _Interp(max_paths)
            try:
                interp.run(fn["proto"], _State())
            except _PathBudget:
                skipped += 1
                continue
            for kind, line, col, detail, stable in sorted(interp.findings):
                if matcher is not None and matcher.allows(line, PROTOCOL_RULE):
                    continue
                findings.append(
                    FlowFinding(
                        path=str(summary["path"]),
                        line=line,
                        col=col,
                        rule=PROTOCOL_RULE,
                        message=_MESSAGES[kind].format(detail=detail),
                        scope=f"{module}:{suffix}",
                        key=f"{kind}|{stable}",
                    )
                )
    findings.sort(key=FlowFinding.sort_key)
    return findings, skipped
