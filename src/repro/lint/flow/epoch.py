"""Epoch-guard verification over the continuation classes.

The per-class analysis itself happens at summary time
(:class:`repro.lint.flow.project._EpochChecker`); this pass collects the
verdicts, applies suppressions, and renders findings.  The contract is
strict by design: among classes that both define ``__call__`` and store
an ``epoch`` slot, *every* engine/store mutation — and every call
through a non-builtin helper, which could launder one — must be
dominated by a comparison of ``self.epoch`` against the engine's live
``_epoch``.  Continuations without an ``epoch`` slot are out of scope
(they are the deliberately epoch-exempt arrival/timer events).
"""

from __future__ import annotations

from .baseline import FlowFinding
from .project import ProjectIndex

EPOCH_RULE = "epoch-guard"


def run_epoch_pass(index: ProjectIndex) -> list[FlowFinding]:
    findings: list[FlowFinding] = []
    for cls_key in sorted(index.classes):
        module, summary = index.classes[cls_key]
        verdict = summary["epoch"]
        if verdict is None:
            continue
        matcher = index.matcher_for(module)
        path = str(index.summaries[module]["path"])
        cls_name = cls_key.rsplit(".", 1)[-1]
        for violation in verdict["violations"]:
            line = int(violation["line"])
            if matcher is not None and matcher.allows(line, EPOCH_RULE):
                continue
            what = str(violation["what"])
            hint = (
                "add one"
                if not verdict["guard_seen"]
                else "move the mutation under the guard"
            )
            findings.append(
                FlowFinding(
                    path=path,
                    line=line,
                    col=int(violation["col"]),
                    rule=EPOCH_RULE,
                    message=(
                        f"continuation '{cls_name}' touches {what} in "
                        "__call__ without first comparing self.epoch to "
                        f"the engine's live epoch; {hint} "
                        "(`if engine._epoch == self.epoch:`)"
                    ),
                    scope=cls_key,
                    key=what,
                )
            )
    findings.sort(key=FlowFinding.sort_key)
    return findings
