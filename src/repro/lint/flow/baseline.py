"""Flow findings, fingerprints, and the ratcheted baseline file.

A baseline entry is a line-number-free fingerprint of one finding:
``(rule, relative path, scope, key)`` where *scope* is the qualified
name of the function/class the finding lives in and *key* is a
rule-specific stable detail (callee id for taint, mutation target for
epoch guards, automaton event for protocol, the class pair for batch
races).  Dropping line numbers keeps the baseline stable across
unrelated edits to the same file; the scope/key pair keeps it precise
enough that a *new* bug of the same rule in the same file still fails.

The baseline is ratcheted: ``--write-baseline`` refuses to add entries
unless ``REPRO_LINT_BASELINE_GROW=1`` is set, so the debt can only
shrink in normal operation.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from ..diagnostics import Diagnostic


@dataclass(frozen=True, slots=True)
class FlowFinding:
    """One whole-program finding, carrying baseline identity."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: Qualified name of the enclosing function/class (or class pair).
    scope: str
    #: Rule-specific stable detail for fingerprinting.
    key: str

    def to_diagnostic(self) -> Diagnostic:
        return Diagnostic(self.path, self.line, self.col, self.rule, self.message)

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


def _rel_posix(path: str, root: Path) -> str:
    try:
        return Path(path).resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return Path(path).as_posix()


def fingerprint(finding: FlowFinding, root: Path) -> tuple[str, str, str, str]:
    return (
        finding.rule,
        _rel_posix(finding.path, root),
        finding.scope,
        finding.key,
    )


def load_baseline(path: Path) -> list[tuple[str, str, str, str]]:
    """Read baseline entries; a missing file is an empty baseline."""
    if not path.is_file():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"{path}: not a repro-lint flow baseline")
    entries: list[tuple[str, str, str, str]] = []
    for entry in data["findings"]:
        entries.append(
            (
                str(entry["rule"]),
                str(entry["path"]),
                str(entry["scope"]),
                str(entry["key"]),
            )
        )
    return entries


def apply_baseline(
    findings: list[FlowFinding],
    entries: list[tuple[str, str, str, str]],
    root: Path,
) -> tuple[list[FlowFinding], list[FlowFinding], list[tuple[str, str, str, str]]]:
    """Split findings into (new, baselined) and report stale entries."""
    known = set(entries)
    matched: set[tuple[str, str, str, str]] = set()
    new: list[FlowFinding] = []
    baselined: list[FlowFinding] = []
    for finding in findings:
        fp = fingerprint(finding, root)
        if fp in known:
            matched.add(fp)
            baselined.append(finding)
        else:
            new.append(finding)
    stale = [entry for entry in entries if entry not in matched]
    return new, baselined, stale


class BaselineGrowthError(Exception):
    """Raised when a baseline write would add entries without opt-in."""


def write_baseline(
    path: Path,
    findings: list[FlowFinding],
    root: Path,
) -> tuple[int, int]:
    """Rewrite the baseline from current findings; returns (kept, added).

    Shrinking (pruning stale entries) is always allowed; adding entries
    requires ``REPRO_LINT_BASELINE_GROW=1`` — the ratchet.
    """
    old = set(load_baseline(path))
    fps = sorted({fingerprint(f, root) for f in findings})
    added = [fp for fp in fps if fp not in old]
    if added and os.environ.get("REPRO_LINT_BASELINE_GROW") != "1":
        listing = "\n".join(
            f"  {rule} {rel} {scope} {key}".rstrip()
            for rule, rel, scope, key in added
        )
        raise BaselineGrowthError(
            f"refusing to grow the baseline by {len(added)} entr"
            f"{'y' if len(added) == 1 else 'ies'} (set "
            f"REPRO_LINT_BASELINE_GROW=1 to override):\n{listing}"
        )
    payload = {
        "version": 1,
        "tool": "repro-lint flow",
        "findings": [
            {"rule": rule, "path": rel, "scope": scope, "key": key}
            for rule, rel, scope, key in fps
        ],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(fps) - len(added), len(added)
