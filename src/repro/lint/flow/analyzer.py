"""Orchestration for the whole-program analyzer (``repro lint --flow``)."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from ..checker import SpanAllows
from ..config import LintConfig, find_pyproject
from ..diagnostics import Diagnostic, format_report
from .baseline import (
    BaselineGrowthError,
    FlowFinding,
    apply_baseline,
    load_baseline,
)
from .baseline import write_baseline as write_baseline_file
from .batchrace import run_batch_race_pass
from .cache import SummaryCache
from .callgraph import build_call_graph
from .epoch import run_epoch_pass
from .project import ProjectIndex, load_project
from .protocol import run_protocol_pass
from .taint import run_taint_pass


@dataclass(slots=True)
class FlowResult:
    """Everything one analyzer run produced (before baseline splitting)."""

    findings: list[FlowFinding] = field(default_factory=list)
    suppressions: Mapping[str, SpanAllows] = field(default_factory=dict)
    limits: dict[str, int] = field(default_factory=dict)
    index: ProjectIndex | None = None


def project_root(paths: Iterable[Path]) -> Path:
    """The pyproject root anchoring baseline/cache relative paths."""
    for path in paths:
        pyproject = find_pyproject(path)
        if pyproject is not None:
            return pyproject.parent
    pyproject = find_pyproject(Path.cwd())
    return pyproject.parent if pyproject is not None else Path.cwd()


def analyze_paths(
    paths: Iterable[Path],
    config: LintConfig,
    use_cache: bool = True,
    root: Path | None = None,
) -> FlowResult:
    """Run all four flow passes; suppressions already applied."""
    path_list = [Path(p) for p in paths]
    anchor = root if root is not None else project_root(path_list)
    cache: SummaryCache | None = None
    if use_cache and config.flow.cache is not None:
        cache = SummaryCache(anchor / config.flow.cache, config)
    index = load_project(
        path_list,
        config,
        cache_lookup=cache.lookup if cache is not None else None,
    )
    if cache is not None:
        cache.save(index)
    graph = build_call_graph(index)

    findings: list[FlowFinding] = []
    disabled = config.disable
    if "flow-wall-clock" not in disabled or "flow-order" not in disabled:
        findings.extend(
            f
            for f in run_taint_pass(index, graph)
            if f.rule not in disabled
        )
    if "epoch-guard" not in disabled:
        findings.extend(run_epoch_pass(index))
    skipped = 0
    if "store-protocol" not in disabled:
        proto_findings, skipped = run_protocol_pass(
            index, config.flow.max_paths
        )
        findings.extend(proto_findings)
    if "batch-race" not in disabled:
        findings.extend(run_batch_race_pass(index, config))
    findings.sort(key=FlowFinding.sort_key)

    limits = dict(index.limits)
    limits["unresolved_calls"] = graph.unresolved
    limits["ambiguous_calls"] = graph.ambiguous
    limits["path_budget_exceeded"] = skipped
    if cache is not None:
        limits["cache_hits"] = cache.hits
        limits["cache_misses"] = cache.misses
    return FlowResult(
        findings=findings,
        suppressions=dict(index.suppressions),
        limits=limits,
        index=index,
    )


def _limits_line(limits: dict[str, int]) -> str:
    rendered = ", ".join(f"{key}={limits[key]}" for key in sorted(limits))
    return f"limits: {rendered}" if rendered else "limits: none"


def run_flow(
    paths: Iterable[Path],
    config: LintConfig,
    *,
    report_format: str = "text",
    baseline_path: Path | None = None,
    write_baseline: bool = False,
    use_cache: bool = True,
) -> int:
    """CLI driver: analyze, apply the baseline, render, return exit code."""
    path_list = [Path(p) for p in paths]
    root = project_root(path_list)
    result = analyze_paths(path_list, config, use_cache=use_cache, root=root)
    resolved_baseline = (
        baseline_path
        if baseline_path is not None
        else root / config.flow.baseline
    )

    if write_baseline:
        try:
            kept, added = write_baseline_file(
                resolved_baseline, result.findings, root
            )
        except BaselineGrowthError as exc:
            print(str(exc))
            return 2
        print(
            f"baseline written to {resolved_baseline}: "
            f"{kept + added} entr{'y' if kept + added == 1 else 'ies'} "
            f"({added} added)"
        )
        return 0

    entries = load_baseline(resolved_baseline)
    new, baselined, stale = apply_baseline(result.findings, entries, root)
    new_diags = [f.to_diagnostic() for f in new]
    base_diags = [f.to_diagnostic() for f in baselined]

    if report_format == "json":
        from .output import findings_json

        print(findings_json(new_diags, baselined=base_diags, limits=result.limits))
    elif report_format == "sarif":
        from .output import findings_sarif

        print(findings_sarif(new_diags, baselined=base_diags))
    else:
        if new_diags:
            print(format_report(new_diags))
        summary = (
            f"flow: {len(new_diags)} new finding"
            f"{'' if len(new_diags) == 1 else 's'}, "
            f"{len(base_diags)} baselined, {len(stale)} stale baseline "
            f"entr{'y' if len(stale) == 1 else 'ies'}; "
            f"{_limits_line(result.limits)}"
        )
        print(summary)
        if stale:
            print(
                "stale baseline entries can be pruned with "
                "`python -m repro.lint --flow --write-baseline`"
            )
    return 1 if new_diags else 0
