"""Call-graph construction over :class:`~repro.lint.flow.project.ProjectIndex`.

Resolution is deliberately conservative and syntactic (DESIGN.md §14
documents the limits): dotted imports resolve through the project symbol
table, ``self.m()`` resolves within the defining class (walking textual
base names), member calls like ``self.engine.m()`` and bare attribute
calls fall back to a unique-method-name lookup (CHA-style) — a name
defined by exactly one class in the project resolves to that method,
anything else is counted as unresolved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .project import ProjectIndex


@dataclass(frozen=True, slots=True)
class Edge:
    """One resolved call edge, anchored at its call site."""

    caller: str
    callee: str
    line: int
    col: int


@dataclass(slots=True)
class CallGraph:
    """Forward and reverse adjacency over function ids."""

    edges: dict[str, list[Edge]] = field(default_factory=dict)
    reverse: dict[str, list[Edge]] = field(default_factory=dict)
    unresolved: int = 0
    ambiguous: int = 0

    def add(self, edge: Edge) -> None:
        self.edges.setdefault(edge.caller, []).append(edge)
        self.reverse.setdefault(edge.callee, []).append(edge)

    def callers_of(self, fid: str) -> list[Edge]:
        return self.reverse.get(fid, [])

    def calls_from(self, fid: str) -> list[Edge]:
        return self.edges.get(fid, [])


def _resolve_dotted(index: ProjectIndex, target: str) -> str | None:
    """Resolve a dotted call target against the project symbol table.

    Tries the full dotted name first (``pkg.mod.fn`` / ``pkg.mod.Cls.m``),
    then re-anchored forms for names imported from package ``__init__``
    re-exports (``repro.engine.ServingEngine`` defined in
    ``repro.engine.engine``).
    """
    fid = index.symbols.get(target)
    if fid is not None:
        return fid
    # Class constructor: resolve Cls(...) to Cls.__init__ when known.
    cls = index.classes.get(target)
    if cls is not None:
        module, summary = cls
        name = target.rsplit(".", 1)[-1]
        if "__init__" in summary["methods"]:
            return f"{module}:{name}.__init__"
        return None
    # Re-export: pkg.Cls.m or pkg.fn where pkg is a package __init__ that
    # imported the name from a submodule.  The alias collector already
    # resolved the *importing* module's view; here we chase one level of
    # package alias: look for any module whose name is a prefix and whose
    # summary aliases are not kept — instead try suffix match on symbols.
    head, _, tail = target.rpartition(".")
    if head and tail:
        candidates = sorted(
            sym for sym in index.symbols if sym.endswith(f".{tail}")
            and sym.startswith(f"{head}.")
        )
        if len(candidates) == 1:
            return index.symbols[candidates[0]]
    return None


def _resolve_self(
    index: ProjectIndex, module: str, cls: str, method: str
) -> str | None:
    """Resolve ``self.method()`` within ``cls`` and its textual bases."""
    seen: set[str] = set()
    queue: list[str] = [f"{module}.{cls}"]
    while queue:
        cls_key = queue.pop(0)
        if cls_key in seen:
            continue
        seen.add(cls_key)
        entry = index.classes.get(cls_key)
        if entry is None:
            continue
        cls_module, summary = entry
        if method in summary["methods"]:
            name = cls_key.rsplit(".", 1)[-1]
            return f"{cls_module}:{name}.{method}"
        for base in summary["bases"]:
            if "." in base:
                queue.append(base)
            else:
                queue.append(f"{cls_module}.{base}")
    return None


def _resolve_by_name(index: ProjectIndex, method: str) -> tuple[str | None, bool]:
    """Unique-method-name fallback; (fid, ambiguous)."""
    candidates = index.methods_by_name.get(method, [])
    if len(candidates) == 1:
        return candidates[0], False
    return None, len(candidates) > 1


def resolve_call(
    index: ProjectIndex, module: str, fid: str, call: dict[str, Any]
) -> str | None:
    """Resolve one call-site record to a function id, or None."""
    kind = call["kind"]
    if kind == "local":
        target = str(call["target"])
        return f"{module}:{target}"
    if kind == "dotted":
        return _resolve_dotted(index, str(call["target"]))
    if kind == "name":
        target = str(call["target"])
        local = index.symbols.get(f"{module}.{target}")
        if local is not None:
            return local
        return None
    if kind == "self":
        suffix = fid.partition(":")[2]
        if "." not in suffix:
            return None
        cls = suffix.split(".")[0]
        return _resolve_self(index, module, cls, str(call["target"]))
    # member / attr: unique-name fallback.
    resolved, _ = _resolve_by_name(index, str(call["target"]))
    return resolved


def build_call_graph(index: ProjectIndex) -> CallGraph:
    """Resolve every recorded call site into a project call graph."""
    graph = CallGraph()
    for module in sorted(index.summaries):
        summary = index.summaries[module]
        if summary["error"] is not None:
            continue
        for suffix in sorted(summary["functions"]):
            fid = f"{module}:{suffix}"
            fn = summary["functions"][suffix]
            for call in fn["calls"]:
                callee = resolve_call(index, module, fid, call)
                if callee is None:
                    kind = call["kind"]
                    if kind in ("member", "attr"):
                        _, ambiguous = _resolve_by_name(
                            index, str(call["target"])
                        )
                        if ambiguous:
                            graph.ambiguous += 1
                        else:
                            graph.unresolved += 1
                    elif kind in ("dotted", "name"):
                        graph.unresolved += 1
                    continue
                if index.function(callee) is None:
                    graph.unresolved += 1
                    continue
                graph.add(
                    Edge(fid, callee, int(call["line"]), int(call["col"]))
                )
    return graph
