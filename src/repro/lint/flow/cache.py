"""Content-keyed cache for per-module flow summaries.

Summaries are pure functions of (source text, config, extractor
version), so the cache key is a sha256 of the file contents plus a
config digest.  mtime is stored purely as a fast path: when it matches,
the hash check is skipped.  The cache file is a local artifact (ignored
by git); a corrupt or version-mismatched cache is silently discarded.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from ..config import LintConfig
from .project import SUMMARY_VERSION, ProjectIndex


def config_digest(config: LintConfig) -> str:
    """Stable digest of the config fields that shape summaries."""
    payload = {
        "disable": sorted(config.disable),
        "rule_options": {
            rule: {k: config.rule_options[rule][k] for k in sorted(config.rule_options[rule])}
            for rule in sorted(config.rule_options)
        },
        "hot_path": list(config.hot_path_packages),
        "version": SUMMARY_VERSION,
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class SummaryCache:
    """Load/save per-file summaries keyed by content hash."""

    def __init__(self, cache_path: Path, config: LintConfig) -> None:
        self.cache_path = cache_path
        self.digest = config_digest(config)
        self.files: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        if not self.cache_path.is_file():
            return
        try:
            data = json.loads(self.cache_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            not isinstance(data, dict)
            or data.get("config") != self.digest
            or data.get("version") != SUMMARY_VERSION
        ):
            return
        files = data.get("files")
        if isinstance(files, dict):
            self.files = files

    @staticmethod
    def _sha(source: str) -> str:
        return hashlib.sha256(source.encode("utf-8")).hexdigest()

    def lookup(self, path: Path, source: str) -> dict[str, Any] | None:
        """Cached summary for ``path`` when its content still matches."""
        entry = self.files.get(str(path))
        if entry is None:
            self.misses += 1
            return None
        try:
            mtime = os.path.getmtime(path)
        except OSError:
            mtime = -1.0
        if entry.get("mtime") != mtime and entry.get("sha") != self._sha(source):
            self.misses += 1
            return None
        self.hits += 1
        summary = entry.get("summary")
        return summary if isinstance(summary, dict) else None

    def save(self, index: ProjectIndex) -> None:
        """Persist every summary in ``index`` with fresh content keys."""
        files: dict[str, dict[str, Any]] = {}
        for module in sorted(index.summaries):
            summary = index.summaries[module]
            path = str(summary["path"])
            try:
                source = Path(path).read_text(encoding="utf-8-sig")
                mtime = os.path.getmtime(path)
            except OSError:
                continue
            files[path] = {
                "sha": self._sha(source),
                "mtime": mtime,
                "summary": summary,
            }
        payload = {
            "version": SUMMARY_VERSION,
            "config": self.digest,
            "files": files,
        }
        self.cache_path.parent.mkdir(parents=True, exist_ok=True)
        self.cache_path.write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8"
        )
