"""Project-wide indexing for the flow analyzer.

One :class:`ProjectIndex` holds a *summary* of every module in the
analyzed tree.  Summaries are plain JSON-serialisable dicts extracted in
a single AST walk per file, so they can be cached keyed by content hash
(:mod:`repro.lint.flow.cache`) and the whole-program passes never need
the ASTs again.  Each summary records, per function:

* **calls** — call sites with enough symbolic structure to resolve them
  against the project symbol table (dotted imports, ``self`` methods,
  member calls like ``self.engine.m()``, bare names);
* **taints** — direct determinism-rule hits (wall clock, unseeded RNG,
  hash/set order) with their suppression status, the seeds of the
  transitive-taint pass;
* **reads/writes** — approximate ``self``-rooted attribute effect sets
  for the batch-race pass;
* **proto** — a compact control-flow IR of the store-protocol call
  sites (extract/admit/decommission/...) for the typestate pass;

and, per class: ``__slots__``, whether it is callable, and the
epoch-guard verdict for continuation classes that store an ``epoch``
slot.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from ..checker import (
    SpanAllows,
    Suppressions,
    iter_python_files,
    module_name_for,
    read_python_source,
    statement_spans,
)
from ..config import LintConfig
from ..rules import (
    HashOrderRule,
    SetOrderRule,
    UnseededRandomRule,
    WallClockRule,
)

#: Bump when the summary schema or extraction logic changes; invalidates
#: every cache entry.
SUMMARY_VERSION = 4

#: The store's exactly-one-copy lifecycle methods (paper §3.3 plus the
#: failure domain of DESIGN.md §11).  The shared-prefix ops participate
#: only in the terminal check: touching shared blocks on a wiped or
#: decommissioned store is as much a lifecycle violation as extracting
#: from one.  Per-session items keep exactly-one-copy; shared blocks are
#: exactly one *owning* copy per content hash per store (DESIGN.md §15).
PROTOCOL_OPS = frozenset(
    {
        "extract",
        "admit_migrated",
        "decommission",
        "wipe_volatile",
        "restore_offline",
        "discard_stale",
        "record_migration_loss",
        "register_shared",
        "acquire_shared",
        "release_shared",
    }
)

#: Protocol ops that take a session id as their first argument.
SESSION_OPS = frozenset({"extract", "admit_migrated", "discard_stale"})

#: Method names treated as mutating their receiver in the effect pass.
MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "push",
        "put",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

#: Builtin callables considered benign inside an unguarded continuation
#: prologue (pure computation, no engine/store mutation).
BENIGN_BUILTINS = frozenset(
    {
        "abs",
        "bool",
        "dict",
        "enumerate",
        "float",
        "frozenset",
        "getattr",
        "hasattr",
        "int",
        "isinstance",
        "len",
        "list",
        "max",
        "min",
        "range",
        "repr",
        "round",
        "set",
        "sorted",
        "str",
        "tuple",
        "zip",
    }
)

_TAINT_RULES = (
    WallClockRule(),
    UnseededRandomRule(),
    HashOrderRule(),
    SetOrderRule(),
)

#: Per-file rule name -> flow rule name for transitive findings.
TAINT_FLOW_RULE = {
    "wall-clock": "flow-wall-clock",
    "unseeded-random": "flow-unseeded-random",
    "hash-order": "flow-order",
    "set-order": "flow-order",
}


def collect_aliases(tree: ast.Module, module: str, is_package: bool) -> dict[str, str]:
    """Map local names to dotted targets, resolving relative imports.

    Unlike :func:`repro.lint.rules.collect_import_aliases`, this resolves
    ``from ..store import x`` against the importing module's package so
    intra-project edges can be built.
    """
    package = module if is_package else module.rsplit(".", 1)[0] if "." in module else ""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level > 0:
                anchor_parts = package.split(".") if package else []
                drop = node.level - 1
                if drop:
                    anchor_parts = anchor_parts[: len(anchor_parts) - drop]
                anchor = ".".join(anchor_parts)
                base = f"{anchor}.{base}" if base else anchor
            if not base:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{base}.{alias.name}"
    return aliases


def _attr_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ["a", "b", "c"]; None when the root is not a Name."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    parts.reverse()
    return parts


def _describe_call(node: ast.Call, aliases: dict[str, str]) -> dict[str, Any] | None:
    """Symbolic call-site record, or None for unresolvable shapes."""
    func = node.func
    if isinstance(func, ast.Name):
        name = func.id
        if name in aliases:
            return {
                "kind": "dotted",
                "target": aliases[name],
                "line": node.lineno,
                "col": node.col_offset,
            }
        if name in BENIGN_BUILTINS:
            return None
        return {
            "kind": "name",
            "target": name,
            "line": node.lineno,
            "col": node.col_offset,
        }
    chain = _attr_chain(func) if isinstance(func, ast.Attribute) else None
    if chain is None:
        return None
    root = chain[0]
    if root in aliases:
        return {
            "kind": "dotted",
            "target": ".".join([aliases[root], *chain[1:]]),
            "line": node.lineno,
            "col": node.col_offset,
        }
    if root == "self":
        if len(chain) == 2:
            return {
                "kind": "self",
                "target": chain[1],
                "line": node.lineno,
                "col": node.col_offset,
            }
        return {
            "kind": "member",
            "recv": ".".join(chain[1:-1]),
            "target": chain[-1],
            "line": node.lineno,
            "col": node.col_offset,
        }
    return {
        "kind": "attr",
        "recv": ".".join(chain[:-1]),
        "target": chain[-1],
        "line": node.lineno,
        "col": node.col_offset,
    }


# ---------------------------------------------------------------------------
# Effects (batch-race pass input)
# ---------------------------------------------------------------------------


def _self_path(node: ast.expr) -> list[str] | None:
    """Attribute chain rooted at ``self`` (without the ``self``), else None."""
    chain = _attr_chain(node)
    if chain is None or chain[0] != "self" or len(chain) < 2:
        return None
    return chain[1:]


def _effect_path(node: ast.expr) -> list[str] | None:
    """Attribute chain rooted at ``self`` or a conventional alias.

    ``self.engine.x`` and the idiomatic local alias ``engine.x`` (after
    ``engine = self.engine``) both normalise to ``["engine", "x"]``; a
    bare local root other than ``engine``/``store`` is private state and
    yields None.
    """
    chain = _attr_chain(node)
    if chain is None or len(chain) < 2:
        return None
    if chain[0] == "self":
        return chain[1:]
    if chain[0] in ("engine", "store"):
        return chain
    return None


def _effects_of(body: list[ast.stmt]) -> tuple[list[str], list[str]]:
    """Approximate (reads, writes) of shared-object attribute paths.

    Paths are truncated to two segments.  Assignment and augmented
    assignment targets are writes; calls to known-mutating methods on a
    tracked receiver are writes of the receiver path; all other loads
    are reads.
    """
    reads: set[str] = set()
    writes: set[str] = set()

    def norm(parts: list[str]) -> str:
        return ".".join(parts[:2])

    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Attribute):
                path = _effect_path(node)
                if path is None:
                    continue
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    writes.add(norm(path))
                else:
                    reads.add(norm(path))
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                recv_path = _effect_path(node.func.value)
                if recv_path is not None and node.func.attr in MUTATOR_METHODS:
                    writes.add(norm(recv_path))
    return sorted(reads), sorted(writes)


# ---------------------------------------------------------------------------
# Store-protocol IR
# ---------------------------------------------------------------------------


def _protocol_call(node: ast.Call) -> tuple[str, str, str | None] | None:
    """(method, receiver, session) when the call is a protocol op."""
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in PROTOCOL_OPS:
        return None
    chain = _attr_chain(func.value)
    recv = ".".join(chain) if chain is not None else "?"
    session: str | None = None
    if func.attr in SESSION_OPS:
        if node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Name):
                session = arg.id
            elif isinstance(arg, ast.Constant):
                session = repr(arg.value)
            else:
                session = "?"
        else:
            session = "?"
    return func.attr, recv, session


def _loads_in(node: ast.AST, names: frozenset[str]) -> list[str]:
    """Names from ``names`` read (Load context) anywhere under ``node``."""
    found: set[str] = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Name)
            and isinstance(sub.ctx, ast.Load)
            and sub.id in names
        ):
            found.add(sub.id)
    return sorted(found)


class _IRBuilder:
    """Build the compact protocol IR for one function body."""

    def __init__(self, extract_vars: frozenset[str]) -> None:
        self.extract_vars = extract_vars

    def _flush_stmt(self, stmt: ast.stmt, out: list[Any]) -> None:
        """Emit protocol ops and extract-var uses from a generic statement."""
        assigned: str | None = None
        assigned_call: ast.Call | None = None
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
        ):
            assigned = stmt.targets[0].id
            assigned_call = stmt.value
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            proto = _protocol_call(node)
            if proto is None:
                continue
            method, recv, session = proto
            var = assigned if node is assigned_call else None
            out.append(
                ["op", method, recv, session, node.lineno, node.col_offset, var]
            )
        uses = _loads_in(stmt, self.extract_vars)
        if uses:
            out.append(["use", uses, stmt.lineno])

    def _cond(self, test: ast.expr) -> list[Any]:
        if (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id in self.extract_vars
            and len(test.ops) == 1
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            if isinstance(test.ops[0], ast.Is):
                return ["isnone", test.left.id]
            if isinstance(test.ops[0], ast.IsNot):
                return ["notnone", test.left.id]
        return ["opaque"]

    def _expr_ops(
        self,
        expr: ast.expr | None,
        out: list[Any],
        skip_uses: frozenset[str] = frozenset(),
    ) -> None:
        if expr is None:
            return
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                proto = _protocol_call(node)
                if proto is not None:
                    method, recv, session = proto
                    out.append(
                        ["op", method, recv, session, node.lineno, node.col_offset, None]
                    )
        uses = [
            name
            for name in _loads_in(expr, self.extract_vars)
            if name not in skip_uses
        ]
        if uses:
            out.append(["use", uses, getattr(expr, "lineno", 0)])

    def build(self, stmts: list[ast.stmt]) -> list[Any]:
        ir: list[Any] = []
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, ast.Return):
                vars_used = (
                    _loads_in(stmt.value, self.extract_vars)
                    if stmt.value is not None
                    else []
                )
                ir.append(["return", vars_used])
            elif isinstance(stmt, (ast.Break, ast.Continue)):
                ir.append(["exit"])
            elif isinstance(stmt, ast.Raise):
                self._flush_stmt(stmt, ir)
                ir.append(["exit"])
            elif isinstance(stmt, ast.If):
                cond = self._cond(stmt.test)
                # A None-check reads the var but does not let the copy
                # escape — do not count it as accounting for the extract.
                skip = (
                    frozenset({str(cond[1])})
                    if cond[0] in ("isnone", "notnone")
                    else frozenset()
                )
                self._expr_ops(stmt.test, ir, skip)
                ir.append(
                    [
                        "branch",
                        cond,
                        self.build(stmt.body),
                        self.build(stmt.orelse),
                    ]
                )
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._expr_ops(stmt.iter, ir)
                ir.append(["loop", self.build([*stmt.body, *stmt.orelse])])
            elif isinstance(stmt, ast.While):
                self._expr_ops(stmt.test, ir)
                ir.append(["loop", self.build([*stmt.body, *stmt.orelse])])
            elif isinstance(stmt, ast.Try):
                branch: list[Any] = self.build(stmt.body)
                for handler in stmt.handlers:
                    branch = [
                        ["branch", ["opaque"], branch, self.build(handler.body)]
                    ]
                ir.extend(branch)
                ir.extend(self.build(stmt.finalbody))
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._expr_ops(item.context_expr, ir)
                ir.extend(self.build(stmt.body))
            else:
                self._flush_stmt(stmt, ir)
        return ir


def _build_protocol_ir(body: list[ast.stmt]) -> list[Any] | None:
    """The protocol IR for a function body, or None without protocol ops."""
    has_op = False
    extract_vars: set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                proto = _protocol_call(node)
                if proto is not None:
                    has_op = True
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
        ):
            proto = _protocol_call(stmt.value)
            if proto is not None and proto[0] == "extract":
                extract_vars.add(stmt.targets[0].id)
    # Nested assigns (inside ifs/loops) also bind extract vars.
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                proto = _protocol_call(node.value)
                if proto is not None and proto[0] == "extract":
                    extract_vars.add(node.targets[0].id)
    if not has_op:
        return None
    return _IRBuilder(frozenset(extract_vars)).build(body)


# ---------------------------------------------------------------------------
# Epoch-guard analysis
# ---------------------------------------------------------------------------


def _class_slots(node: ast.ClassDef) -> list[str]:
    for stmt in node.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "__slots__"
            and isinstance(stmt.value, (ast.Tuple, ast.List))
        ):
            return [
                el.value
                for el in stmt.value.elts
                if isinstance(el, ast.Constant) and isinstance(el.value, str)
            ]
    return []


class _EpochChecker:
    """Verify one continuation ``__call__`` guards on its stored epoch.

    The contract (DESIGN.md §13): a continuation that stores the crash
    epoch it was scheduled under must compare it against the engine's
    live epoch before any engine/store mutation in its fire path, either
    as an enclosing ``if <engine>._epoch == self.epoch:`` or an early
    ``if <engine>._epoch != self.epoch: return``.
    """

    def __init__(self, fn: ast.FunctionDef, benign_calls: frozenset[str]) -> None:
        self.fn = fn
        self.benign_calls = BENIGN_BUILTINS | benign_calls
        #: Local aliases of guarded members: name -> "engine"/"store"/"epoch".
        self.aliases: dict[str, str] = {}
        self.violations: list[dict[str, Any]] = []
        self.guard_seen = False

    def _member_role(self, node: ast.expr) -> str | None:
        """'engine'/'store' when the expression denotes that member."""
        chain = _attr_chain(node)
        if chain is None:
            return None
        root = chain[0]
        if root == "self" and len(chain) >= 2 and chain[1] in ("engine", "store"):
            return chain[1]
        if root in self.aliases and self.aliases[root] in ("engine", "store"):
            return self.aliases[root]
        return None

    def _is_my_epoch(self, node: ast.expr) -> bool:
        chain = _attr_chain(node)
        if chain == ["self", "epoch"]:
            return True
        return (
            isinstance(node, ast.Name) and self.aliases.get(node.id) == "epoch"
        )

    def _is_engine_epoch(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.Attribute) or node.attr not in (
            "_epoch",
            "epoch",
        ):
            return False
        return self._member_role(node.value) is not None

    def _guard_kind(self, test: ast.expr) -> str | None:
        """'eq' / 'neq' when the test compares stored vs live epoch."""
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and len(test.comparators) == 1
        ):
            return None
        left, right = test.left, test.comparators[0]
        pair = (
            (self._is_my_epoch(left) and self._is_engine_epoch(right))
            or (self._is_my_epoch(right) and self._is_engine_epoch(left))
        )
        if not pair:
            return None
        if isinstance(test.ops[0], ast.Eq):
            return "eq"
        if isinstance(test.ops[0], ast.NotEq):
            return "neq"
        return None

    def _mutations_in(self, node: ast.AST) -> list[tuple[int, int, str]]:
        """Engine/store mutations inside an expression or statement."""
        hits: list[tuple[int, int, str]] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                func = sub.func
                if isinstance(func, ast.Attribute):
                    role = self._member_role(func.value)
                    if role is not None:
                        hits.append(
                            (sub.lineno, sub.col_offset, f"{role}.{func.attr}()")
                        )
                    continue
                if isinstance(func, ast.Name):
                    if func.id in self.benign_calls:
                        continue
                    # A call through any non-benign name is treated as a
                    # mutation: helpers can launder engine access.
                    hits.append((sub.lineno, sub.col_offset, f"{func.id}()"))
            elif isinstance(sub, ast.Attribute) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                role = self._member_role(sub.value)
                if role is not None:
                    hits.append((sub.lineno, sub.col_offset, f"{role}.{sub.attr}"))
        return hits

    def _terminates(self, body: list[ast.stmt]) -> bool:
        return bool(body) and isinstance(body[-1], (ast.Return, ast.Raise))

    def _record(self, hits: list[tuple[int, int, str]]) -> None:
        for line, col, what in hits:
            self.violations.append(
                {
                    "line": line,
                    "col": col,
                    "what": what,
                }
            )

    def _walk(self, stmts: list[ast.stmt], guarded: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                if (
                    len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                ):
                    chain = _attr_chain(stmt.value)
                    if chain is not None and chain[0] == "self" and len(chain) == 2:
                        if chain[1] in ("engine", "store", "epoch"):
                            self.aliases[stmt.targets[0].id] = chain[1]
                            continue
                if not guarded:
                    self._record(self._mutations_in(stmt))
                continue
            if isinstance(stmt, ast.Assert):
                continue
            if isinstance(stmt, ast.If):
                kind = self._guard_kind(stmt.test)
                if kind == "eq":
                    self.guard_seen = True
                    self._walk(stmt.body, True)
                    self._walk(stmt.orelse, guarded)
                    continue
                if kind == "neq" and self._terminates(stmt.body):
                    self.guard_seen = True
                    self._walk(stmt.body, guarded)
                    self._walk(stmt.orelse, True)
                    guarded = True
                    continue
                if not guarded:
                    self._record(self._mutations_in(stmt.test))
                self._walk(stmt.body, guarded)
                self._walk(stmt.orelse, guarded)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                if not guarded:
                    iter_expr = (
                        stmt.iter
                        if isinstance(stmt, (ast.For, ast.AsyncFor))
                        else stmt.test
                    )
                    self._record(self._mutations_in(iter_expr))
                self._walk([*stmt.body, *stmt.orelse], guarded)
                continue
            if isinstance(stmt, ast.Try):
                self._walk(stmt.body, guarded)
                for handler in stmt.handlers:
                    self._walk(handler.body, guarded)
                self._walk([*stmt.orelse, *stmt.finalbody], guarded)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._walk(stmt.body, guarded)
                continue
            if not guarded:
                self._record(self._mutations_in(stmt))

    def check(self) -> dict[str, Any]:
        self._walk(self.fn.body, False)
        return {
            "guard_seen": self.guard_seen,
            "violations": self.violations,
        }


# ---------------------------------------------------------------------------
# Module summary
# ---------------------------------------------------------------------------


def _function_spans(
    tree: ast.Module,
) -> list[tuple[int, int, str]]:
    """(start, end, qual-suffix) for every def, innermost resolvable last."""
    spans: list[tuple[int, int, str]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                end = child.end_lineno if child.end_lineno is not None else child.lineno
                spans.append((child.lineno, end, qual))
                visit(child, f"{qual}.<locals>.")

    visit(tree, "")
    # Sort outermost-first so later (inner) entries win lookups.
    spans.sort(key=lambda s: (s[0], -s[1]))
    return spans


def _owner_of(line: int, spans: list[tuple[int, int, str]]) -> str:
    owner = "<module>"
    for start, end, qual in spans:
        if start <= line <= end:
            owner = qual
    return owner


def summarize_module(
    source: str, path: str, module: str, is_package: bool, config: LintConfig
) -> dict[str, Any]:
    """Extract the flow summary for one module (pure; cacheable)."""
    summary: dict[str, Any] = {
        "module": module,
        "path": path,
        "error": None,
        "functions": {},
        "classes": {},
        "allow": [],
        "spans": [],
        "limits": {"unresolved_calls": 0},
    }
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        summary["error"] = {
            "line": exc.lineno if exc.lineno is not None else 1,
            "col": exc.offset if exc.offset is not None else 0,
            "msg": str(exc.msg),
        }
        return summary

    suppressions = Suppressions(path, source, tree)
    summary["allow"] = [
        [line, sorted(rules)]
        for line, rules in sorted(suppressions.by_line.items())
    ]
    summary["spans"] = [
        [line, span[0], span[1]]
        for line, span in sorted(statement_spans(tree).items())
    ]

    aliases = collect_aliases(tree, module, is_package)
    fn_spans = _function_spans(tree)

    benign_raw = config.options_for("epoch-guard").get("benign-calls", [])
    benign_calls = frozenset(
        str(v) for v in benign_raw if isinstance(v, str)
    )

    functions: dict[str, dict[str, Any]] = {}

    def add_function(
        qual: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef | None,
        body: list[ast.stmt],
        cls: str | None,
        line: int,
        col: int,
    ) -> None:
        calls: list[dict[str, Any]] = []
        own_nodes: list[ast.stmt] = body
        for stmt in own_nodes:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    described = _describe_call(sub, aliases)
                    if described is not None:
                        calls.append(described)
        reads, writes = _effects_of(own_nodes)
        functions[qual] = {
            "name": qual.rsplit(".", 1)[-1],
            "cls": cls,
            "line": line,
            "col": col,
            "calls": calls,
            "taints": [],
            "reads": reads,
            "writes": writes,
            "proto": _build_protocol_ir(own_nodes),
        }

    # Module-level code (everything not inside a def/class def body).
    module_level: list[ast.stmt] = [
        stmt
        for stmt in tree.body
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    ]
    add_function("<module>", None, module_level, None, 1, 0)

    def visit_defs(node: ast.AST, prefix: str, cls: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit_defs(child, f"{prefix}{child.name}.", child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                own_body = [
                    stmt
                    for stmt in child.body
                ]
                add_function(
                    qual, child, own_body, cls, child.lineno, child.col_offset
                )
                visit_defs(child, f"{qual}.<locals>.", None)
                # Closure creation approximates a call edge to the inner
                # function (it typically escapes to be invoked later).
                for sub in child.body:
                    for inner in ast.walk(sub):
                        if (
                            isinstance(
                                inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                            )
                            and inner is not child
                        ):
                            functions[qual]["calls"].append(
                                {
                                    "kind": "local",
                                    "target": f"{qual}.<locals>.{inner.name}",
                                    "line": inner.lineno,
                                    "col": inner.col_offset,
                                }
                            )
                            break

    visit_defs(tree, "", None)

    # Direct taint sources, attributed to their enclosing function.  A
    # function's own body excludes nested defs, but the span attribution
    # assigns each finding to the innermost def containing its line,
    # which is exactly the function whose call sites should be flagged.
    for rule in _TAINT_RULES:
        for finding in rule.check(tree, module, config):
            owner = _owner_of(finding.line, fn_spans)
            entry = functions.get(owner)
            if entry is None:
                continue
            entry["taints"].append(
                {
                    "rule": TAINT_FLOW_RULE[rule.name],
                    "src_rule": rule.name,
                    "line": finding.line,
                    "col": finding.col,
                    "detail": finding.message.split(";")[0],
                    "suppressed": suppressions.allows(finding.line, rule.name),
                }
            )

    summary["functions"] = functions

    # Classes: slots, callability, epoch-guard verdicts.
    classes: dict[str, dict[str, Any]] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        methods = sorted(
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        slots = _class_slots(node)
        bases: list[str] = []
        for base in node.bases:
            chain = _attr_chain(base)
            if chain is not None:
                root = chain[0]
                if root in aliases:
                    bases.append(".".join([aliases[root], *chain[1:]]))
                else:
                    bases.append(".".join(chain))
        call_def = next(
            (
                stmt
                for stmt in node.body
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "__call__"
            ),
            None,
        )
        epoch: dict[str, Any] | None = None
        stores_epoch = "epoch" in slots
        if call_def is not None and stores_epoch:
            epoch = _EpochChecker(call_def, benign_calls).check()
        classes[node.name] = {
            "line": node.lineno,
            "col": node.col_offset,
            "bases": bases,
            "methods": methods,
            "slots": slots,
            "has_call": call_def is not None,
            "stores_epoch": stores_epoch,
            "defines_protocol": len(PROTOCOL_OPS & set(methods)) >= 3,
            "epoch": epoch,
        }
    summary["classes"] = classes
    return summary


# ---------------------------------------------------------------------------
# Project index
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class ProjectIndex:
    """All module summaries plus the derived project symbol tables."""

    summaries: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: dotted symbol -> function id "module:qual-suffix"
    symbols: dict[str, str] = field(default_factory=dict)
    #: method name -> sorted list of function ids defining it (CHA fallback)
    methods_by_name: dict[str, list[str]] = field(default_factory=dict)
    #: class dotted name -> (module, class summary)
    classes: dict[str, tuple[str, dict[str, Any]]] = field(default_factory=dict)
    #: per-path suppression matchers rebuilt from summaries
    suppressions: dict[str, SpanAllows] = field(default_factory=dict)
    limits: dict[str, int] = field(default_factory=dict)

    def function(self, fid: str) -> dict[str, Any] | None:
        module, _, suffix = fid.partition(":")
        summary = self.summaries.get(module)
        if summary is None:
            return None
        fn: dict[str, Any] | None = summary["functions"].get(suffix)
        return fn

    def path_of(self, fid: str) -> str:
        module, _, _ = fid.partition(":")
        path: str = self.summaries[module]["path"]
        return path

    def matcher_for(self, fid_or_module: str) -> SpanAllows | None:
        module = fid_or_module.partition(":")[0]
        summary = self.summaries.get(module)
        if summary is None:
            return None
        return self.suppressions.get(summary["path"])


def matcher_from_summary(summary: dict[str, Any]) -> SpanAllows:
    """Rebuild a suppression matcher from a (possibly cached) summary."""
    by_line = {
        int(line): frozenset(rules) for line, rules in summary["allow"]
    }
    spans = {
        int(line): (int(start), int(end))
        for line, start, end in summary["spans"]
    }
    return SpanAllows(by_line, spans)


def build_index(
    summaries: dict[str, dict[str, Any]]
) -> ProjectIndex:
    """Derive the project-wide symbol tables from per-module summaries."""
    index = ProjectIndex(summaries=summaries)
    limits: dict[str, int] = {"parse_errors": 0, "unresolved_calls": 0}
    for module in sorted(summaries):
        summary = summaries[module]
        if summary["error"] is not None:
            limits["parse_errors"] += 1
            continue
        index.suppressions[summary["path"]] = matcher_from_summary(summary)
        for suffix in sorted(summary["functions"]):
            fid = f"{module}:{suffix}"
            if "." not in suffix and suffix != "<module>":
                index.symbols[f"{module}.{suffix}"] = fid
            elif suffix.count(".") == 1 and "<locals>" not in suffix:
                cls, meth = suffix.split(".")
                index.symbols[f"{module}.{cls}.{meth}"] = fid
                index.methods_by_name.setdefault(meth, []).append(fid)
        for cls_name in sorted(summary["classes"]):
            index.classes[f"{module}.{cls_name}"] = (
                module,
                summary["classes"][cls_name],
            )
    # Re-exported names: repro.engine.ServingEngine.run etc. resolve via
    # the defining module only; package __init__ re-exports are resolved
    # by the alias collector at the import site.
    for name in index.methods_by_name:
        index.methods_by_name[name].sort()
    index.limits = limits
    return index


def load_project(
    paths: Iterable[Path],
    config: LintConfig,
    cached_summaries: dict[str, dict[str, Any]] | None = None,
    cache_lookup: Any | None = None,
) -> ProjectIndex:
    """Summarize every module under ``paths`` and build the index.

    ``cache_lookup`` is an optional callable ``(path, source) ->
    summary | None`` consulted before extraction (see
    :mod:`repro.lint.flow.cache`).
    """
    summaries: dict[str, dict[str, Any]] = (
        dict(cached_summaries) if cached_summaries else {}
    )
    for file_path in iter_python_files(paths):
        source = read_python_source(file_path)
        module = module_name_for(file_path)
        summary: dict[str, Any] | None = None
        if cache_lookup is not None:
            summary = cache_lookup(file_path, source)
        if summary is None:
            summary = summarize_module(
                source,
                str(file_path),
                module,
                is_package=file_path.name == "__init__.py",
                config=config,
            )
        summaries[module] = summary
    return build_index(summaries)
