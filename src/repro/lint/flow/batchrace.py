"""Same-timestamp batch-race detection over event-handler effect sets.

``Simulator.collect_batch`` dispatches all events sharing a timestamp as
one batch; two handlers in the same batch whose effect sets conflict
(one writes an engine/store attribute the other reads or writes) make
the intra-batch order observable, which is exactly what the determinism
contract forbids relying on.  This pass expands each handler class's
``__call__`` effects through resolved calls (``self.engine.m()`` pulls
in the engine method's own ``self``-effects, rebased onto ``engine.``)
and flags conflicting pairs.  Effects are approximate by construction —
attribute paths are truncated and dynamic dispatch is unresolved — so
findings here are review prompts, baselined once reviewed.
"""

from __future__ import annotations

from typing import Any

from ..config import LintConfig
from .baseline import FlowFinding
from .callgraph import _resolve_by_name, _resolve_self
from .project import MUTATOR_METHODS, ProjectIndex

BATCH_RACE_RULE = "batch-race"

_MAX_DEPTH = 4


def _rebase(entry: str, root: str | None) -> str | None:
    """Map a ``self``-rooted effect path into handler coordinates.

    For the handler itself (``root is None``) only ``engine.*`` /
    ``store.*`` effects are shared state; its other slots are
    per-instance.  For an expanded engine/store method, ``self`` *is*
    that object, so every effect is rebased under the root (with
    ``self.store`` inside an engine method collapsing to ``store``).
    """
    head = entry.split(".", 1)[0]
    if root is None:
        if head in ("engine", "store"):
            return entry
        return None
    if root == "engine" and head == "store":
        return entry
    # Keep at most root + 2 segments so fingerprints stay stable.
    return ".".join([root, *entry.split(".")[:2]])


class _Expander:
    """Accumulate expanded (reads, writes) for one handler class."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.reads: set[str] = set()
        self.writes: set[str] = set()
        self.visited: set[tuple[str, str]] = set()

    def expand(self, fid: str, root: str | None, depth: int) -> None:
        key = (fid, root if root is not None else "")
        if key in self.visited or depth > _MAX_DEPTH:
            return
        self.visited.add(key)
        fn = self.index.function(fid)
        if fn is None:
            return
        for entry in fn["reads"]:
            mapped = _rebase(str(entry), root)
            if mapped is not None:
                self.reads.add(mapped)
        for entry in fn["writes"]:
            mapped = _rebase(str(entry), root)
            if mapped is not None:
                self.writes.add(mapped)
        module = fid.partition(":")[0]
        suffix = fid.partition(":")[2]
        cls = suffix.split(".")[0] if "." in suffix else None
        for call in fn["calls"]:
            self._expand_call(fid, module, cls, call, root, depth)

    def _expand_call(
        self,
        fid: str,
        module: str,
        cls: str | None,
        call: dict[str, Any],
        root: str | None,
        depth: int,
    ) -> None:
        kind = str(call["kind"])
        target = str(call["target"])
        if kind == "self" and cls is not None:
            resolved = _resolve_self(self.index, module, cls, target)
            if resolved is not None:
                self.expand(resolved, root, depth + 1)
            return
        if kind in ("member", "attr"):
            # ``member`` is self.engine.m(); ``attr`` covers the idiomatic
            # local alias (``engine = self.engine; engine.m()``) whose
            # receiver name follows the engine/store convention.
            recv = str(call["recv"])
            if kind == "attr" and recv.split(".", 1)[0] not in (
                "engine",
                "store",
            ):
                return
            new_root: str | None = None
            if root is None and recv in ("engine", "store"):
                new_root = recv
            elif root is None and recv.startswith("engine.store"):
                new_root = "store"
            elif root == "engine" and recv == "store":
                new_root = "store"
            if new_root is not None:
                resolved, _ = _resolve_by_name(self.index, target)
                if resolved is not None:
                    self.expand(resolved, new_root, depth + 1)
                    return
                # Unresolvable method on the shared object: record the
                # call itself as an effect on the receiver.
                effect = new_root
            else:
                mapped = _rebase(recv, root)
                if mapped is None:
                    return
                effect = mapped
            if target in MUTATOR_METHODS:
                self.writes.add(effect)
            else:
                self.reads.add(effect)


def handler_classes(index: ProjectIndex) -> list[str]:
    """Event-handler classes: callable, holding an engine/store slot."""
    out: list[str] = []
    for cls_key in sorted(index.classes):
        _, summary = index.classes[cls_key]
        if not summary["has_call"]:
            continue
        slots = set(summary["slots"])
        if "engine" in slots or "store" in slots:
            out.append(cls_key)
    return out


def _conflicts(
    a: tuple[set[str], set[str]], b: tuple[set[str], set[str]]
) -> set[str]:
    a_reads, a_writes = a
    b_reads, b_writes = b
    return (a_writes & (b_reads | b_writes)) | (b_writes & a_reads)


def run_batch_race_pass(
    index: ProjectIndex, config: LintConfig
) -> list[FlowFinding]:
    classes = handler_classes(index)
    ignore_raw = config.options_for(BATCH_RACE_RULE).get("ignore-attrs", [])
    ignore = {str(v) for v in ignore_raw if isinstance(v, str)}
    effects: dict[str, tuple[set[str], set[str]]] = {}
    for cls_key in classes:
        module, _ = index.classes[cls_key]
        cls_name = cls_key.rsplit(".", 1)[-1]
        expander = _Expander(index)
        expander.expand(f"{module}:{cls_name}.__call__", None, 0)
        effects[cls_key] = (
            expander.reads - ignore,
            expander.writes - ignore,
        )

    findings: list[FlowFinding] = []
    for i, a_key in enumerate(classes):
        for b_key in classes[i + 1 :]:
            shared = _conflicts(effects[a_key], effects[b_key])
            if not shared:
                continue
            a_module, a_summary = index.classes[a_key]
            b_module, b_summary = index.classes[b_key]
            a_matcher = index.matcher_for(a_module)
            b_matcher = index.matcher_for(b_module)
            if a_matcher is not None and a_matcher.allows(
                int(a_summary["line"]), BATCH_RACE_RULE
            ):
                continue
            if b_matcher is not None and b_matcher.allows(
                int(b_summary["line"]), BATCH_RACE_RULE
            ):
                continue
            a_name = a_key.rsplit(".", 1)[-1]
            b_name = b_key.rsplit(".", 1)[-1]
            attrs = ", ".join(sorted(shared)[:6])
            more = len(shared) - 6
            if more > 0:
                attrs += f" (+{more} more)"
            findings.append(
                FlowFinding(
                    path=str(index.summaries[a_module]["path"]),
                    line=int(a_summary["line"]),
                    col=int(a_summary["col"]),
                    rule=BATCH_RACE_RULE,
                    message=(
                        f"handlers '{a_name}' and '{b_name}' can share a "
                        f"same-timestamp batch and conflict on {attrs}; "
                        "intra-batch dispatch order is observable — make "
                        "the handlers commute or justify why they cannot "
                        "share a timestamp"
                    ),
                    scope=f"{a_key}|{b_key}",
                    key="",
                )
            )
    findings.sort(key=FlowFinding.sort_key)
    return findings
