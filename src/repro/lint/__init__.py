"""repro.lint: simulator-specific static analysis.

The reproduction's credibility rests on properties ordinary linters do not
check: bit-identical determinism (no wall clocks, no unseeded randomness,
no hash/set-ordering leaks into ordered state), float safety on the hot
paths that accumulate simulated time, allocation hygiene (``slots`` on
hot-path dataclasses) and the cluster-isolation contract (a replica's
AttentionStore may only be touched by foreign code through the migration
API).  This package turns those implicit contracts into machine-checked
ones: an AST pass over ``src/repro`` with rules catalogued in
:mod:`repro.lint.rules`, driven by :func:`lint_paths`.

On top of the per-file rules, :mod:`repro.lint.flow` runs whole-program
passes over a project symbol table and call graph — transitive
determinism taint, epoch-guard verification for continuations, the
store's exactly-one-copy protocol typestate, and same-timestamp
batch-race detection — behind ``--flow``, with a ratcheted baseline for
reviewed pre-existing findings.

Run it as ``python -m repro.cli lint src/repro`` (or ``python -m
repro.lint src/repro``); add ``--flow`` for the whole-program analyzer
and ``--unused-suppressions`` for the dead-suppression audit.
Configuration lives in ``[tool.repro-lint]`` in ``pyproject.toml``.
Suppressions are inline and must carry a justification:
``# repro-lint: allow=<rule> (<why this is safe>)``.
"""

from __future__ import annotations

from .checker import (
    lint_paths,
    lint_source,
    unused_suppression_report,
)
from .config import FlowOptions, LintConfig, load_config
from .diagnostics import Diagnostic
from .rules import ALL_RULE_NAMES, FLOW_RULE_CODES, RULES, Rule

__all__ = [
    "ALL_RULE_NAMES",
    "Diagnostic",
    "FLOW_RULE_CODES",
    "FlowOptions",
    "LintConfig",
    "RULES",
    "Rule",
    "lint_paths",
    "lint_source",
    "load_config",
    "unused_suppression_report",
]
