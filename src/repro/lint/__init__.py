"""repro.lint: simulator-specific static analysis.

The reproduction's credibility rests on properties ordinary linters do not
check: bit-identical determinism (no wall clocks, no unseeded randomness,
no hash/set-ordering leaks into ordered state), float safety on the hot
paths that accumulate simulated time, allocation hygiene (``slots`` on
hot-path dataclasses) and the cluster-isolation contract (a replica's
AttentionStore may only be touched by foreign code through the migration
API).  This package turns those implicit contracts into machine-checked
ones: an AST pass over ``src/repro`` with rules catalogued in
:mod:`repro.lint.rules`, driven by :func:`lint_paths`.

Run it as ``python -m repro.cli lint src/repro`` (or ``python -m
repro.lint src/repro``); configuration lives in ``[tool.repro-lint]`` in
``pyproject.toml``.  Suppressions are inline and must carry a
justification: ``# repro-lint: allow=<rule> (<why this is safe>)``.
"""

from __future__ import annotations

from .checker import lint_paths, lint_source
from .config import LintConfig, load_config
from .diagnostics import Diagnostic
from .rules import RULES, Rule

__all__ = [
    "Diagnostic",
    "LintConfig",
    "RULES",
    "Rule",
    "lint_paths",
    "lint_source",
    "load_config",
]
