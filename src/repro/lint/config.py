"""Configuration for repro-lint, read from ``[tool.repro-lint]``.

The scopes mirror the invariants being enforced: float-equality and
allocation hygiene only matter on the simulator hot paths, and the
isolation rule only constrains the cluster layer.  Determinism and typing
rules always apply to the whole tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping

try:  # tomllib is 3.11+; on 3.10 we fall back to the built-in defaults.
    import tomllib
except ImportError:  # pragma: no cover - exercised only on Python 3.10
    tomllib = None  # type: ignore[assignment]

#: Packages whose code runs once per simulated event/turn ("hot path").
DEFAULT_HOT_PATH_PACKAGES = (
    "repro.sim",
    "repro.engine",
    "repro.store",
    "repro.cluster",
    "repro.hardware",
)

#: Packages whose dataclasses must declare ``slots=True``.
DEFAULT_SLOTS_PACKAGES = (
    "repro.sim",
    "repro.engine",
    "repro.store",
    "repro.cluster",
)

#: Packages subject to the cluster-isolation rule.
DEFAULT_CLUSTER_PACKAGES = ("repro.cluster",)

#: The only attributes cluster code may reach on a replica's store: the
#: migration API of AttentionStore (plus ``discard_stale`` /
#: ``record_migration_loss``, the bookkeeping half of the same contract,
#: and ``decommission``, the drain-time release of whatever remains).
#: ``has_shared``/``shared_ref_of``/``item_bytes`` are the read-only
#: shared-prefix half: the cluster consults them to size a migration's
#: wire transfer and skip prefix bytes the target already holds.
DEFAULT_STORE_MIGRATION_API = frozenset(
    {
        "extract",
        "admit_migrated",
        "discard_stale",
        "record_migration_loss",
        "decommission",
        "has_shared",
        "shared_ref_of",
        "item_bytes",
    }
)


@dataclass(frozen=True, slots=True)
class FlowOptions:
    """Options for the whole-program analyzer (``[tool.repro-lint.flow]``)."""

    #: Baseline file for pre-existing findings, relative to the pyproject
    #: root (ratcheted: runs fail on findings not recorded here).
    baseline: str = "lint-flow-baseline.json"
    #: Per-file summary cache path (relative to the pyproject root);
    #: ``None`` disables caching.
    cache: str | None = ".repro-lint-cache/flow.json"
    #: Path-enumeration budget per function for the store-protocol pass;
    #: functions exceeding it are skipped and counted in the limits report.
    max_paths: int = 256


@dataclass(frozen=True, slots=True)
class LintConfig:
    """Effective rule configuration."""

    disable: frozenset[str] = frozenset()
    hot_path_packages: tuple[str, ...] = DEFAULT_HOT_PATH_PACKAGES
    slots_packages: tuple[str, ...] = DEFAULT_SLOTS_PACKAGES
    cluster_packages: tuple[str, ...] = DEFAULT_CLUSTER_PACKAGES
    store_migration_api: frozenset[str] = field(
        default_factory=lambda: DEFAULT_STORE_MIGRATION_API
    )
    flow: FlowOptions = field(default_factory=FlowOptions)
    #: Validated per-rule option tables
    #: (``[tool.repro-lint.rule-options.<rule>]``), keyed by rule name.
    rule_options: Mapping[str, Mapping[str, Any]] = field(
        default_factory=dict
    )

    def in_scope(self, module: str, packages: tuple[str, ...]) -> bool:
        """True when ``module`` lives inside any of ``packages``."""
        return any(
            module == pkg or module.startswith(pkg + ".") for pkg in packages
        )

    def options_for(self, rule: str) -> Mapping[str, Any]:
        """The validated option table for ``rule`` (empty when unset)."""
        return self.rule_options.get(rule, {})


def _as_str_tuple(value: Any, key: str) -> tuple[str, ...]:
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise TypeError(f"[tool.repro-lint] {key} must be a list of strings")
    return tuple(value)


def _validated_rule_names(value: Any, key: str) -> frozenset[str]:
    """Check every entry against the rule catalogue; name the offender.

    A silently-ignored typo in ``disable`` leaves the misspelled rule
    enforcing while the author believes it off — the config must reject
    it loudly instead.
    """
    from .rules import ALL_RULE_NAMES

    names = _as_str_tuple(value, key)
    for name in names:
        if name not in ALL_RULE_NAMES:
            raise KeyError(
                f"[tool.repro-lint] {key} names unknown rule '{name}'; "
                f"known rules: {', '.join(sorted(ALL_RULE_NAMES))}"
            )
    return frozenset(names)


def _flow_options_from_mapping(data: Any) -> FlowOptions:
    """Parse and validate the ``[tool.repro-lint.flow]`` table."""
    if not isinstance(data, dict):
        raise TypeError("[tool.repro-lint.flow] must be a table")
    known = {"baseline", "cache", "max-paths"}
    unknown = set(data) - known
    if unknown:
        raise KeyError(
            f"unknown [tool.repro-lint.flow] keys: {', '.join(sorted(unknown))}"
        )
    opts = FlowOptions()
    if "baseline" in data:
        if not isinstance(data["baseline"], str):
            raise TypeError("[tool.repro-lint.flow] baseline must be a string")
        opts = replace(opts, baseline=data["baseline"])
    if "cache" in data:
        cache = data["cache"]
        if not (cache is None or isinstance(cache, str)):
            raise TypeError(
                "[tool.repro-lint.flow] cache must be a string path or "
                "absent; use cache = \"\" to disable"
            )
        opts = replace(opts, cache=cache or None)
    if "max-paths" in data:
        max_paths = data["max-paths"]
        if not isinstance(max_paths, int) or isinstance(max_paths, bool) or max_paths < 1:
            raise TypeError(
                "[tool.repro-lint.flow] max-paths must be a positive integer"
            )
        opts = replace(opts, max_paths=max_paths)
    return opts


def _rule_options_from_mapping(data: Any) -> dict[str, dict[str, Any]]:
    """Parse and validate ``[tool.repro-lint.rule-options.<rule>]`` tables.

    Every table key must be a known rule name, the value must itself be a
    table, and every option key must be one the rule declares
    (:data:`repro.lint.rules.RULE_OPTION_KEYS`) — rules without declared
    options accept none.
    """
    from .rules import ALL_RULE_NAMES, RULE_OPTION_KEYS

    if not isinstance(data, dict):
        raise TypeError("[tool.repro-lint.rule-options] must be a table")
    validated: dict[str, dict[str, Any]] = {}
    for rule, options in data.items():
        if rule not in ALL_RULE_NAMES:
            raise KeyError(
                f"[tool.repro-lint.rule-options] names unknown rule "
                f"'{rule}'; known rules: {', '.join(sorted(ALL_RULE_NAMES))}"
            )
        if not isinstance(options, dict):
            raise TypeError(
                f"[tool.repro-lint.rule-options.{rule}] must be a table"
            )
        allowed = RULE_OPTION_KEYS.get(rule, frozenset())
        for key in options:
            if key not in allowed:
                accepted = (
                    f"accepted options: {', '.join(sorted(allowed))}"
                    if allowed
                    else "this rule accepts no options"
                )
                raise KeyError(
                    f"[tool.repro-lint.rule-options.{rule}] has unknown "
                    f"option '{key}'; {accepted}"
                )
        validated[rule] = dict(options)
    return validated


def config_from_mapping(data: dict[str, Any]) -> LintConfig:
    """Build a :class:`LintConfig` from a parsed ``[tool.repro-lint]`` table."""
    cfg = LintConfig()
    known = {
        "disable",
        "hot-path-packages",
        "slots-packages",
        "cluster-packages",
        "store-migration-api",
        "flow",
        "rule-options",
    }
    unknown = set(data) - known
    if unknown:
        raise KeyError(
            f"unknown [tool.repro-lint] keys: {', '.join(sorted(unknown))}"
        )
    if "disable" in data:
        cfg = replace(cfg, disable=_validated_rule_names(data["disable"], "disable"))
    if "flow" in data:
        cfg = replace(cfg, flow=_flow_options_from_mapping(data["flow"]))
    if "rule-options" in data:
        cfg = replace(
            cfg, rule_options=_rule_options_from_mapping(data["rule-options"])
        )
    if "hot-path-packages" in data:
        cfg = replace(
            cfg,
            hot_path_packages=_as_str_tuple(
                data["hot-path-packages"], "hot-path-packages"
            ),
        )
    if "slots-packages" in data:
        cfg = replace(
            cfg, slots_packages=_as_str_tuple(data["slots-packages"], "slots-packages")
        )
    if "cluster-packages" in data:
        cfg = replace(
            cfg,
            cluster_packages=_as_str_tuple(
                data["cluster-packages"], "cluster-packages"
            ),
        )
    if "store-migration-api" in data:
        cfg = replace(
            cfg,
            store_migration_api=frozenset(
                _as_str_tuple(data["store-migration-api"], "store-migration-api")
            ),
        )
    return cfg


def find_pyproject(start: Path) -> Path | None:
    """Walk up from ``start`` looking for a pyproject.toml."""
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for candidate in (node, *node.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(start: Path | None = None) -> LintConfig:
    """Load the lint config for the tree containing ``start``.

    Falls back to the built-in defaults when no pyproject.toml is found or
    when running on Python 3.10 (no ``tomllib``); the defaults are kept in
    sync with the checked-in ``[tool.repro-lint]`` table by a test.
    """
    if tomllib is None:
        return LintConfig()
    pyproject = find_pyproject(start if start is not None else Path.cwd())
    if pyproject is None:
        return LintConfig()
    with pyproject.open("rb") as fh:
        parsed = tomllib.load(fh)
    table = parsed.get("tool", {}).get("repro-lint", {})
    if not isinstance(table, dict):
        raise TypeError("[tool.repro-lint] must be a table")
    return config_from_mapping(table)
