"""Configuration for repro-lint, read from ``[tool.repro-lint]``.

The scopes mirror the invariants being enforced: float-equality and
allocation hygiene only matter on the simulator hot paths, and the
isolation rule only constrains the cluster layer.  Determinism and typing
rules always apply to the whole tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

try:  # tomllib is 3.11+; on 3.10 we fall back to the built-in defaults.
    import tomllib
except ImportError:  # pragma: no cover - exercised only on Python 3.10
    tomllib = None  # type: ignore[assignment]

#: Packages whose code runs once per simulated event/turn ("hot path").
DEFAULT_HOT_PATH_PACKAGES = (
    "repro.sim",
    "repro.engine",
    "repro.store",
    "repro.cluster",
    "repro.hardware",
)

#: Packages whose dataclasses must declare ``slots=True``.
DEFAULT_SLOTS_PACKAGES = (
    "repro.sim",
    "repro.engine",
    "repro.store",
    "repro.cluster",
)

#: Packages subject to the cluster-isolation rule.
DEFAULT_CLUSTER_PACKAGES = ("repro.cluster",)

#: The only attributes cluster code may reach on a replica's store: the
#: migration API of AttentionStore (plus ``discard_stale`` /
#: ``record_migration_loss``, the bookkeeping half of the same contract,
#: and ``decommission``, the drain-time release of whatever remains).
DEFAULT_STORE_MIGRATION_API = frozenset(
    {
        "extract",
        "admit_migrated",
        "discard_stale",
        "record_migration_loss",
        "decommission",
    }
)


@dataclass(frozen=True, slots=True)
class LintConfig:
    """Effective rule configuration."""

    disable: frozenset[str] = frozenset()
    hot_path_packages: tuple[str, ...] = DEFAULT_HOT_PATH_PACKAGES
    slots_packages: tuple[str, ...] = DEFAULT_SLOTS_PACKAGES
    cluster_packages: tuple[str, ...] = DEFAULT_CLUSTER_PACKAGES
    store_migration_api: frozenset[str] = field(
        default_factory=lambda: DEFAULT_STORE_MIGRATION_API
    )

    def in_scope(self, module: str, packages: tuple[str, ...]) -> bool:
        """True when ``module`` lives inside any of ``packages``."""
        return any(
            module == pkg or module.startswith(pkg + ".") for pkg in packages
        )


def _as_str_tuple(value: Any, key: str) -> tuple[str, ...]:
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise TypeError(f"[tool.repro-lint] {key} must be a list of strings")
    return tuple(value)


def config_from_mapping(data: dict[str, Any]) -> LintConfig:
    """Build a :class:`LintConfig` from a parsed ``[tool.repro-lint]`` table."""
    cfg = LintConfig()
    known = {
        "disable",
        "hot-path-packages",
        "slots-packages",
        "cluster-packages",
        "store-migration-api",
    }
    unknown = set(data) - known
    if unknown:
        raise KeyError(
            f"unknown [tool.repro-lint] keys: {', '.join(sorted(unknown))}"
        )
    if "disable" in data:
        cfg = replace(cfg, disable=frozenset(_as_str_tuple(data["disable"], "disable")))
    if "hot-path-packages" in data:
        cfg = replace(
            cfg,
            hot_path_packages=_as_str_tuple(
                data["hot-path-packages"], "hot-path-packages"
            ),
        )
    if "slots-packages" in data:
        cfg = replace(
            cfg, slots_packages=_as_str_tuple(data["slots-packages"], "slots-packages")
        )
    if "cluster-packages" in data:
        cfg = replace(
            cfg,
            cluster_packages=_as_str_tuple(
                data["cluster-packages"], "cluster-packages"
            ),
        )
    if "store-migration-api" in data:
        cfg = replace(
            cfg,
            store_migration_api=frozenset(
                _as_str_tuple(data["store-migration-api"], "store-migration-api")
            ),
        )
    return cfg


def find_pyproject(start: Path) -> Path | None:
    """Walk up from ``start`` looking for a pyproject.toml."""
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for candidate in (node, *node.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(start: Path | None = None) -> LintConfig:
    """Load the lint config for the tree containing ``start``.

    Falls back to the built-in defaults when no pyproject.toml is found or
    when running on Python 3.10 (no ``tomllib``); the defaults are kept in
    sync with the checked-in ``[tool.repro-lint]`` table by a test.
    """
    if tomllib is None:
        return LintConfig()
    pyproject = find_pyproject(start if start is not None else Path.cwd())
    if pyproject is None:
        return LintConfig()
    with pyproject.open("rb") as fh:
        parsed = tomllib.load(fh)
    table = parsed.get("tool", {}).get("repro-lint", {})
    if not isinstance(table, dict):
        raise TypeError("[tool.repro-lint] must be a table")
    return config_from_mapping(table)
