"""``python -m repro.lint [paths...]``."""

from __future__ import annotations

import sys

from .checker import run_lint

if __name__ == "__main__":
    sys.exit(run_lint())
