"""LLM specification registry.

The paper evaluates LLaMA-1-65B, LLaMA-2-13B, LLaMA-2-70B, Falcon-40B and
Mistral-7B.  The simulator only needs the *architectural* facts about each
model: parameter count (drives prefill FLOPs and weight-read bytes), layer
count and KV-head geometry (drives per-token KV-cache size), and the context
window (drives truncation behaviour).

Per-token KV sizes derived here match the numbers published in the paper
(Section 4.2): 2.5 MB for LLaMA-65B, 0.78 MB for LLaMA-13B, 0.31 MB for
LLaMA-70B (GQA factor 8) and 0.12 MB for Falcon-40B (GQA factor 16).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache


MiB = 1024 * 1024
GiB = 1024 * MiB
TiB = 1024 * GiB


@dataclass(frozen=True)
class ModelSpec:
    """Architectural description of a transformer LLM.

    Attributes:
        name: canonical model name, e.g. ``"llama-13b"``.
        n_params: total parameter count.
        n_layers: number of transformer layers.
        d_model: hidden dimension.
        n_heads: number of query attention heads.
        n_kv_heads: number of key/value heads (``< n_heads`` under GQA/MQA).
        head_dim: per-head dimension.
        context_window: maximum supported context length in tokens.
        dtype_bytes: bytes per value of activations/KV (2 for FP16).
        default_num_gpus: GPUs used for this model in the paper's testbed.
        default_batch_size: continuous-batching batch size used in the paper.
    """

    name: str
    n_params: int
    n_layers: int
    d_model: int
    n_heads: int
    n_kv_heads: int
    head_dim: int
    context_window: int
    dtype_bytes: int = 2
    default_num_gpus: int = 4
    default_batch_size: int = 24

    def __post_init__(self) -> None:
        if self.n_params <= 0:
            raise ValueError(f"n_params must be positive, got {self.n_params}")
        if self.n_layers <= 0:
            raise ValueError(f"n_layers must be positive, got {self.n_layers}")
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError(
                f"n_heads ({self.n_heads}) must be a multiple of "
                f"n_kv_heads ({self.n_kv_heads})"
            )
        if self.context_window <= 0:
            raise ValueError(
                f"context_window must be positive, got {self.context_window}"
            )
        # kv_bytes sits on the engine's per-turn hot path; a per-instance
        # bound-closure cache skips re-validating the same token counts
        # without hashing the spec itself (the frozen dataclass guarantees
        # the derived size never changes).
        object.__setattr__(
            self, "_kv_bytes_cached", lru_cache(maxsize=None)(self._kv_bytes)
        )

    @property
    def gqa_factor(self) -> int:
        """Group-query-attention factor (1 for vanilla multi-head attention)."""
        return self.n_heads // self.n_kv_heads

    @property
    def kv_dim(self) -> int:
        """Width of the K (or V) vector cached per layer per token."""
        return self.n_kv_heads * self.head_dim

    @property
    def kv_bytes_per_token(self) -> int:
        """KV-cache footprint of a single token across all layers, in bytes.

        K and V each contribute ``n_layers * kv_dim`` values.
        """
        return 2 * self.n_layers * self.kv_dim * self.dtype_bytes

    @property
    def weight_bytes(self) -> int:
        """Model weight footprint in bytes (FP16 unless overridden)."""
        return self.n_params * self.dtype_bytes

    def _kv_bytes(self, n_tokens: int) -> int:
        if n_tokens < 0:
            raise ValueError(f"n_tokens must be non-negative, got {n_tokens}")
        return n_tokens * self.kv_bytes_per_token

    def kv_bytes(self, n_tokens: int) -> int:
        """KV-cache footprint of ``n_tokens`` tokens, in bytes."""
        return self._kv_bytes_cached(n_tokens)

    def prefill_flops(self, n_new: int, n_past: int = 0) -> float:
        """Approximate FLOPs to prefill ``n_new`` tokens given ``n_past``
        tokens of existing KV cache.

        Uses the standard 2 * params FLOPs/token for the dense matmuls plus
        the quadratic attention term ``2 * 2 * n_new * (n_past + n_new/2)
        * n_layers * n_heads * head_dim`` (score and value matmuls).
        """
        if n_new < 0 or n_past < 0:
            raise ValueError("token counts must be non-negative")
        dense = 2.0 * self.n_params * n_new
        attended = n_past + n_new / 2.0
        attn = 4.0 * n_new * attended * self.n_layers * self.n_heads * self.head_dim
        return dense + attn

    def decode_flops(self, n_past: int) -> float:
        """Approximate FLOPs to decode one token with ``n_past`` context."""
        return self.prefill_flops(1, n_past)


# The registry of models used in the paper's evaluation.  Geometry follows
# the published architectures; ``default_num_gpus``/``default_batch_size``
# follow Section 4.1 ("LLaMA-13B operates on two GPUs with 24 batches, while
# LLaMA-65B, LLaMA-70B, and Falcon-40B run on four GPUs, handling 24 batches
# each").
MODEL_REGISTRY: dict[str, ModelSpec] = {}


def register_model(spec: ModelSpec) -> ModelSpec:
    """Add ``spec`` to the global registry, rejecting duplicates."""
    if spec.name in MODEL_REGISTRY:
        raise ValueError(f"model {spec.name!r} already registered")
    MODEL_REGISTRY[spec.name] = spec
    return spec


def get_model(name: str) -> ModelSpec:
    """Look up a model spec by name.

    Raises:
        KeyError: with the list of known models if ``name`` is unknown.
    """
    try:
        return MODEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None


LLAMA_7B = register_model(
    ModelSpec(
        name="llama-7b",
        n_params=6_700_000_000,
        n_layers=32,
        d_model=4096,
        n_heads=32,
        n_kv_heads=32,
        head_dim=128,
        context_window=2048,
        default_num_gpus=1,
        default_batch_size=16,
    )
)

LLAMA_13B = register_model(
    ModelSpec(
        name="llama-13b",
        n_params=13_000_000_000,
        n_layers=40,
        d_model=5120,
        n_heads=40,
        n_kv_heads=40,
        head_dim=128,
        context_window=4096,  # LLaMA-2
        default_num_gpus=2,
        default_batch_size=24,
    )
)

LLAMA_65B = register_model(
    ModelSpec(
        name="llama-65b",
        n_params=65_000_000_000,
        n_layers=80,
        d_model=8192,
        n_heads=64,
        n_kv_heads=64,
        head_dim=128,
        context_window=2048,  # LLaMA-1
        default_num_gpus=4,
        default_batch_size=24,
    )
)

LLAMA_70B = register_model(
    ModelSpec(
        name="llama-70b",
        n_params=70_000_000_000,
        n_layers=80,
        d_model=8192,
        n_heads=64,
        n_kv_heads=8,  # GQA factor 8
        head_dim=128,
        context_window=4096,  # LLaMA-2
        default_num_gpus=4,
        default_batch_size=24,
    )
)

FALCON_40B = register_model(
    ModelSpec(
        name="falcon-40b",
        n_params=40_000_000_000,
        n_layers=60,
        d_model=8192,
        n_heads=128,
        n_kv_heads=8,  # GQA factor 16
        head_dim=64,
        context_window=2048,
        default_num_gpus=4,
        default_batch_size=24,
    )
)

MISTRAL_7B = register_model(
    ModelSpec(
        name="mistral-7b",
        n_params=7_200_000_000,
        n_layers=32,
        d_model=4096,
        n_heads=32,
        n_kv_heads=8,
        head_dim=128,
        context_window=32768,
        default_num_gpus=1,
        default_batch_size=16,
    )
)

#: The four models used in the paper's end-to-end evaluation (Figures 13-17).
EVALUATION_MODELS: tuple[ModelSpec, ...] = (
    LLAMA_13B,
    LLAMA_65B,
    LLAMA_70B,
    FALCON_40B,
)
