"""Command-line interface for the CachedAttention reproduction.

Subcommands:

* ``workload``  — generate a synthetic ShareGPT-like trace (JSON).
* ``run``       — serve a trace with CA or RE and print the summary.
* ``trace``     — serve a trace with span tracing on; write Chrome-trace
  JSON loadable at https://ui.perfetto.dev.
* ``run-sweep`` — serve one config grid in parallel worker processes.
* ``compare``   — run both modes on one trace and print the comparison.
* ``capacity``  — the Section 4.3.6 provisioning analysis for a trace.
* ``models``    — list the registered model specs.

Examples::

    python -m repro.cli workload --sessions 500 --out trace.json
    python -m repro.cli run --trace trace.json --model llama-13b
    python -m repro.cli run --sessions 300 --fault-profile chaos
    python -m repro.cli run --sessions 300 --share-ratio 0.5
    python -m repro.cli run --sessions 300 --instances 4 --router affinity
    python -m repro.cli run --sessions 300 --instances 3 \
        --fault-profile chaos-cluster --sanitize
    python -m repro.cli run --sessions 50000 --streaming-metrics
    python -m repro.cli run --sessions 300 --profile --metrics-out m.json
    python -m repro.cli trace --sessions 50 -o trace.json
    python -m repro.cli trace --sessions 200 --instances 2 \
        --router affinity -o cluster-trace.json
    python -m repro.cli run-sweep --param policy \
        --values scheduler-aware,lru,fifo --jobs 3 --sessions 300
    python -m repro.cli compare --sessions 300 --model llama-13b
    python -m repro.cli capacity --sessions 500 --model llama-13b --ttl 3600
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analysis import (
    capacity_plan,
    cost_saving,
    format_table,
    percent,
    run_cost,
)
from .cluster import ClusterConfig, ClusterEngine, ClusterResult, RouterName
from .config import (
    EngineConfig,
    EvictionPolicyName,
    HardwareConfig,
    ServingMode,
    StoreConfig,
)
from .engine import RunResult, ServingEngine
from .faults import FAULT_PROFILES, fault_profile
from .models import MODEL_REGISTRY, GiB, get_model
from .obs import (
    EventLoopProfiler,
    MetricsRegistry,
    SpanTracer,
    collect_cluster_metrics,
    collect_engine_metrics,
    ingest_tracer_spans,
    write_chrome_trace,
)
from .runner import SweepPoint, run_sweep
from .sim.loop import Simulator
from .workload import Trace, WorkloadSpec, generate_trace

#: Prefix-template length behind ``--share-ratio`` (tokens).  One CLI
#: knob keeps the demo surface small; scripts that need a different
#: length or template pool build a WorkloadSpec directly.
DEFAULT_SHARE_PREFIX_LEN = 512


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CachedAttention / AttentionStore reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sharing_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--share-ratio",
            type=float,
            default=0.0,
            help="fraction of sessions whose first turn starts with a "
            f"fleet-shared prefix template ({DEFAULT_SHARE_PREFIX_LEN} "
            "tokens; served via content-addressed shared KV blocks)",
        )

    wl = sub.add_parser("workload", help="generate a synthetic trace")
    wl.add_argument("--sessions", type=int, default=1000)
    wl.add_argument("--arrival-rate", type=float, default=1.0)
    wl.add_argument("--seed", type=int, default=2024)
    wl.add_argument("--out", type=Path, required=True)
    add_sharing_args(wl)

    def add_serving_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace", type=Path, help="trace JSON (else synthesised)")
        p.add_argument("--sessions", type=int, default=500)
        p.add_argument("--seed", type=int, default=2024)
        add_sharing_args(p)
        p.add_argument(
            "--model",
            default="llama-13b",
            choices=sorted(MODEL_REGISTRY),
        )
        p.add_argument("--batch-size", type=int, default=None)
        p.add_argument("--dram-gb", type=float, default=128.0)
        p.add_argument("--ssd-gb", type=float, default=10240.0)
        p.add_argument(
            "--policy",
            default="scheduler-aware",
            choices=[p.value for p in EvictionPolicyName],
        )
        p.add_argument("--no-prefetch", action="store_true")
        p.add_argument("--no-preload", action="store_true")
        p.add_argument("--sync-save", action="store_true")
        p.add_argument("--warmup-turns", type=int, default=0)
        p.add_argument(
            "--streaming-metrics",
            action="store_true",
            help="O(1)-memory metrics (p95 TTFT becomes a <=0.5%% estimate)",
        )
        p.add_argument(
            "--sanitize",
            action="store_true",
            help="run under SimSan: assert per-event invariants (clock "
            "monotonicity, store accounting, exactly-one-copy, HBM "
            "occupancy); equivalent to REPRO_SANITIZE=1",
        )

    def add_observability_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--profile",
            action="store_true",
            help="sample host-side event-loop cost (events/s, per-event-"
            "type wall time); observation only, results are unchanged",
        )
        p.add_argument(
            "--metrics-out",
            type=Path,
            default=None,
            help="write the metrics registry (stable-schema JSON, or CSV "
            "when the path ends in .csv)",
        )

    def add_topology_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--mode", default="ca", choices=["ca", "re"])
        p.add_argument(
            "--instances",
            type=int,
            default=1,
            help="serving-engine replicas (>1 enables cluster serving)",
        )
        p.add_argument(
            "--router",
            default="affinity",
            choices=[r.value for r in RouterName],
            help="cluster session router (with --instances > 1)",
        )
        p.add_argument(
            "--fault-profile",
            default="none",
            choices=FAULT_PROFILES,
            help="inject faults (graceful-degradation demo); "
            "'chaos-cluster' additionally schedules a replica crash/"
            "restart and a graceful drain, so it requires --instances "
            "large enough to cover every scheduled replica (>= 2; the "
            "built-in schedule targets replicas 0 and 1)",
        )
        p.add_argument("--fault-seed", type=int, default=0)
        p.add_argument(
            "--no-failover",
            action="store_true",
            help="on a replica crash, park interrupted turns until the "
            "replica restarts instead of re-routing them to healthy "
            "replicas (naive-restart baseline; with --instances > 1)",
        )

    run = sub.add_parser("run", help="serve a trace")
    add_serving_args(run)
    add_topology_args(run)
    add_observability_args(run)

    tr = sub.add_parser(
        "trace",
        help="serve a trace with span tracing on; write Chrome-trace JSON "
        "for https://ui.perfetto.dev",
    )
    add_serving_args(tr)
    add_topology_args(tr)
    add_observability_args(tr)
    tr.add_argument(
        "-o",
        "--out",
        type=Path,
        required=True,
        help="output path for the Chrome-trace JSON",
    )

    sweep = sub.add_parser(
        "run-sweep",
        help="serve a grid of configs, optionally in parallel processes",
    )
    add_serving_args(sweep)
    sweep.add_argument("--mode", default="ca", choices=["ca", "re"])
    sweep.add_argument(
        "--fault-profile",
        default="none",
        choices=FAULT_PROFILES,
        help="inject storage faults (per-point fault seeds derive from "
        "--base-seed and the point key)",
    )
    sweep.add_argument("--fault-seed", type=int, default=0)
    sweep.add_argument(
        "--param",
        required=True,
        choices=sorted(SWEEP_PARAMS),
        help="which serving parameter the sweep varies",
    )
    sweep.add_argument(
        "--values",
        required=True,
        help="comma-separated values for --param, one serving run each",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = inline, the bit-identical reference)",
    )
    sweep.add_argument(
        "--base-seed",
        type=int,
        default=0,
        help="experiment seed that per-point seeds derive from",
    )

    cmp_ = sub.add_parser("compare", help="run CA and RE on one trace")
    add_serving_args(cmp_)

    cap = sub.add_parser("capacity", help="capacity provisioning analysis")
    cap.add_argument("--trace", type=Path)
    cap.add_argument("--sessions", type=int, default=500)
    cap.add_argument("--seed", type=int, default=2024)
    cap.add_argument("--model", default="llama-13b", choices=sorted(MODEL_REGISTRY))
    cap.add_argument("--ttl", type=float, default=3600.0)

    sub.add_parser("models", help="list registered model specs")

    lint = sub.add_parser(
        "lint",
        help="simulator-specific static analysis (determinism, float "
        "safety, slots hygiene, cluster isolation, typing; --flow adds "
        "whole-program call-graph passes)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--flow",
        action="store_true",
        help="run the whole-program analyzer (taint, epoch guards, "
        "store-protocol typestate, batch races)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format",
    )
    lint.add_argument(
        "--baseline", default=None, help="flow baseline file override"
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the flow baseline (ratcheted)",
    )
    lint.add_argument(
        "--no-cache", action="store_true", help="bypass the flow summary cache"
    )
    lint.add_argument(
        "--unused-suppressions",
        action="store_true",
        help="report allow comments whose rule never fires",
    )
    return parser


def _sharing_fields(args: argparse.Namespace) -> dict:
    """WorkloadSpec overrides for ``--share-ratio`` (empty at ratio 0,
    so share-free invocations build the exact pre-sharing spec)."""
    ratio = getattr(args, "share_ratio", 0.0)
    if ratio <= 0:
        return {}
    return {
        "shared_prefix_fraction": ratio,
        "shared_prefix_len": DEFAULT_SHARE_PREFIX_LEN,
    }


def _load_trace(args: argparse.Namespace) -> Trace:
    if args.trace is not None:
        return Trace.load(args.trace)
    return generate_trace(
        WorkloadSpec(
            n_sessions=args.sessions, seed=args.seed, **_sharing_fields(args)
        )
    )


def _build_engine(args: argparse.Namespace, mode: ServingMode) -> ServingEngine:
    model = get_model(args.model)
    batch = args.batch_size or model.default_batch_size
    if mode is ServingMode.RECOMPUTE:
        engine_config = EngineConfig.recompute_baseline(batch_size=batch)
        store_config = None
    else:
        engine_config = EngineConfig(
            batch_size=batch,
            enable_preload=not args.no_preload,
            enable_async_save=not args.sync_save,
        )
        store_config = StoreConfig(
            dram_bytes=int(args.dram_gb * GiB),
            ssd_bytes=int(args.ssd_gb * GiB),
            policy=EvictionPolicyName(args.policy),
            enable_prefetch=not args.no_prefetch,
        )
    fault_config = fault_profile(
        getattr(args, "fault_profile", "none"), seed=getattr(args, "fault_seed", 0)
    )
    return ServingEngine(
        model,
        hardware=HardwareConfig().for_model(model),
        engine_config=engine_config,
        store_config=store_config,
        warmup_turns=args.warmup_turns,
        fault_config=fault_config,
        streaming_metrics=getattr(args, "streaming_metrics", False),
        sanitize=True if getattr(args, "sanitize", False) else None,
    )


def _build_cluster(args: argparse.Namespace, mode: ServingMode) -> ClusterEngine:
    model = get_model(args.model)
    batch = args.batch_size or model.default_batch_size
    if mode is ServingMode.RECOMPUTE:
        engine_config = EngineConfig.recompute_baseline(batch_size=batch)
        store_config = None
    else:
        engine_config = EngineConfig(
            batch_size=batch,
            enable_preload=not args.no_preload,
            enable_async_save=not args.sync_save,
        )
        store_config = StoreConfig(
            dram_bytes=int(args.dram_gb * GiB),
            ssd_bytes=int(args.ssd_gb * GiB),
            policy=EvictionPolicyName(args.policy),
            enable_prefetch=not args.no_prefetch,
        )
    fault_config = fault_profile(
        getattr(args, "fault_profile", "none"), seed=getattr(args, "fault_seed", 0)
    )
    return ClusterEngine(
        model,
        cluster=ClusterConfig(
            n_instances=args.instances,
            router=RouterName(args.router),
            failover=not getattr(args, "no_failover", False),
        ),
        hardware=HardwareConfig().for_model(model),
        engine_config=engine_config,
        store_config=store_config,
        warmup_turns=args.warmup_turns,
        fault_config=fault_config,
        streaming_metrics=getattr(args, "streaming_metrics", False),
        sanitize=True if getattr(args, "sanitize", False) else None,
    )


def _validate_fault_topology(args: argparse.Namespace) -> None:
    """Fail fast when a replica-fault profile needs more ``--instances``."""
    config = fault_profile(
        getattr(args, "fault_profile", "none"), seed=getattr(args, "fault_seed", 0)
    )
    schedule = config.replica_schedule if config is not None else None
    if schedule is None or not schedule.enabled:
        return
    instances = getattr(args, "instances", 1)
    if instances <= schedule.max_replica:
        raise SystemExit(
            f"error: --fault-profile {args.fault_profile} schedules replica "
            f"faults up to replica {schedule.max_replica}, but --instances "
            f"{instances} provides replicas 0..{instances - 1}; rerun with "
            f"--instances {schedule.max_replica + 1} or higher"
        )


def _cluster_rows(result: ClusterResult) -> list[list[str]]:
    s = result.summary
    rows = [
        ["turns served", str(s.n_turns)],
        ["cache hit rate", percent(s.hit_rate)],
        ["mean TTFT (s)", f"{s.mean_ttft:.4f}"],
        ["p95 TTFT (s)", f"{s.p95_ttft:.4f}"],
        ["aggregate throughput (tok/s)", f"{result.aggregate_prefill_throughput:,.0f}"],
        ["KV migrations", str(result.migrations)],
        ["stale-copy drops", str(result.scatter_drops)],
        ["network traffic (GiB)", f"{result.net_bytes / GiB:.1f}"],
        ["makespan (h)", f"{s.makespan / 3600:.3f}"],
    ]
    if result.crashes or result.drains:
        rows += [
            ["replica crashes / restarts", f"{result.crashes} / {result.restarts}"],
            ["replica drains", str(result.drains)],
            ["turns interrupted", str(result.lost_turns)],
            ["failovers (parked)", f"{result.failovers} ({result.parked_turns})"],
            [
                "failover recompute (tok)",
                f"{result.failover_recompute_tokens:,}",
            ],
            ["total downtime (s)", f"{result.total_downtime_s:.1f}"],
        ]
    return rows


def _summary_rows(result: RunResult) -> list[list[str]]:
    s = result.summary
    return [
        ["turns served", str(s.n_turns)],
        ["cache hit rate", percent(s.hit_rate)],
        ["DRAM hit rate", percent(s.dram_hit_rate)],
        ["mean TTFT (s)", f"{s.mean_ttft:.4f}"],
        ["p95 TTFT (s)", f"{s.p95_ttft:.4f}"],
        ["prefill throughput (tok/s)", f"{s.prefill_throughput:,.0f}"],
        ["GPU time (h)", f"{s.gpu_time / 3600:.3f}"],
        ["makespan (h)", f"{s.makespan / 3600:.3f}"],
    ]


def cmd_workload(args: argparse.Namespace) -> int:
    trace = generate_trace(
        WorkloadSpec(
            n_sessions=args.sessions,
            arrival_rate=args.arrival_rate,
            seed=args.seed,
            **_sharing_fields(args),
        )
    )
    trace.save(args.out)
    print(
        f"wrote {len(trace)} sessions / {trace.n_turns_total} turns / "
        f"{trace.n_tokens_total:,} tokens to {args.out}"
    )
    return 0


def _install_profiler(
    args: argparse.Namespace, sim: Simulator
) -> EventLoopProfiler | None:
    """Arm --profile on a built (not yet run) simulator."""
    if not getattr(args, "profile", False):
        return None
    profiler = EventLoopProfiler()
    profiler.install(sim)
    return profiler


def _write_metrics(path: Path, registry: MetricsRegistry) -> None:
    """Export a registry as JSON (default) or CSV (``.csv`` paths)."""
    text = registry.to_csv() if path.suffix == ".csv" else registry.to_json()
    path.write_text(text)
    print(f"wrote {len(registry)} metrics to {path}")


def cmd_run(args: argparse.Namespace) -> int:
    mode = ServingMode.CACHED if args.mode == "ca" else ServingMode.RECOMPUTE
    _validate_fault_topology(args)
    trace = _load_trace(args)
    if args.instances > 1:
        cluster = _build_cluster(args, mode)
        profiler = _install_profiler(args, cluster.sim)
        cluster_result = cluster.run(trace)
        print(
            format_table(
                ["metric", "value"],
                _cluster_rows(cluster_result),
                title=(
                    f"{args.model} [{mode.value}] x{args.instances} "
                    f"({args.router}) on {len(trace)} sessions"
                ),
            )
        )
        if args.metrics_out is not None:
            _write_metrics(args.metrics_out, collect_cluster_metrics(cluster))
        if profiler is not None:
            print(f"\n{profiler.report().format()}")
        return 0
    engine = _build_engine(args, mode)
    profiler = _install_profiler(args, engine.sim)
    result = engine.run(trace)
    print(
        format_table(
            ["metric", "value"],
            _summary_rows(result),
            title=f"{args.model} [{mode.value}] on {len(trace)} sessions",
        )
    )
    if result.store_stats is not None:
        print(f"\nstore: {result.store_stats}")
    if args.fault_profile != "none" and result.store_stats is not None:
        stats = result.store_stats
        print(
            f"faults [{args.fault_profile}]: "
            f"{stats.transfer_faults} transfer faults "
            f"({stats.transfer_retries} retried), "
            f"{stats.corrupt_misses} corrupt, {stats.lost_items} lost, "
            f"{result.summary.fallbacks} recompute fallbacks, "
            f"{stats.breaker_trips} breaker trips "
            f"({stats.breaker_recoveries} recoveries)"
        )
    if args.metrics_out is not None:
        _write_metrics(args.metrics_out, collect_engine_metrics(engine))
    if profiler is not None:
        print(f"\n{profiler.report().format()}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Serve a trace with a span tracer attached and export the trace."""
    mode = ServingMode.CACHED if args.mode == "ca" else ServingMode.RECOMPUTE
    _validate_fault_topology(args)
    trace = _load_trace(args)
    tracer = SpanTracer()
    if args.instances > 1:
        cluster = _build_cluster(args, mode)
        tracer.attach_cluster(cluster)
        profiler = _install_profiler(args, cluster.sim)
        cluster.run(trace)
        registry = collect_cluster_metrics(cluster)
    else:
        engine = _build_engine(args, mode)
        tracer.attach_engine(engine)
        profiler = _install_profiler(args, engine.sim)
        engine.run(trace)
        registry = collect_engine_metrics(engine)
    n_events = write_chrome_trace(args.out, tracer)
    print(
        f"wrote {n_events} trace events ({len(tracer.spans)} spans, "
        f"{len(tracer.counters)} counter samples, "
        f"{len(tracer.async_spans)} turn spans) to {args.out}"
    )
    print("open it at https://ui.perfetto.dev (or chrome://tracing)")
    if args.metrics_out is not None:
        ingest_tracer_spans(tracer, registry)
        _write_metrics(args.metrics_out, registry)
    if profiler is not None:
        print(f"\n{profiler.report().format()}")
    return 0


# Sweepable serving parameters: CLI name -> (namespace attribute, parser).
SWEEP_PARAMS = {
    "policy": ("policy", str),
    "dram-gb": ("dram_gb", float),
    "ssd-gb": ("ssd_gb", float),
    "batch-size": ("batch_size", int),
    "sessions": ("sessions", int),
}


def _sweep_worker(point: SweepPoint, seed: int) -> RunResult:
    """Serve one sweep point (runs in a spawned worker process).

    ``point.params`` is the full serving-args namespace as a dict with the
    swept attribute already overridden.  The workload trace is rebuilt (or
    reloaded) in the worker; the fault stream, when faults are enabled,
    uses the runner-derived per-point seed so points stay independent and
    reproducible in isolation.
    """
    args = argparse.Namespace(**point.params)
    if args.fault_profile != "none":
        args.fault_seed = seed
    mode = ServingMode.CACHED if args.mode == "ca" else ServingMode.RECOMPUTE
    return _build_engine(args, mode).run(_load_trace(args))


def cmd_run_sweep(args: argparse.Namespace) -> int:
    _validate_fault_topology(args)
    attr, parse = SWEEP_PARAMS[args.param]
    values = [parse(v.strip()) for v in args.values.split(",") if v.strip()]
    if not values:
        raise SystemExit("--values must name at least one value")
    base = {
        k: v for k, v in vars(args).items()
        if k not in ("param", "values", "jobs", "base_seed", "command")
    }
    points = [
        SweepPoint(key=f"{args.param}={value}", params={**base, attr: value})
        for value in values
    ]
    results = run_sweep(
        _sweep_worker, points, jobs=args.jobs, base_seed=args.base_seed
    )
    rows = []
    failed = [r for r in results if not r.ok]
    for r in results:
        if not r.ok:
            rows.append([r.key, "FAILED", "-", "-", "-", "-"])
            continue
        s = r.value.summary
        rows.append(
            [
                r.key,
                percent(s.hit_rate),
                f"{s.mean_ttft:.4f}",
                f"{s.p95_ttft:.4f}",
                f"{s.prefill_throughput:,.0f}",
                f"{s.gpu_time / 3600:.3f}",
            ]
        )
    print(
        format_table(
            ["point", "hit rate", "mean TTFT", "p95 TTFT", "tok/s", "GPU (h)"],
            rows,
            title=(
                f"sweep {args.param}: {args.model} [{args.mode}] "
                f"x{len(points)} points, jobs={args.jobs}"
            ),
        )
    )
    for r in failed:
        print(f"\n--- {r.key} failed ---\n{r.error}", file=sys.stderr)
    return 1 if failed else 0


def cmd_compare(args: argparse.Namespace) -> int:
    trace = _load_trace(args)
    results = {}
    for mode in (ServingMode.CACHED, ServingMode.RECOMPUTE):
        results[mode] = _build_engine(args, mode).run(trace)
    ca = results[ServingMode.CACHED]
    re = results[ServingMode.RECOMPUTE]
    rows = [
        [label, ca_val, re_val]
        for (label, ca_val), (_, re_val) in zip(
            _summary_rows(ca), _summary_rows(re)
        )
    ]
    print(
        format_table(
            ["metric", "CachedAttention", "recompute"],
            rows,
            title=f"{args.model} on {len(trace)} sessions",
        )
    )
    model = get_model(args.model)
    hardware = HardwareConfig().for_model(model)
    store = StoreConfig(
        dram_bytes=int(args.dram_gb * GiB), ssd_bytes=int(args.ssd_gb * GiB)
    )
    ca_cost = run_cost(ca, hardware, store)
    re_cost = run_cost(re, hardware, store)
    print(
        f"\nTTFT reduction {percent(1 - ca.summary.mean_ttft / re.summary.mean_ttft)}, "
        f"prefill speedup {ca.summary.prefill_throughput / re.summary.prefill_throughput:.2f}x, "
        f"cost saving {percent(cost_saving(ca_cost, re_cost))}"
    )
    return 0


def cmd_capacity(args: argparse.Namespace) -> int:
    trace = _load_trace(args)
    model = get_model(args.model)
    plan = capacity_plan(model, trace, ttl_seconds=args.ttl)
    rows = [
        ["CCpS (GiB/session)", f"{plan.ccps_bytes / GiB:.2f}"],
        ["DSpUT (sessions/TTL)", f"{plan.dsput:.0f}"],
        ["CCpUT (GiB)", f"{plan.ccput_bytes / GiB:,.0f}"],
        ["RCC @ 0.1 (GiB)", f"{plan.rcc_bytes(0.1) / GiB:,.0f}"],
        ["RCC @ 0.25 (GiB)", f"{plan.rcc_bytes(0.25) / GiB:,.0f}"],
    ]
    print(
        format_table(
            ["quantity", "value"],
            rows,
            title=f"capacity plan: {model.name}, TTL {args.ttl:.0f}s",
        )
    )
    return 0


def cmd_models(args: argparse.Namespace) -> int:
    rows = [
        [
            spec.name,
            f"{spec.n_params / 1e9:.0f}B",
            spec.n_layers,
            f"{spec.kv_bytes_per_token / 2**20:.2f}",
            spec.context_window,
            spec.default_num_gpus,
        ]
        for spec in MODEL_REGISTRY.values()
    ]
    print(
        format_table(
            ["model", "params", "layers", "KV MiB/token", "window", "GPUs"],
            rows,
            title="registered models",
        )
    )
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run repro-lint over the given paths (exit 1 on findings)."""
    from .lint.checker import run_lint

    argv = list(args.paths)
    if args.flow:
        argv.append("--flow")
    if args.format != "text":
        argv.extend(["--format", args.format])
    if args.baseline is not None:
        argv.extend(["--baseline", args.baseline])
    if args.write_baseline:
        argv.append("--write-baseline")
    if args.no_cache:
        argv.append("--no-cache")
    if args.unused_suppressions:
        argv.append("--unused-suppressions")
    return run_lint(argv)


COMMANDS = {
    "workload": cmd_workload,
    "run": cmd_run,
    "trace": cmd_trace,
    "run-sweep": cmd_run_sweep,
    "compare": cmd_compare,
    "capacity": cmd_capacity,
    "models": cmd_models,
    "lint": cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
