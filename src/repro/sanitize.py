"""SimSan: a runtime sanitizer for the CachedAttention simulator.

Static analysis (:mod:`repro.lint`) proves properties of the *code*; SimSan
checks properties of a *run*.  When enabled it instruments the live
objects — no behavioural change, only assertions — and verifies, per
simulated event:

* the event clock never goes backwards and nothing is scheduled in the
  past (discrete-event soundness);
* every engine's HBM reservation stays within the budget left after
  weights and the §3.2 read/write access buffers (occupancy bounds);
* AttentionStore byte/tier accounting is conserved after every mutation
  (:meth:`AttentionStore.check_invariants` — tier exclusivity, capacity,
  dirty-token state);
* across a cluster, a session's KV cache is resident on at most one
  replica (the §3.3 exactly-one-copy contract), re-checked immediately
  after every migration;
* the §3.2 overlap timing models stay inside their analytic envelope
  (``compute <= overlapped duration <= compute + load``), checked in
  :mod:`repro.engine.overlap`.

Activation: pass ``sanitize=True`` (or ``--sanitize`` on the CLI) to
``ServingEngine``/``ClusterEngine``, or set ``REPRO_SANITIZE=1`` in the
environment (how the test suite runs its sanitizer smoke pass).  A
violation raises :class:`SimSanError` at the first event that exhibits it.

Cost: cheap O(1) checks run on every event; store invariant sweeps are
O(resident items) and run every :data:`DEFAULT_MUTATION_STRIDE`-th store
mutation (a corruption is still caught within that many mutations of its
introduction) — set ``REPRO_SANITIZE_STRIDE=1`` for per-mutation sweeps
when bisecting, or larger values for very large replays.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:
    from .cluster.engine import ClusterEngine
    from .engine.engine import ServingEngine
    from .sim.events import Event
    from .sim.loop import Simulator
    from .store.attention_store import AttentionStore

SANITIZE_ENV = "REPRO_SANITIZE"
STRIDE_ENV = "REPRO_SANITIZE_STRIDE"

#: Store mutations between invariant sweeps (each sweep is O(resident
#: items)); keeps sanitizer overhead well under 2x on full replays.
DEFAULT_MUTATION_STRIDE = 8

_TRUTHY = frozenset({"1", "true", "yes", "on"})


class SimSanError(AssertionError):
    """A SimSan invariant violation (the run state is corrupt)."""


# sanitize_enabled() sits on the engine's per-turn timing path (the
# overlap models self-check when active), so the parsed value is cached
# against the raw environment value.  The guard compares by *identity*:
# a monkeypatched/rewritten value is a fresh object and forces a
# re-parse, while the steady-state call sees the same object and skips
# the decode/strip/lower/set-lookup work.
#
# On CPython the raw value is read straight out of ``os.environ._data``
# (the underlying dict): ``os.environ.get`` funnels through a
# ``__getitem__`` that *raises and catches* KeyError for the common
# unset case, which cProfile shows as thousands of avoidable exception
# round-trips per replay.  ``dict.get`` on the backing store never
# raises, and the stored (encoded) value object is stable between
# mutations, so identity caching works for set *and* unset states.
# Non-CPython mappings without ``_data`` fall back to ``environ.get``.
_environ_data = getattr(os.environ, "_data", None)
_environ_decode = getattr(os.environ, "decodevalue", None)
if _environ_data is None or _environ_decode is None:
    _environ_data = None
    _SANITIZE_KEY: object = SANITIZE_ENV
else:
    _SANITIZE_KEY = os.environ.encodekey(SANITIZE_ENV)
_env_raw_cache: object = object()  # sentinel: never matches a real read
_env_enabled_cache = False


def sanitize_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` asks for sanitized runs."""
    global _env_raw_cache, _env_enabled_cache
    data = _environ_data
    if data is not None:
        raw: object = data.get(_SANITIZE_KEY)
        if raw is _env_raw_cache:
            return _env_enabled_cache
        value = None if raw is None else _environ_decode(raw)
    else:
        raw = os.environ.get(SANITIZE_ENV)
        if raw is _env_raw_cache:
            return _env_enabled_cache
        value = raw
    _env_raw_cache = raw
    _env_enabled_cache = value is not None and value.strip().lower() in _TRUTHY
    return _env_enabled_cache


def _mutation_stride() -> int:
    raw = os.environ.get(STRIDE_ENV, "").strip()
    if not raw:
        return DEFAULT_MUTATION_STRIDE
    stride = int(raw)
    if stride <= 0:
        raise ValueError(f"{STRIDE_ENV} must be a positive integer, got {raw!r}")
    return stride


# Set while any sanitizer is installed in this process; lets leaf timing
# models (repro.engine.overlap) self-check without threading a flag through
# every call site.
_active_sanitizers = 0


def runtime_checks_active() -> bool:
    """True when a SimSan instance is installed or the env flag is set."""
    return _active_sanitizers > 0 or sanitize_enabled()


class SimSanitizer:
    """Sanitizer state attached to one :class:`Simulator`.

    One instance exists per simulator (shared by all replicas in a
    cluster); :func:`for_simulator` creates or returns it.  Checks come in
    two flavours: *event checks* run after every processed event (must be
    O(1)), *stride checks* run every :attr:`event_stride` events (may scan
    run state).
    """

    #: Events between stride-check sweeps; cross-replica scans are
    #: O(resident sessions), so they amortise over a batch of events.
    event_stride: int = 64

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.mutation_stride = _mutation_stride()
        self._last_event_time = sim.now
        self._events_seen = 0
        self._event_checks: list[tuple[str, Callable[[], None]]] = []
        self._stride_checks: list[tuple[str, Callable[[], None]]] = []
        self._installed = False

    # ------------------------------------------------------------------
    # Check registry
    # ------------------------------------------------------------------
    def add_event_check(self, name: str, check: Callable[[], None]) -> None:
        """Register an O(1) check to run after every event."""
        self._event_checks.append((name, check))

    def add_stride_check(self, name: str, check: Callable[[], None]) -> None:
        """Register a state scan to run every :attr:`event_stride` events."""
        self._stride_checks.append((name, check))

    def run_checks(self, include_stride: bool = True) -> None:
        """Run registered checks now (also called from the event hook)."""
        checks = self._event_checks + (self._stride_checks if include_stride else [])
        for name, check in checks:
            try:
                check()
            except SimSanError:
                raise
            except AssertionError as exc:
                raise SimSanError(f"{name}: {exc}") from exc

    # ------------------------------------------------------------------
    # Simulator instrumentation
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Instrument the simulator: schedule guards + per-event hook."""
        if self._installed:
            return
        global _active_sanitizers
        sim = self.sim
        orig_at = sim.at
        orig_after = sim.after

        def checked_at(time: float, callback: Callable[[], None]) -> Event:
            if time < sim.now:
                raise SimSanError(
                    f"event scheduled in the past: t={time} < now={sim.now}"
                )
            return orig_at(time, callback)

        def checked_after(delay: float, callback: Callable[[], None]) -> Event:
            if delay < 0:
                raise SimSanError(f"event scheduled with negative delay {delay}")
            return orig_after(delay, callback)

        # Instance-level shadowing: the class stays untouched, so other
        # simulators in the process run unsanitized.
        sim.at = checked_at  # type: ignore[method-assign]
        sim.after = checked_after  # type: ignore[method-assign]
        sim.event_hook = self._on_event
        self._installed = True
        _active_sanitizers += 1

    def uninstall(self) -> None:
        """Remove the per-event hook (used by tests; wrappers stay)."""
        if not self._installed:
            return
        global _active_sanitizers
        self.sim.event_hook = None
        self._installed = False
        _active_sanitizers -= 1

    def _on_event(self, event: Event) -> None:
        if event.time < self._last_event_time:
            raise SimSanError(
                f"event clock went backwards: {event.time} after "
                f"{self._last_event_time}"
            )
        self._last_event_time = event.time
        self._events_seen += 1
        stride_due = self._events_seen % self.event_stride == 0
        self.run_checks(include_stride=stride_due)

    # ------------------------------------------------------------------
    # Store instrumentation
    # ------------------------------------------------------------------
    #: AttentionStore methods that mutate accounting state; each gets an
    #: invariant sweep after it returns.
    STORE_MUTATORS = (
        "save",
        "save_to_hbm_cache",
        "drop",
        "discard_stale",
        "invalidate",
        "truncate",
        "apply_discard_list",
        "extract",
        "admit_migrated",
        "lose_tier",
        "wipe_volatile",
        "restore_offline",
        "decommission",
        "prefetch",
        "complete_fetch",
        "sweep_expired",
        "register_shared",
        "acquire_shared",
        "release_shared",
    )

    def install_store(self, store: AttentionStore) -> None:
        """Wrap the store's mutators with post-condition invariant sweeps."""
        if getattr(store, "_simsan_installed", False):
            return
        counter = {"mutations": 0}
        stride = self.mutation_stride

        def wrap(name: str, orig: Callable[..., object]) -> Callable[..., object]:
            def checked(*args: object, **kwargs: object) -> object:
                result = orig(*args, **kwargs)
                counter["mutations"] += 1
                if counter["mutations"] % stride == 0:
                    try:
                        store.check_invariants()
                    except AssertionError as exc:
                        raise SimSanError(
                            f"AttentionStore invariants violated after "
                            f"{name}(): {exc}"
                        ) from exc
                return result

            checked.__name__ = f"simsan_{name}"
            return checked

        for name in self.STORE_MUTATORS:
            orig = getattr(store, name, None)
            if orig is not None:
                setattr(store, name, wrap(name, orig))
        store._simsan_installed = True  # type: ignore[attr-defined]


def for_simulator(sim: Simulator) -> SimSanitizer:
    """Create (or return the existing) sanitizer for ``sim``."""
    existing = getattr(sim, "_simsan", None)
    if existing is not None:
        return existing  # type: ignore[no-any-return]
    simsan = SimSanitizer(sim)
    sim._simsan = simsan  # type: ignore[attr-defined]
    return simsan


# ---------------------------------------------------------------------------
# Engine / cluster installers
# ---------------------------------------------------------------------------


def install_engine(engine: ServingEngine) -> SimSanitizer:
    """Sanitize one serving engine (and its store, if caching is on)."""
    simsan = for_simulator(engine.sim)
    if getattr(engine, "_simsan_engine_installed", False):
        return simsan
    engine._simsan_engine_installed = True  # type: ignore[attr-defined]
    simsan.install()

    def occupancy() -> None:
        reserved = engine._hbm_reserved_tokens
        budget = engine._hbm_budget_tokens
        assert 0 <= reserved <= budget, (
            f"HBM reservation out of bounds: {reserved} tokens of "
            f"{budget} budget"
        )

    simsan.add_event_check("engine HBM occupancy", occupancy)
    if engine.store is not None:
        simsan.install_store(engine.store)
    return simsan


def check_exactly_one_copy(
    engines: Iterable[ServingEngine], session_id: int | None = None
) -> None:
    """Assert no session's KV cache is resident on two replicas (§3.3).

    With ``session_id`` given, only that session is checked (the cheap
    post-migration probe); otherwise all resident sessions are scanned.

    Shared prefix blocks live under *negative* pseudo session ids and are
    exempt: the invariant for them is exactly one owning copy per content
    hash *per store* (enforced by ``AttentionStore.check_invariants``) —
    two replicas legitimately hold blocks for the same hash, which is how
    a re-migrated session avoids re-shipping its prefix.
    """
    seen: dict[int, int] = {}
    for index, engine in enumerate(engines):
        store = engine.store
        if store is None:
            continue
        if session_id is not None:
            resident = [session_id] if store.get(session_id) is not None else []
        else:
            resident = [s for s in store.resident_sessions() if s >= 0]
        for sid in resident:
            if sid in seen:
                raise SimSanError(
                    f"session {sid} KV cache resident on replicas "
                    f"{seen[sid]} and {index} (exactly-one-copy violated)"
                )
            seen[sid] = index


def install_cluster(cluster: ClusterEngine) -> SimSanitizer:
    """Sanitize a cluster: every replica, plus cross-replica placement.

    The full exactly-one-copy scan runs as a stride check; each migration
    additionally probes the moved session immediately, so a violation is
    reported at the event that introduced it.
    """
    simsan = for_simulator(cluster.sim)
    simsan.install()
    for engine in cluster.engines:
        install_engine(engine)
    simsan.add_stride_check(
        "cluster exactly-one-copy",
        lambda: check_exactly_one_copy(cluster.engines),
    )

    # Local import: repro.sanitize is imported by repro.engine, which the
    # cluster package imports — by the time a cluster exists, the cycle
    # has resolved.
    from .cluster.lifecycle import ReplicaState

    def down_replicas_quiesced() -> None:
        """A crashed replica must hold nothing: no queued or batched
        work, no busy GPU, an empty store (SSD items are parked offline,
        not resident) — anything left would serve from a dead host."""
        for index, life in enumerate(cluster.lifecycles):
            if life.state is not ReplicaState.DOWN:
                continue
            engine = cluster.engines[index]
            assert not engine._gpu_busy, (
                f"replica {index} is down but its GPU is busy"
            )
            assert not engine.queue, (
                f"replica {index} is down but has queued requests"
            )
            assert not engine.batch, (
                f"replica {index} is down but has batched jobs"
            )
            if engine.store is not None:
                assert len(engine.store) == 0, (
                    f"replica {index} is down but its store holds "
                    f"{len(engine.store)} items"
                )

    simsan.add_stride_check("down replicas quiesced", down_replicas_quiesced)

    orig_move = cluster._move_kv

    def checked_move(
        source: ServingEngine,
        target: ServingEngine,
        session_id: int,
        force: bool = False,
    ) -> None:
        orig_move(source, target, session_id, force)
        check_exactly_one_copy(cluster.engines, session_id)

    cluster._move_kv = checked_move  # type: ignore[method-assign]
    return simsan


# ---------------------------------------------------------------------------
# Overlap-model envelope (§3.2), used by repro.engine.overlap
# ---------------------------------------------------------------------------

#: Relative slack for float accumulation in the overlap envelope.
_OVERLAP_RTOL = 1e-9


def check_overlap_envelope(
    duration: float, compute_time: float, load_time: float
) -> None:
    """Assert an overlapped prefill duration is analytically possible.

    Overlap can hide transfer behind compute but never computes faster
    than compute alone, and never does worse than fully serialising the
    transfer: ``compute <= duration <= compute + load`` (§3.2.1).
    """
    slack = _OVERLAP_RTOL * (compute_time + load_time + 1.0)
    if duration < compute_time - slack or duration > compute_time + load_time + slack:
        raise SimSanError(
            f"overlap duration {duration} outside envelope "
            f"[{compute_time}, {compute_time + load_time}]"
        )


def check_save_blocking_envelope(blocking: float, save_time: float) -> None:
    """Assert async-save blocking is within ``[0, save_time]`` (§3.2.2)."""
    slack = _OVERLAP_RTOL * (save_time + 1.0)
    if blocking < -slack or blocking > save_time + slack:
        raise SimSanError(
            f"async-save blocking {blocking} outside envelope [0, {save_time}]"
        )
