"""Extension: the Section 3.4 KV-compression (TDL) hook, quantified.

The paper notes CachedAttention can apply any compression method's token
discarding list directly to stored caches (decoupled positions make the
re-numbering valid).  This bench measures continuation perplexity after
compressing prompt caches to 50 % with three TDL strategies:
attention-importance (H2O-style heavy hitters with attention-sink
protection), recent-only (plain truncation) and random.
"""

from _shared import MODEL_CACHE_DIR, once

from dataclasses import replace

from repro.analysis import format_table
from repro.model import (
    COPY_CORPORA,
    ModelConfig,
    TrainConfig,
    VOCAB_SIZE,
    make_copy_corpus,
    make_trained_model,
)
from repro.model.compression import CompressionStrategy, evaluate_compression

MODEL_CONFIG = ModelConfig(
    vocab_size=VOCAB_SIZE, d_model=64, n_layers=2, n_heads=8, d_ff=64,
    context_window=96,
)
TRAIN = TrainConfig(steps=3000, batch_size=16, seq_len=96, lr=1e-3, lr_half_life=1500)
KEEP_RATIOS = (1.0, 0.75, 0.5)


def run_table():
    model = make_trained_model(
        "mixed", MODEL_CONFIG, TRAIN, cache_dir=MODEL_CACHE_DIR
    )
    spec = replace(COPY_CORPORA["synth-wikitext"], doc_sentences=6, seed=777)
    docs = make_copy_corpus(spec, 12)
    table = {}
    for ratio in KEEP_RATIOS:
        for strategy in CompressionStrategy:
            result = evaluate_compression(model, docs, ratio, strategy)
            table[(ratio, strategy)] = result.perplexity
    return table


def test_ext_kv_compression(benchmark):
    table = once(benchmark, run_table)
    print()
    rows = [
        [f"{ratio:.2f}", strategy.value, f"{ppl:.2f}"]
        for (ratio, strategy), ppl in table.items()
    ]
    print(
        format_table(
            ["keep ratio", "TDL strategy", "continuation PPL"],
            rows,
            title="Extension — KV compression via token discarding lists",
        )
    )
    # At keep=1.0 all strategies coincide.
    full = [table[(1.0, s)] for s in CompressionStrategy]
    assert max(full) - min(full) < 1e-6
    # Compression costs quality; the attention TDL degrades no worse than
    # random discarding at every ratio.
    for ratio in (0.75, 0.5):
        assert table[(ratio, CompressionStrategy.TDL_ATTENTION)] <= (
            table[(ratio, CompressionStrategy.RANDOM)] * 1.05
        )
        assert table[(ratio, CompressionStrategy.TDL_ATTENTION)] >= (
            table[(1.0, CompressionStrategy.TDL_ATTENTION)] * 0.95
        )
