"""Figure 2: ShareGPT workload statistics.

(a) 73 % of conversations are multi-turn; (b) 47 % / 30 % of sessions
exceed 2K / 4K tokens.  Regenerated from the synthetic workload generator
fitted to those marginals.
"""

from _shared import paper_trace

from repro.analysis import format_table, percent
from repro.workload import (
    fraction_multi_turn,
    mean_turns,
    session_length_survival,
    turn_count_histogram,
)


def compute_stats():
    trace = paper_trace()
    return {
        "multi": fraction_multi_turn(trace),
        "mean_turns": mean_turns(trace),
        "survival": session_length_survival(trace, [1024, 2048, 4096, 8192]),
        "histogram": turn_count_histogram(trace),
    }


def test_fig02_workload_statistics(benchmark):
    stats = benchmark(compute_stats)
    print()
    hist = stats["histogram"]
    total = sum(hist.values())
    buckets = [(1, 1), (2, 4), (5, 9), (10, 19), (20, 40)]
    rows = [
        [
            f"{lo}-{hi}" if lo != hi else str(lo),
            percent(sum(v for k, v in hist.items() if lo <= k <= hi) / total),
        ]
        for lo, hi in buckets
    ]
    print(format_table(["turns", "share"], rows, title="Figure 2a — turn counts"))
    rows = [[t, percent(f)] for t, f in stats["survival"].items()]
    print()
    print(
        format_table(
            ["> tokens", "share of sessions"],
            rows,
            title="Figure 2b — session length survival",
        )
    )
    print(f"\nmulti-turn share: {percent(stats['multi'])} (paper: 73%)")
    print(f"mean turns/conversation: {stats['mean_turns']:.2f} (paper: 5.75)")

    assert abs(stats["multi"] - 0.73) < 0.03
    assert abs(stats["mean_turns"] - 5.75) < 0.35
    assert abs(stats["survival"][2048] - 0.47) < 0.06
    assert abs(stats["survival"][4096] - 0.30) < 0.06
