"""Figure 21: scheduler-aware eviction vs LRU vs FIFO.

Paper (LLaMA-13B): at 128G/2T the scheduler-aware policy beats LRU/FIFO's
overall hit rate by 27-31 points; at 128G/10T it reaches 86 % vs 58 %
(LRU) / 48 % (FIFO).  LRU/FIFO cannot use scheduler hints, so they also
cannot prefetch — their DRAM hit rates stay ~0.5 % while the
scheduler-aware policy serves >99.6 % of hits from DRAM.  Higher hit rates
translate into lower GPU time (up to 2.7x).
"""

from _shared import once, store_sweep

from repro.analysis import format_table, percent
from repro.config import EvictionPolicyName, StoreConfig
from repro.models import GiB, TiB

STORAGE_CONFIGS = {
    "128G/2T": dict(dram_bytes=128 * GiB, ssd_bytes=2 * TiB),
    "128G/10T": dict(dram_bytes=128 * GiB, ssd_bytes=10 * TiB),
}
POLICIES = (
    EvictionPolicyName.SCHEDULER_AWARE,
    EvictionPolicyName.LRU,
    EvictionPolicyName.FIFO,
)


def run_all():
    configs = {
        (label, policy): StoreConfig(
            policy=policy,
            # Only the scheduler-aware policy has the hints needed to
            # prefetch (Section 4.3.3).
            enable_prefetch=policy is EvictionPolicyName.SCHEDULER_AWARE,
            **sizes,
        )
        for label, sizes in STORAGE_CONFIGS.items()
        for policy in POLICIES
    }
    # The six runs are independent; --jobs fans them out across processes.
    return store_sweep(configs, "llama-13b")


def test_fig21_eviction_policies(benchmark):
    results = once(benchmark, run_all)
    print()
    rows = []
    for (label, policy), result in results.items():
        s = result.summary
        rows.append(
            [
                label,
                policy.value,
                percent(s.hit_rate),
                percent(s.dram_hit_rate),
                percent(s.disk_hit_rate),
                f"{s.gpu_time / 3600:.2f}",
            ]
        )
    print(
        format_table(
            ["storage", "policy", "hit rate", "DRAM hits", "disk hits", "GPU (h)"],
            rows,
            title="Figure 21 — eviction policies (LLaMA-13B)",
        )
    )
    for label in STORAGE_CONFIGS:
        sa = results[(label, EvictionPolicyName.SCHEDULER_AWARE)].summary
        lru = results[(label, EvictionPolicyName.LRU)].summary
        fifo = results[(label, EvictionPolicyName.FIFO)].summary
        # Shape: scheduler-aware never loses on overall hit rate (and wins
        # decisively under the tight 2T configuration, cf. the paper's
        # 27-31 point gap) ...
        assert sa.hit_rate >= lru.hit_rate - 0.01, label
        assert sa.hit_rate >= fifo.hit_rate - 0.01, label
        # ... dominates overwhelmingly on DRAM hits (history-only policies
        # cannot prefetch, paper: ~0.5 % DRAM hits) ...
        assert sa.dram_hit_rate > 10 * max(lru.dram_hit_rate, 1e-3), label
        # ... which shows up as GPU time.
        assert sa.gpu_time < lru.gpu_time, label
    tight = "128G/2T"
    sa_tight = results[(tight, EvictionPolicyName.SCHEDULER_AWARE)].summary
    lru_tight = results[(tight, EvictionPolicyName.LRU)].summary
    assert sa_tight.hit_rate > lru_tight.hit_rate + 0.10
    # More SSD helps every policy.
    for policy in POLICIES:
        small = results[("128G/2T", policy)].summary.hit_rate
        large = results[("128G/10T", policy)].summary.hit_rate
        assert large >= small - 0.02, policy
