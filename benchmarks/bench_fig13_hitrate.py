"""Figure 13: AttentionStore cache hit rates across models.

Paper: ~86 % (13B), 71 % (65B), 89 % (70B), 90 % (Falcon-40B) with 128 GB
DRAM + 10 TB SSD; the 65B trails because its 2.5 MB/token KV caches crowd
the same storage.  This bench executes the four CachedAttention end-to-end
runs (shared with Figures 14-17).
"""

from _shared import EVAL_MODEL_NAMES, end_to_end_run, once

from repro.analysis import format_table, percent
from repro.config import ServingMode

PAPER_HIT_RATES = {
    "llama-13b": 0.86,
    "llama-65b": 0.71,
    "llama-70b": 0.89,
    "falcon-40b": 0.90,
}


def run_all_cached():
    return {name: end_to_end_run(name, ServingMode.CACHED) for name in EVAL_MODEL_NAMES}


def test_fig13_cache_hit_rate(benchmark):
    results = once(benchmark, run_all_cached)
    print()
    rows = [
        [
            name,
            percent(results[name].summary.hit_rate),
            percent(results[name].summary.dram_hit_rate),
            percent(results[name].summary.disk_hit_rate),
            percent(PAPER_HIT_RATES[name]),
        ]
        for name in EVAL_MODEL_NAMES
    ]
    print(
        format_table(
            ["model", "hit rate", "DRAM hits", "disk hits", "paper"],
            rows,
            title="Figure 13 — AttentionStore hit rate (128 GB DRAM / 10 TB SSD)",
        )
    )
    rates = {name: results[name].summary.hit_rate for name in EVAL_MODEL_NAMES}
    # Shape: every model hits well; 65B is strictly the worst (largest KV).
    assert all(rate > 0.5 for rate in rates.values())
    assert rates["llama-65b"] == min(rates.values())
    # Scheduler-aware prefetch serves hits from DRAM (paper: >99.6 %).
    for name in EVAL_MODEL_NAMES:
        s = results[name].summary
        if s.hit_rate:
            assert s.dram_hit_rate / s.hit_rate > 0.95, name
