"""Figure 23: required cache capacity vs hit rate / throughput.

Section 4.3.6 provisions AttentionStore as a fraction of
``CCpUT = DSpUT x CCpS`` (distinct sessions per TTL times the max cache
per session) with a 1-hour TTL.  Paper: RCC/CCpUT = 0.1 already achieves
~51 % hit rate and 0.25 achieves ~98 %; the decoding throughput saturates
together with the hit rate.
"""

from _shared import N_SESSIONS, WARMUP_TURNS, build_engine, once, paper_trace

from repro.analysis import capacity_plan, format_table, percent
from repro.config import ServingMode, StoreConfig
from repro.models import GiB, get_model

RATIOS = (0.05, 0.1, 0.25, 0.5, 1.0)
TTL_SECONDS = 3600.0
MODEL = "llama-13b"


def run_sweep():
    trace = paper_trace()
    model = get_model(MODEL)
    plan = capacity_plan(model, trace, ttl_seconds=TTL_SECONDS)
    results = {}
    for ratio in RATIOS:
        rcc = plan.rcc_bytes(ratio)
        dram = min(128 * GiB, rcc)
        store = StoreConfig(
            dram_bytes=dram,
            ssd_bytes=max(0, rcc - dram),
            ttl_seconds=TTL_SECONDS,
        )
        engine = build_engine(MODEL, ServingMode.CACHED, store_config=store)
        results[ratio] = engine.run(trace)
    return plan, results


def test_fig23_cache_capacity(benchmark):
    plan, results = once(benchmark, run_sweep)
    print()
    print(
        f"CCpS = {plan.ccps_bytes / GiB:.1f} GiB, DSpUT = {plan.dsput:.0f}, "
        f"CCpUT = {plan.ccput_bytes / (1 << 40):.1f} TiB (TTL 1h, "
        f"{N_SESSIONS} sessions, warm-up {WARMUP_TURNS} turns)"
    )
    rows = []
    for ratio in RATIOS:
        s = results[ratio].summary
        tput = s.generated_tokens_total / s.makespan
        rows.append(
            [f"{ratio:.2f}", percent(s.hit_rate), f"{tput:,.0f}",
             f"{s.gpu_time / 3600:.2f}"]
        )
    print(
        format_table(
            ["RCC/CCpUT", "hit rate", "decode tok/s", "GPU (h)"],
            rows,
            title="Figure 23 — capacity provisioning sweep (LLaMA-13B)",
        )
    )
    rates = [results[r].summary.hit_rate for r in RATIOS]
    # Shape: hit rate rises steeply with capacity and saturates well below
    # CCpUT.  The paper's knee sits at RCC/CCpUT ~= 0.25; ours lands by
    # 0.5 because our DSpUT proxy (arrival windows) understates how long
    # queue-delayed sessions stay live, shifting the ratio axis.
    assert all(b >= a - 0.02 for a, b in zip(rates, rates[1:]))
    assert rates[-1] - rates[3] < 0.05  # saturated by ratio 0.5
    assert rates[2] > rates[1] + 0.2  # steep growth into the knee
