"""Figure 16: end-to-end GPU time to finish the workload, CA vs RE.

Paper speedups: 4.0x (13B), 1.9x (65B), 3.3x (70B), 3.4x (Falcon-40B).
In this reproduction the decode phase — identical work in both modes —
is costed by an honest bandwidth roofline, so total-GPU-time speedups land
lower than the paper's while the *prefill* GPU-time ratios match its
range; both are printed (see EXPERIMENTS.md, "calibration").
"""

from _shared import EVAL_MODEL_NAMES, end_to_end_run, once

from repro.analysis import format_table
from repro.config import ServingMode

PAPER_SPEEDUPS = {
    "llama-13b": 4.0,
    "llama-65b": 1.9,
    "llama-70b": 3.3,
    "falcon-40b": 3.4,
}


def run_all():
    return {
        name: {
            mode: end_to_end_run(name, mode)
            for mode in (ServingMode.CACHED, ServingMode.RECOMPUTE)
        }
        for name in EVAL_MODEL_NAMES
    }


def test_fig16_gpu_time(benchmark):
    results = once(benchmark, run_all)
    print()
    rows = []
    total_speedups = {}
    prefill_speedups = {}
    for name in EVAL_MODEL_NAMES:
        ca = results[name][ServingMode.CACHED].summary
        re = results[name][ServingMode.RECOMPUTE].summary
        total_speedups[name] = re.gpu_time / ca.gpu_time
        prefill_speedups[name] = re.prefill_gpu_time / ca.prefill_gpu_time
        rows.append(
            [
                name,
                f"{re.gpu_time / 3600:.2f}",
                f"{ca.gpu_time / 3600:.2f}",
                f"{total_speedups[name]:.2f}x",
                f"{prefill_speedups[name]:.2f}x",
                f"{PAPER_SPEEDUPS[name]:.1f}x",
            ]
        )
    print(
        format_table(
            ["model", "RE GPU (h)", "CA GPU (h)", "total speedup",
             "prefill speedup", "paper (total)"],
            rows,
            title="Figure 16 — GPU time to complete the workload",
        )
    )
    # Shape: CA always reduces GPU time; 65B benefits least; the prefill
    # component shows the paper-scale multipliers.
    assert all(s > 1.05 for s in total_speedups.values())
    assert total_speedups["llama-65b"] == min(total_speedups.values())
    assert all(s > 1.4 for s in prefill_speedups.values())
