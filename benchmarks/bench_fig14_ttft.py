"""Figure 14: time to first token, CachedAttention vs recomputation.

Paper: TTFT drops 85 % (13B), 61 % (65B), 87 % (70B), 86 % (Falcon-40B).
The 65B gains least: its 2.5 MB/token KV makes loading a larger share of
the prefill, and its hit rate is lowest.
"""

from _shared import EVAL_MODEL_NAMES, end_to_end_run, once

from repro.analysis import format_table, percent
from repro.config import ServingMode

PAPER_REDUCTIONS = {
    "llama-13b": 0.85,
    "llama-65b": 0.61,
    "llama-70b": 0.87,
    "falcon-40b": 0.86,
}


def run_all():
    return {
        name: {
            mode: end_to_end_run(name, mode)
            for mode in (ServingMode.CACHED, ServingMode.RECOMPUTE)
        }
        for name in EVAL_MODEL_NAMES
    }


def test_fig14_ttft(benchmark):
    results = once(benchmark, run_all)
    print()
    rows = []
    reductions = {}
    for name in EVAL_MODEL_NAMES:
        ca = results[name][ServingMode.CACHED].summary.mean_ttft
        re = results[name][ServingMode.RECOMPUTE].summary.mean_ttft
        reductions[name] = 1 - ca / re
        rows.append(
            [
                name,
                f"{re:.3f}",
                f"{ca:.3f}",
                percent(reductions[name]),
                percent(PAPER_REDUCTIONS[name]),
            ]
        )
    print(
        format_table(
            ["model", "RE TTFT (s)", "CA TTFT (s)", "reduction", "paper"],
            rows,
            title="Figure 14 — time to first token",
        )
    )
    # Shape: CA always wins decisively; 65B benefits least.
    assert all(r > 0.3 for r in reductions.values())
    assert reductions["llama-65b"] == min(reductions.values())
