"""CI bench-regression gate: key ratios must not drift from the baseline.

Compares freshly computed results against the ``gates`` section of the
checked-in ``BENCH_sim.json``:

* **Fig. 19** — the layer-wise pre-loading reductions (PL-B0 and PL-B15
  vs NO-PL) are closed-form and deterministic; they must match the
  baseline to a tight absolute tolerance.
* **Fig. 20** — the async-save total-time reduction band across prompt
  lengths must stay inside the baseline band (± tolerance).
* **Replay hit rate** — a fixed 300-session CA replay's cache hit rate
  is deterministic; drift means a behavioural change slipped in.
* **Sharing capacity** — the cross-session KV sharing figures
  (``bench_ext_sharing``) are deterministic: the iso-hit-rate effective
  capacity ratio must stay >=1.2x and near its baseline, and the
  reference CA+share replay's hit rate must match.
* **Events/s floor** — the same replay must process at least a generous
  fraction of the baseline host's events/s (catches order-of-magnitude
  hot-path regressions without flaking on slower CI machines).  The
  fraction was ratcheted from 0.25 to 0.35 when the calendar-queue
  simulation core landed, and from 0.35 to 0.55 with the engine
  turn-path overhaul (closure-free continuations, batched completion,
  heap dispatch core) — each time against a baseline re-measured on the
  new code, so the floor tracks the optimised hot path rather than
  inheriting slack from the slower one it replaced.

Env overrides: ``REPRO_GATE_RATIO_TOL`` (default 0.02),
``REPRO_GATE_HIT_TOL`` (default 0.05), ``REPRO_GATE_EVENTS_FRACTION``
(default 0.55; 0 disables the floor).

Regenerate baselines with ``python benchmarks/bench_perf_sim.py`` (it
rewrites BENCH_sim.json wholesale, gates included).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.workload import WorkloadSpec, generate_trace

from bench_perf_sim import GATE_SESSIONS, build_engine, load_benchmark_module

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_sim.json"
)
RATIO_TOL = float(os.environ.get("REPRO_GATE_RATIO_TOL", "0.02"))
HIT_TOL = float(os.environ.get("REPRO_GATE_HIT_TOL", "0.05"))
EVENTS_FRACTION = float(os.environ.get("REPRO_GATE_EVENTS_FRACTION", "0.55"))


@pytest.fixture(scope="module")
def gates() -> dict:
    with open(BASELINE_PATH) as fh:
        payload = json.load(fh)
    assert "gates" in payload, (
        "BENCH_sim.json has no 'gates' baseline section; regenerate it "
        "with: python benchmarks/bench_perf_sim.py"
    )
    return payload["gates"]


@pytest.fixture(scope="module")
def gate_replay():
    """The gate's fixed-size CA replay, timed (shared by two tests)."""
    trace = generate_trace(WorkloadSpec(n_sessions=GATE_SESSIONS, seed=42))
    start = time.perf_counter()
    result = build_engine().run(trace)
    wall = time.perf_counter() - start
    return result, wall


def test_fig19_preload_reductions_match_baseline(gates):
    fig19 = load_benchmark_module("bench_fig19_preload")
    no_pl, by_buffer, _perfect, _load, _compute = fig19.compute()
    r0 = 1 - by_buffer[0] / no_pl
    r15 = 1 - by_buffer[15] / no_pl
    assert abs(r0 - gates["fig19_r0"]) <= RATIO_TOL, (r0, gates["fig19_r0"])
    assert abs(r15 - gates["fig19_r15"]) <= RATIO_TOL, (r15, gates["fig19_r15"])
    # Deeper buffers must keep helping — the overlap ordering itself.
    assert r15 > r0


def test_fig20_async_save_band_matches_baseline(gates):
    fig20 = load_benchmark_module("bench_fig20_asyncsave")
    reductions = [1 - asyn / sync for _, sync, asyn, _ in fig20.compute()]
    assert min(reductions) >= gates["fig20_reduction_min"] - RATIO_TOL, (
        min(reductions),
        gates,
    )
    assert max(reductions) <= gates["fig20_reduction_max"] + RATIO_TOL, (
        max(reductions),
        gates,
    )


def test_replay_hit_rate_matches_baseline(gates, gate_replay):
    result, _ = gate_replay
    assert result.summary.n_turns > 0
    assert abs(result.summary.hit_rate - gates["hit_rate"]) <= HIT_TOL, (
        result.summary.hit_rate,
        gates["hit_rate"],
    )


def test_sharing_capacity_gate(gates):
    """The sharing-smoke CI lane: CA+share must keep its iso-hit-rate
    effective-capacity advantage (>=1.2x) and match the baseline numbers
    (both fully deterministic — fixed trace seed, DRAM-only store)."""
    sharing = load_benchmark_module("bench_ext_sharing")
    capacity = sharing.capacity_sweep(gates["sharing_sessions"])
    assert capacity["capacity_ratio"] >= sharing.MIN_CAPACITY_RATIO, capacity
    assert (
        abs(capacity["capacity_ratio"] - gates["sharing_capacity_ratio"])
        <= RATIO_TOL * gates["sharing_capacity_ratio"]
    ), (capacity["capacity_ratio"], gates["sharing_capacity_ratio"])
    reference = sharing.run_one(
        gates["sharing_sessions"],
        0.5,
        sharing.REFERENCE_DRAM_GIB,
        sharing=True,
    )
    assert abs(reference.hit_rate - gates["sharing_hit_rate"]) <= HIT_TOL, (
        reference.hit_rate,
        gates["sharing_hit_rate"],
    )


def test_replay_events_per_s_floor(gates, gate_replay):
    if not EVENTS_FRACTION:
        pytest.skip("events/s floor disabled (REPRO_GATE_EVENTS_FRACTION=0)")
    result, wall = gate_replay
    events_per_s = result.events_processed / wall
    floor = EVENTS_FRACTION * gates["events_per_s"]
    assert events_per_s >= floor, (events_per_s, floor)
