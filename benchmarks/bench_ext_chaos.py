"""Extension: chaos harness — goodput through a replica crash→recover window.

One replica of a three-replica cluster crashes mid-run (volatile KV
wiped; the SSD tier survives) and restarts after a fixed downtime.  The
figure tracks goodput (generated tokens/s) and tail first-token latency
through four windows — pre-crash, outage, recovery, steady-state — for
three runs of the *same* trace:

* **no-crash** — the healthy baseline envelope;
* **CA failover** — interrupted and arriving turns re-route to healthy
  replicas (KV recovered from the surviving SSD copy where possible,
  recomputed where not);
* **naive restart** — turns homed on the dead replica park until it
  returns, the paper-adjacent "just restart it" strawman.

The claims: with failover the cluster keeps serving through the outage
and recovers to >= 95 % of the healthy baseline's goodput after restart,
at the cost of a reported recompute burden; the naive baseline loses the
dead replica's share of goodput for the whole outage and pays the
downtime in queue delay.
"""

from _shared import N_SESSIONS, once

from repro.analysis import format_table
from repro.cluster import ClusterConfig, ClusterEngine, RouterName
from repro.config import EngineConfig, HardwareConfig, StoreConfig
from repro.faults import FaultConfig, ReplicaCrash, ReplicaFaultSchedule
from repro.models import get_model
from repro.workload import WorkloadSpec, generate_trace

MODEL_NAME = "llama-13b"
BENCH_SESSIONS = min(N_SESSIONS, 900)
N_INSTANCES = 3
CRASH_AT = 600.0
DOWNTIME = 120.0
RESTART_AT = CRASH_AT + DOWNTIME
#: Analysis windows (label, start, end): recovery starts shortly after
#: the restart so re-admission/warm-up transients stay inside it.
WINDOWS = (
    ("pre-crash", CRASH_AT - 300.0, CRASH_AT),
    ("outage", CRASH_AT, RESTART_AT),
    ("recovery", RESTART_AT, RESTART_AT + 300.0),
    ("steady", RESTART_AT + 300.0, RESTART_AT + 600.0),
)


def chaos_workload():
    return generate_trace(
        WorkloadSpec(n_sessions=BENCH_SESSIONS, arrival_rate=1.0, seed=42)
    )


def run_variant(crash: bool, failover: bool):
    model = get_model(MODEL_NAME)
    schedule = None
    if crash:
        schedule = ReplicaFaultSchedule(
            crashes=(
                ReplicaCrash(at=CRASH_AT, replica=1, downtime=DOWNTIME),
            )
        )
    cluster = ClusterEngine(
        model,
        cluster=ClusterConfig(
            n_instances=N_INSTANCES,
            router=RouterName.AFFINITY,
            failover=failover,
        ),
        hardware=HardwareConfig().for_model(model),
        engine_config=EngineConfig(batch_size=model.default_batch_size),
        # DRAM well below the working set so KV reaches the SSD tier and
        # the crash actually has surviving copies to re-admit.
        store_config=StoreConfig(
            dram_bytes=120_000 * model.kv_bytes_per_token,
            ssd_bytes=6_000_000 * model.kv_bytes_per_token,
        ),
        fault_config=FaultConfig(seed=7, replica_schedule=schedule),
    )
    result = cluster.run(chaos_workload())
    records = [
        record
        for engine in cluster.engines
        for record in engine.metrics.records
    ]
    return result, records


def window_stats(records, start, end):
    """(goodput tok/s, p99 observed first-token latency) in [start, end)."""
    done = [r for r in records if start <= r.completion_time < end]
    goodput = sum(r.generated_tokens for r in done) / (end - start)
    latencies = sorted(r.queue_delay + r.ttft for r in done)
    p99 = latencies[min(len(latencies) - 1, int(0.99 * len(latencies)))] if latencies else 0.0
    return goodput, p99


def run_all():
    baseline = run_variant(crash=False, failover=True)
    with_failover = run_variant(crash=True, failover=True)
    naive = run_variant(crash=True, failover=False)
    return baseline, with_failover, naive


def test_ext_chaos_crash_recovery(benchmark):
    (base_result, base_records), (fo_result, fo_records), (
        naive_result,
        naive_records,
    ) = once(benchmark, run_all)

    print()
    rows = []
    stats = {}
    for label, start, end in WINDOWS:
        b_gp, b_p99 = window_stats(base_records, start, end)
        f_gp, f_p99 = window_stats(fo_records, start, end)
        n_gp, n_p99 = window_stats(naive_records, start, end)
        stats[label] = ((b_gp, b_p99), (f_gp, f_p99), (n_gp, n_p99))
        rows.append(
            [
                label,
                f"{b_gp:,.0f}",
                f"{f_gp:,.0f}",
                f"{n_gp:,.0f}",
                f"{b_p99 * 1e3:,.0f}",
                f"{f_p99 * 1e3:,.0f}",
                f"{n_p99 * 1e3:,.0f}",
            ]
        )
    print(
        format_table(
            [
                "window",
                "goodput base",
                "goodput failover",
                "goodput naive",
                "p99 TTFT base (ms)",
                "p99 TTFT failover (ms)",
                "p99 TTFT naive (ms)",
            ],
            rows,
            title=(
                "Extension — goodput & tail TTFT through a replica "
                f"crash ({DOWNTIME:.0f}s downtime), CA failover vs naive "
                "restart"
            ),
        )
    )
    print(
        f"failover: {fo_result.failovers} sessions re-routed, "
        f"{fo_result.failover_recompute_tokens:,} tokens recomputed, "
        f"{fo_result.lost_turns} in-flight turns interrupted; "
        f"naive: {naive_result.parked_turns} turns parked for the outage"
    )

    # Nothing is ever dropped: every variant serves the full trace.
    n_turns = chaos_workload().n_turns_total
    assert base_result.summary.n_turns == n_turns
    assert fo_result.summary.n_turns == n_turns
    assert naive_result.summary.n_turns == n_turns

    # The crash actually happened and was failed over / parked.
    assert fo_result.crashes == naive_result.crashes == 1
    assert fo_result.failovers > 0
    assert fo_result.failover_recompute_tokens > 0
    assert naive_result.parked_turns > 0
    assert naive_result.failovers == 0

    (_, _), (fo_outage, _), (naive_outage, _) = stats["outage"]
    (base_rec, _), (fo_rec, _), _ = stats["recovery"]
    (base_steady, _), (fo_steady, _), (naive_steady, _) = stats["steady"]

    # During the outage, failover keeps serving more of the load than
    # parking does (healthy replicas absorb the dead one's sessions).
    assert fo_outage > naive_outage

    # Headline acceptance: after the restart, goodput with failover
    # recovers to >= 95 % of the healthy baseline over the same window.
    assert fo_rec >= 0.95 * base_rec
    assert fo_steady >= 0.95 * base_steady
    # The naive baseline also eventually catches up (work is deferred,
    # not lost) once its backlog drains.
    assert naive_steady >= 0.90 * base_steady

    # The naive baseline pays the downtime in queue delay: its worst
    # observed first-token latency spans the outage.
    naive_worst = max(r.queue_delay + r.ttft for r in naive_records)
    assert naive_worst >= DOWNTIME * 0.8
