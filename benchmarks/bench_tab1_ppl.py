"""Table 1: perplexity of CA vs TT vs NKVT after context overflow.

Paper: on WikiText-2 / PTB / C4, LLaMA-7B/13B keep almost identical PPL
under token truncation (TT) and CachedAttention's decoupled KV truncation
(CA, within ~0.02), while naive KV truncation (NKVT) explodes past 10^3
because the embedded positional encodings are scrambled.

Substitute (see DESIGN.md): two sizes of a NumPy RoPE transformer trained
on three synthetic copy corpora whose predictions require long-range
attention; long held-out documents trigger overflow at the model's context
window.  Trained weights are cached under ``.model_cache``.
"""

from dataclasses import replace

import pytest
from _shared import MODEL_CACHE_DIR, once

from repro.analysis import format_table
from repro.model import (
    COPY_CORPORA,
    ModelConfig,
    Scheme,
    TrainConfig,
    VOCAB_SIZE,
    evaluate_corpus,
    make_copy_corpus,
    make_trained_model,
)

# Two model sizes mirror the paper's LLaMA-7B/13B rows.  The narrow MLPs
# and many small heads accelerate induction-head formation (the circuit
# behind in-context copying) at this scale.
MODEL_PRESETS = {
    "tiny-48": ModelConfig(
        vocab_size=VOCAB_SIZE, d_model=48, n_layers=2, n_heads=6, d_ff=48,
        context_window=96,
    ),
    "small-64": ModelConfig(
        vocab_size=VOCAB_SIZE, d_model=64, n_layers=2, n_heads=8, d_ff=64,
        context_window=96,
    ),
}
TRAIN = TrainConfig(steps=3000, batch_size=16, seq_len=96, lr=1e-3, lr_half_life=1500)


def long_documents(corpus_name: str, n_docs: int = 15):
    """Held-out documents long enough to overflow the 96-token window."""
    spec = replace(COPY_CORPORA[corpus_name], doc_sentences=24, seed=1234)
    return make_copy_corpus(spec, n_docs)


def run_table():
    table = {}
    for size_name, model_config in MODEL_PRESETS.items():
        model = make_trained_model(
            "mixed", model_config, TRAIN, cache_dir=MODEL_CACHE_DIR
        )
        for corpus_name in COPY_CORPORA:
            docs = long_documents(corpus_name)
            row = {
                scheme: evaluate_corpus(model, docs, scheme).perplexity
                for scheme in (Scheme.CA, Scheme.TT, Scheme.NKVT)
            }
            table[(corpus_name, size_name)] = row
    return table


def test_tab1_perplexity(benchmark):
    table = once(benchmark, run_table)
    print()
    rows = [
        [
            corpus,
            size,
            f"{row[Scheme.CA]:.2f}",
            f"{row[Scheme.TT]:.2f}",
            f"{row[Scheme.NKVT]:.1f}",
        ]
        for (corpus, size), row in table.items()
    ]
    print(
        format_table(
            ["dataset", "model", "CA", "TT", "NKVT"],
            rows,
            title="Table 1 — perplexity after context-window overflow",
        )
    )
    for key, row in table.items():
        # Shape: CA ~= TT (paper: within 0.02 PPL; we allow 5 %), NKVT far
        # worse (paper: >10^3 vs ~5; we require >=3x).
        assert row[Scheme.CA] == pytest.approx(row[Scheme.TT], rel=0.05), key
        assert row[Scheme.NKVT] > 3.0 * row[Scheme.CA], key
