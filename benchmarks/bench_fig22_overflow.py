"""Figure 22: context-overflow handling — CA vs the OF baseline.

OF embeds positional encodings in the stored KV, so every context-window
overflow invalidates the session's cache in AttentionStore.  Paper: hit
rates drop by 17.6/41.5/18.1/18.4 points for 13B/65B/70B/Falcon-40B, with
65B hit hardest (its 2K window overflows almost immediately), and GPU time
rises accordingly.
"""

from _shared import EVAL_MODEL_NAMES, build_engine, end_to_end_run, once, paper_trace

from repro.analysis import format_table, percent
from repro.config import ServingMode, TruncationPolicyName

PAPER_DROPS = {
    "llama-13b": 0.176,
    "llama-65b": 0.415,
    "llama-70b": 0.181,
    "falcon-40b": 0.184,
}


def run_all():
    results = {}
    for name in EVAL_MODEL_NAMES:
        ca = end_to_end_run(name, ServingMode.CACHED)
        engine = build_engine(
            name,
            ServingMode.CACHED,
            engine_overrides=dict(truncation=TruncationPolicyName.KV_EMBEDDED),
        )
        of = engine.run(paper_trace())
        results[name] = (ca, of)
    return results


def test_fig22_context_overflow(benchmark):
    results = once(benchmark, run_all)
    print()
    rows = []
    drops = {}
    for name in EVAL_MODEL_NAMES:
        ca, of = results[name]
        drops[name] = ca.summary.hit_rate - of.summary.hit_rate
        rows.append(
            [
                name,
                percent(ca.summary.hit_rate),
                percent(of.summary.hit_rate),
                percent(drops[name]),
                percent(PAPER_DROPS[name]),
                f"{ca.summary.gpu_time / 3600:.2f}",
                f"{of.summary.gpu_time / 3600:.2f}",
            ]
        )
    print(
        format_table(
            ["model", "CA hit", "OF hit", "drop", "paper drop",
             "CA GPU (h)", "OF GPU (h)"],
            rows,
            title="Figure 22 — decoupled truncation (CA) vs invalidation (OF)",
        )
    )
    # Shape: OF loses hit rate everywhere it overflows; 65B (2K window)
    # is hit (nearly) hardest — Falcon-40B shares the 2K window, so it may
    # tie; lost hits cost GPU time.
    assert all(d > 0.0 for d in drops.values())
    assert drops["llama-65b"] >= max(drops.values()) - 0.05
    for name in EVAL_MODEL_NAMES:
        ca, of = results[name]
        assert of.summary.gpu_time >= ca.summary.gpu_time * 0.999, name
        assert of.store_stats.invalidated > 0, name
