"""Pytest wiring for the benchmark harness.

Adds ``--jobs N``: independent serving runs inside a benchmark fan out
across N spawn-based worker processes (see :mod:`repro.runner`).  Results
are bit-identical to a serial pass; only wall-clock changes.  The option
is exported through ``REPRO_BENCH_JOBS`` so ``_shared.bench_jobs()`` — and
benchmarks run standalone with the env var — see one consistent knob.
"""

import os


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for independent serving runs "
        "(default: REPRO_BENCH_JOBS or 1)",
    )


def pytest_configure(config):
    jobs = config.getoption("--jobs")
    if jobs is not None:
        if jobs < 1:
            raise ValueError(f"--jobs must be >= 1, got {jobs}")
        os.environ["REPRO_BENCH_JOBS"] = str(jobs)
