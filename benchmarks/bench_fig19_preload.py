"""Figure 19: layer-wise pre-loading with various read-buffer depths.

Paper setup: 1K historical / 100 new tokens, LLaMA-13B, batch 16, one
GPU.  NO-PL loads the whole cache before computing; PL-B0 overlaps layer
by layer (-35 % in the paper); deeper read buffers hide more of the load
(PL-B15: -61 %).
"""

from repro.analysis import format_table, percent
from repro.config import HardwareConfig
from repro.engine import (
    layerwise_prefill_time,
    no_preload_prefill_time,
    perfect_overlap_buffer_layers,
)
from repro.hardware import PerfModel
from repro.models import get_model

BATCH = 16
HIST, NEW = 1000, 100
BUFFERS = (0, 5, 10, 15, 20)


def compute():
    model = get_model("llama-13b")
    pm = PerfModel(model, HardwareConfig(num_gpus=1))
    load = pm.kv_transfer_time(HIST, pm.hardware.pcie_bandwidth, batch=BATCH)
    compute_time = pm.prefill_time(NEW, HIST, batch=BATCH)
    no_pl = no_preload_prefill_time(compute_time, load)
    by_buffer = {
        b: layerwise_prefill_time(model.n_layers, compute_time, load, b)
        for b in BUFFERS
    }
    perfect = perfect_overlap_buffer_layers(model.n_layers, compute_time, load)
    return no_pl, by_buffer, perfect, load, compute_time


def test_fig19_layerwise_preloading(benchmark):
    no_pl, by_buffer, perfect, load, compute_time = benchmark(compute)
    print()
    rows = [["NO-PL", f"{no_pl * 1e3:.0f}", "-"]]
    for b, t in by_buffer.items():
        rows.append([f"PL-B{b}", f"{t * 1e3:.0f}", percent(1 - t / no_pl)])
    print(
        format_table(
            ["scheme", "prefill (ms)", "reduction vs NO-PL"],
            rows,
            title="Figure 19 — pre-loading buffers (1K hist / 100 new, LLaMA-13B)",
        )
    )
    print(f"\nload={load*1e3:.0f} ms  compute={compute_time*1e3:.0f} ms  "
          f"perfect-overlap buffer: {perfect} layers")
    # Paper shape: PL-B0 cuts ~35 %, PL-B15 ~61 %; deeper is monotone.
    r0 = 1 - by_buffer[0] / no_pl
    r15 = 1 - by_buffer[15] / no_pl
    assert 0.20 < r0 < 0.45
    assert 0.45 < r15 < 0.70
    times = [by_buffer[b] for b in BUFFERS]
    assert times == sorted(times, reverse=True)
