"""Figure 17: end-to-end inference cost, CA vs RE.

Paper: CA cuts total cost by 70 % (13B), 43 % (65B), 66 % (70B), 68 %
(Falcon-40B); AttentionStore's DRAM+SSD adds only 9-16 % of CA's total.
Prices follow the paper's AWS sheet ($5/GPU/h, $0.0088/GB/h DRAM,
$0.000082/GB/h SSD).
"""

from _shared import EVAL_MODEL_NAMES, end_to_end_run, once

from repro.analysis import cost_saving, format_table, percent, run_cost
from repro.config import HardwareConfig, ServingMode, StoreConfig
from repro.models import get_model

PAPER_SAVINGS = {
    "llama-13b": 0.70,
    "llama-65b": 0.43,
    "llama-70b": 0.66,
    "falcon-40b": 0.68,
}


def run_all():
    out = {}
    store = StoreConfig()
    for name in EVAL_MODEL_NAMES:
        hardware = HardwareConfig().for_model(get_model(name))
        ca = run_cost(end_to_end_run(name, ServingMode.CACHED), hardware, store)
        re = run_cost(end_to_end_run(name, ServingMode.RECOMPUTE), hardware, store)
        out[name] = (ca, re)
    return out


def test_fig17_inference_cost(benchmark):
    costs = once(benchmark, run_all)
    print()
    rows = []
    savings = {}
    for name in EVAL_MODEL_NAMES:
        ca, re = costs[name]
        savings[name] = cost_saving(ca, re)
        rows.append(
            [
                name,
                f"${re.total:,.0f}",
                f"${ca.total:,.0f}",
                percent(ca.storage_fraction),
                percent(savings[name]),
                percent(PAPER_SAVINGS[name]),
            ]
        )
    print(
        format_table(
            ["model", "RE cost", "CA cost", "CA storage share",
             "saving", "paper saving"],
            rows,
            title="Figure 17 — inference cost (AWS on-demand prices)",
        )
    )
    # Shape: CA is cheaper for every model; 65B saves least; storage is a
    # modest fraction of CA's bill.
    assert all(s > 0.0 for s in savings.values())
    assert savings["llama-65b"] == min(savings.values())
    for name in EVAL_MODEL_NAMES:
        assert costs[name][0].storage_fraction < 0.45, name
