"""CI wall-clock bound for the whole-program flow analyzer.

Times a **cold** (cache-disabled) ``repro.lint.flow`` run over the whole
``src/repro`` tree — summary extraction, call-graph construction, and
all four passes (transitive taint, epoch-guard, store-protocol
typestate, batch-race) — and holds it to the ``bound_wall_s`` recorded
in the ``lint_flow`` section of ``BENCH_sim.json``.  The analyzer runs
on every CI push, so its cost has to stay bounded as the tree grows;
the bound is set far above the measured baseline (sub-second on the
baseline host) to absorb shared-runner noise while still catching an
accidental exponential (e.g. path enumeration escaping its budget).

A second check asserts the warm (cached) run does strictly less parsing
work than the cold run — the mtime/hash summary cache must actually
short-circuit.

Run directly (``python benchmarks/bench_lint_flow.py``) to re-measure
and print the numbers that belong in ``BENCH_sim.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.lint.config import FlowOptions, LintConfig, load_config
from repro.lint.flow import analyze_paths

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_sim.json"
)
SRC = os.path.join(os.path.dirname(__file__), "..", "src", "repro")


def measure(tmp_cache: str | None = None) -> dict:
    cfg = load_config(Path(SRC))
    start = time.perf_counter()
    cold = analyze_paths([SRC], cfg, use_cache=False)
    cold_wall = time.perf_counter() - start

    warm_wall = None
    if tmp_cache is not None:
        warm_cfg = LintConfig(
            disable=cfg.disable,
            hot_path_packages=cfg.hot_path_packages,
            store_migration_api=cfg.store_migration_api,
            rule_options=cfg.rule_options,
            flow=FlowOptions(cache=tmp_cache),
        )
        analyze_paths([SRC], warm_cfg, use_cache=True)  # populate
        start = time.perf_counter()
        warm = analyze_paths([SRC], warm_cfg, use_cache=True)
        warm_wall = time.perf_counter() - start
        assert warm.limits["cache_misses"] == 0, warm.limits

    return {
        "cold_wall_s": round(cold_wall, 4),
        "warm_wall_s": round(warm_wall, 4) if warm_wall is not None else None,
        "files": len(cold.index.summaries),
        "findings": len(cold.findings),
        "unresolved_calls": cold.limits["unresolved_calls"],
        "ambiguous_calls": cold.limits["ambiguous_calls"],
        "path_budget_exceeded": cold.limits["path_budget_exceeded"],
    }


def test_flow_analyzer_under_wall_bound(tmp_path) -> None:
    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)
    assert "lint_flow" in baseline, (
        "BENCH_sim.json has no 'lint_flow' section; regenerate it with: "
        "python benchmarks/bench_lint_flow.py"
    )
    bound = baseline["lint_flow"]["bound_wall_s"]
    stats = measure(tmp_cache=str(tmp_path / "flow.json"))
    assert stats["cold_wall_s"] < bound, stats
    # The path-enumeration budget must not be silently eating functions
    # on the real tree — a skipped function is an unanalyzed function.
    assert stats["path_budget_exceeded"] == 0, stats
    # The summary cache must make the warm run cheaper than the cold one.
    assert stats["warm_wall_s"] < stats["cold_wall_s"], stats


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        result = measure(tmp_cache=os.path.join(tmp, "flow.json"))
    print(json.dumps(result, indent=2))
