"""Figure 20: asynchronous KV-cache saving vs write-after-finish.

Paper setup: prompts of 1K-1.6K tokens, 20 decode steps, LLaMA-13B, batch
16, one GPU.  Overlapping the write-back with decoding cuts total
execution time by 13-15 %.
"""

from repro.analysis import format_table, percent
from repro.config import HardwareConfig
from repro.engine import async_save_blocking_time, sync_save_blocking_time
from repro.hardware import PerfModel
from repro.models import get_model

BATCH = 16
DECODE_STEPS = 20
PROMPTS = (1000, 1200, 1400, 1600)
WRITE_BUFFER_LAYERS = 15


def compute():
    model = get_model("llama-13b")
    pm = PerfModel(model, HardwareConfig(num_gpus=1))
    rows = []
    for prompt in PROMPTS:
        prefill = pm.prefill_time(prompt, batch=BATCH)
        decode = pm.decode_segment_time([prompt] * BATCH, DECODE_STEPS)
        save = pm.kv_transfer_time(
            prompt + DECODE_STEPS, pm.hardware.pcie_bandwidth, batch=BATCH
        )
        sync_total = prefill + decode + sync_save_blocking_time(save)
        async_total = prefill + decode + async_save_blocking_time(
            save, decode, model.n_layers, WRITE_BUFFER_LAYERS
        )
        rows.append((prompt, sync_total, async_total, save))
    return rows


def test_fig20_async_saving(benchmark):
    rows = benchmark(compute)
    print()
    table = [
        [
            p,
            f"{sync * 1e3:.0f}",
            f"{asyn * 1e3:.0f}",
            f"{save * 1e3:.0f}",
            percent(1 - asyn / sync),
        ]
        for p, sync, asyn, save in rows
    ]
    print(
        format_table(
            ["prompt", "sync total (ms)", "async total (ms)",
             "save time (ms)", "reduction"],
            table,
            title="Figure 20 — asynchronous KV saving (LLaMA-13B, bs 16, 20 decode steps)",
        )
    )
    for p, sync, asyn, _ in rows:
        reduction = 1 - asyn / sync
        # Paper: 13-15 %; accept a small band around it.
        assert 0.08 < reduction < 0.22, (p, reduction)
    # Absolute saving grows with the prompt (more KV to write).
    savings = [sync - asyn for _, sync, asyn, _ in rows]
    assert savings == sorted(savings)
