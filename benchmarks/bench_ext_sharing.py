"""Extension: cross-session KV sharing via content-addressed prefix blocks.

Fleet workloads front many conversations with the same system prompt /
few-shot template.  CachedAttention as described stores each session's
KV privately, so N sessions pay for the shared prefix N times in both
storage and turn-0 prefill.  This bench quantifies the content-addressed
copy-on-write prefix blocks (DESIGN.md §15) on a prefix-bearing workload:

* **ratio sweep** — hit rate, mean TTFT and shared reuse at a fixed
  store capacity as the fraction of prefix-bearing sessions grows, for
  CA+share (``enable_sharing=True``) vs plain CA on the *same* trace.
  At share ratio 0 the two modes must be bit-identical — the sharing
  machinery is pure overhead-free opt-in.
* **capacity at iso hit rate** — the DRAM a plain-CA store needs to
  match the hit rate CA+share reaches at a small capacity.  The store is
  DRAM-only here so "capacity" is one number; the gate asserts the
  ≥1.2x effective-capacity advantage that motivates the feature.

Scale is controlled by ``REPRO_SHARING_SESSIONS`` (default 160; the CI
sharing-smoke lane runs the default — each run is a fraction of a
second).  The regression-gate baselines in BENCH_sim.json are computed
at the fixed ``GATE_N`` so they mean the same thing everywhere.
"""

from __future__ import annotations

import os

from _shared import once

from repro.analysis import format_table, percent
from repro.config import EngineConfig, HardwareConfig, StoreConfig
from repro.engine import RunSummary, ServingEngine
from repro.models import get_model
from repro.workload import WorkloadSpec, generate_trace

GiB = 1 << 30
MODEL_NAME = "llama-13b"
N_SESSIONS = int(os.environ.get("REPRO_SHARING_SESSIONS", "160"))
#: Regression-gate scale — fixed, not env-controlled (baseline numbers in
#: BENCH_sim.json must be host- and lane-independent).
GATE_N = 160
SHARE_RATIOS = (0.0, 0.25, 0.5, 0.75)
PREFIX_TOKENS = 800
N_PREFIXES = 2
#: Fixed-capacity comparison rows (ratio sweep).
REFERENCE_DRAM_GIB = 8
#: DRAM grid for the iso-hit-rate capacity search.
CAPACITY_GRID_GIB = (2, 4, 8, 16, 32)
#: The sharing-smoke CI gate: effective capacity at iso hit rate.
MIN_CAPACITY_RATIO = 1.2


def sharing_spec(n_sessions: int, ratio: float) -> WorkloadSpec:
    return WorkloadSpec(
        n_sessions=n_sessions,
        seed=42,
        shared_prefix_fraction=ratio,
        shared_prefix_len=PREFIX_TOKENS if ratio else 0,
        n_shared_prefixes=N_PREFIXES,
    )


def run_one(
    n_sessions: int, ratio: float, dram_gib: float, sharing: bool
) -> RunSummary:
    """One CA replay on a DRAM-only store (capacity is one number)."""
    model = get_model(MODEL_NAME)
    engine = ServingEngine(
        model,
        hardware=HardwareConfig().for_model(model),
        engine_config=EngineConfig(batch_size=model.default_batch_size),
        store_config=StoreConfig(
            dram_bytes=int(dram_gib * GiB),
            ssd_bytes=0,
            enable_sharing=sharing,
        ),
    )
    return engine.run(generate_trace(sharing_spec(n_sessions, ratio))).summary


def ratio_sweep(n_sessions: int) -> dict[float, tuple[RunSummary, RunSummary]]:
    """share ratio -> (CA+share, plain CA) at the reference capacity."""
    return {
        ratio: (
            run_one(n_sessions, ratio, REFERENCE_DRAM_GIB, sharing=True),
            run_one(n_sessions, ratio, REFERENCE_DRAM_GIB, sharing=False),
        )
        for ratio in SHARE_RATIOS
    }


def capacity_sweep(n_sessions: int) -> dict:
    """Iso-hit-rate capacity comparison at share ratio 0.5.

    The target hit rate is what plain CA manages at the *largest* grid
    capacity — reachable for both modes by construction.  Each mode's
    required capacity is the smallest grid point meeting the target, so
    the reported ratio is grid-quantised (a lower bound when CA+share
    clears the target at the smallest point).
    """
    curves: dict[str, dict[float, float]] = {"share": {}, "noshare": {}}
    for gib in CAPACITY_GRID_GIB:
        curves["share"][gib] = run_one(n_sessions, 0.5, gib, True).hit_rate
        curves["noshare"][gib] = run_one(n_sessions, 0.5, gib, False).hit_rate
    target = curves["noshare"][CAPACITY_GRID_GIB[-1]]
    required = {
        mode: next(
            gib for gib in CAPACITY_GRID_GIB if curve[gib] >= target
        )
        for mode, curve in curves.items()
    }
    return {
        "target_hit_rate": target,
        "curves": curves,
        "required_gib": required,
        "capacity_ratio": required["noshare"] / required["share"],
    }


#: Both tests analyse the same sweeps; computed once per process.
_CACHE: dict[str, object] = {}


def _ratio_table() -> dict[float, tuple[RunSummary, RunSummary]]:
    if "ratio" not in _CACHE:
        _CACHE["ratio"] = ratio_sweep(N_SESSIONS)
    return _CACHE["ratio"]  # type: ignore[return-value]


def _capacity_table() -> dict:
    if "capacity" not in _CACHE:
        _CACHE["capacity"] = capacity_sweep(N_SESSIONS)
    return _CACHE["capacity"]  # type: ignore[return-value]


def test_ext_sharing_ratio_sweep(benchmark):
    table = once(benchmark, _ratio_table)
    print()
    rows = []
    for ratio, (share, noshare) in table.items():
        rows.append(
            [
                f"{ratio:.2f}",
                percent(share.hit_rate),
                percent(noshare.hit_rate),
                f"{share.mean_ttft * 1000:.1f}",
                f"{noshare.mean_ttft * 1000:.1f}",
                str(share.hits_shared),
                str(share.shared_reused_tokens_total),
            ]
        )
    print(
        format_table(
            [
                "share ratio",
                "hit (CA+share)",
                "hit (CA)",
                "TTFT ms (CA+share)",
                "TTFT ms (CA)",
                "shared hits",
                "shared tokens",
            ],
            rows,
            title=(
                "Extension — cross-session KV sharing "
                f"({REFERENCE_DRAM_GIB} GiB DRAM-only store)"
            ),
        )
    )
    # Share ratio 0: sharing enabled is bit-identical to sharing disabled
    # (the machinery must not perturb a share-free workload).
    share0, noshare0 = table[0.0]
    assert share0 == noshare0
    assert share0.hits_shared == 0
    for ratio, (share, noshare) in table.items():
        if ratio == 0.0:
            continue
        # Sharing only ever adds reuse: better hit rate, no worse TTFT.
        assert share.hits_shared > 0, ratio
        assert share.hit_rate > noshare.hit_rate, ratio
        assert share.mean_ttft <= noshare.mean_ttft * 1.02, ratio
        assert noshare.hits_shared == 0, ratio
    # More prefix-bearing sessions -> more shared reuse.
    reuse = [
        table[r][0].shared_reused_tokens_total for r in SHARE_RATIOS[1:]
    ]
    assert reuse == sorted(reuse)


def test_ext_sharing_capacity_at_iso_hit_rate(benchmark):
    result = once(benchmark, _capacity_table)
    print()
    rows = [
        [
            f"{gib}",
            percent(result["curves"]["share"][gib]),
            percent(result["curves"]["noshare"][gib]),
        ]
        for gib in CAPACITY_GRID_GIB
    ]
    print(
        format_table(
            ["DRAM GiB", "hit (CA+share)", "hit (CA)"],
            rows,
            title=(
                "Extension — capacity at iso hit rate "
                f"(target {percent(result['target_hit_rate'])}, share 0.5)"
            ),
        )
    )
    req = result["required_gib"]
    print(
        f"required: CA+share {req['share']} GiB, CA {req['noshare']} GiB "
        f"-> {result['capacity_ratio']:.1f}x effective capacity"
    )
    # The sharing-smoke gate: at share ratio 0.5 a CA+share store matches
    # plain CA's hit rate with >=1.2x less DRAM.
    assert result["capacity_ratio"] >= MIN_CAPACITY_RATIO, result
