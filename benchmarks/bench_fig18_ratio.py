"""Figure 18: recomputation vs CachedAttention across historic/new splits.

Paper setup: prefill the same 1K tokens (batch 16, one A100, LLaMA-13B) at
splits 500/500 ... 900/100 (historical/new).  RE computes all 1K; CA loads
the historical KV and prefills only the new tokens — shown both without
overlap (load + compute) and with layer-wise pre-loading.  CA always wins,
and more so as the new-token share shrinks.
"""

from repro.analysis import format_table
from repro.config import HardwareConfig
from repro.engine import layerwise_prefill_time, no_preload_prefill_time
from repro.hardware import PerfModel
from repro.models import get_model

SPLITS = [(500, 500), (600, 400), (700, 300), (800, 200), (900, 100)]
BATCH = 16
READ_BUFFER_LAYERS = 15


def compute_rows():
    model = get_model("llama-13b")
    pm = PerfModel(model, HardwareConfig(num_gpus=1))
    rows = []
    for hist, new in SPLITS:
        re_time = pm.prefill_time(hist + new, batch=BATCH)
        load = pm.kv_transfer_time(hist, pm.hardware.pcie_bandwidth, batch=BATCH)
        compute = pm.prefill_time(new, hist, batch=BATCH)
        ca_plain = no_preload_prefill_time(compute, load)
        ca_preload = layerwise_prefill_time(
            model.n_layers, compute, load, READ_BUFFER_LAYERS
        )
        rows.append((hist, new, re_time, ca_plain, ca_preload))
    return rows


def test_fig18_recompute_vs_cachedattention(benchmark):
    rows = benchmark(compute_rows)
    print()
    table = [
        [
            f"{h}/{n}",
            f"{re * 1e3:.0f}",
            f"{plain * 1e3:.0f}",
            f"{pre * 1e3:.0f}",
            f"{re / pre:.2f}x",
        ]
        for h, n, re, plain, pre in rows
    ]
    print(
        format_table(
            ["hist/new", "RE (ms)", "CA no-overlap (ms)",
             "CA pre-load (ms)", "CA speedup"],
            table,
            title="Figure 18 — prefilling 1K tokens (LLaMA-13B, bs 16, 1 GPU)",
        )
    )
    for h, n, re, plain, pre in rows:
        assert pre <= plain + 1e-9
        assert pre < re, (h, n)
    # The advantage grows as the new-token share shrinks.
    speedups = [re / pre for _, _, re, _, pre in rows]
    assert speedups == sorted(speedups)
