"""Figure 1b: prefill latency grows with prompt length; decode is flat.

Paper setup: LLaMA-70B, batch size 8, 4 A100 GPUs.  The prefill curve
rises with the token count while per-iteration decode latency stays almost
constant.
"""

from repro.analysis import format_table
from repro.config import HardwareConfig
from repro.hardware import PerfModel
from repro.models import get_model

PROMPT_LENGTHS = (256, 512, 1024, 2048, 4096)
BATCH = 8


def compute_series():
    pm = PerfModel(get_model("llama-70b"), HardwareConfig(num_gpus=4))
    prefill = {n: pm.prefill_time(n, batch=BATCH) for n in PROMPT_LENGTHS}
    decode = {n: pm.decode_step_time([n] * BATCH) for n in PROMPT_LENGTHS}
    return prefill, decode


def test_fig01_phase_latencies(benchmark):
    prefill, decode = benchmark(compute_series)
    rows = [
        [n, f"{prefill[n] * 1e3:.0f}", f"{decode[n] * 1e3:.1f}"]
        for n in PROMPT_LENGTHS
    ]
    print()
    print(
        format_table(
            ["tokens", "prefill (ms)", "decode/iter (ms)"],
            rows,
            title="Figure 1b — prefill vs decode latency (LLaMA-70B, bs 8, 4xA100)",
        )
    )
    # Shape: prefill scales ~linearly; decode stays within a small band.
    assert prefill[4096] > 10 * prefill[256]
    assert decode[4096] < 3 * decode[256]
