"""Figure 15: prompt prefilling throughput, CA vs RE.

Paper speedups: 6.8x (13B), 2.6x (65B), 7.8x (70B), 7.2x (Falcon-40B).
Throughput counts all prompt tokens — reused history is served from the
cache, which is where the multiplier comes from.
"""

from _shared import EVAL_MODEL_NAMES, end_to_end_run, once

from repro.analysis import format_table
from repro.config import ServingMode

PAPER_SPEEDUPS = {
    "llama-13b": 6.8,
    "llama-65b": 2.6,
    "llama-70b": 7.8,
    "falcon-40b": 7.2,
}


def run_all():
    return {
        name: {
            mode: end_to_end_run(name, mode)
            for mode in (ServingMode.CACHED, ServingMode.RECOMPUTE)
        }
        for name in EVAL_MODEL_NAMES
    }


def test_fig15_prefill_throughput(benchmark):
    results = once(benchmark, run_all)
    print()
    rows = []
    speedups = {}
    for name in EVAL_MODEL_NAMES:
        ca = results[name][ServingMode.CACHED].summary.prefill_throughput
        re = results[name][ServingMode.RECOMPUTE].summary.prefill_throughput
        speedups[name] = ca / re
        rows.append(
            [
                name,
                f"{re:,.0f}",
                f"{ca:,.0f}",
                f"{speedups[name]:.2f}x",
                f"{PAPER_SPEEDUPS[name]:.1f}x",
            ]
        )
    print(
        format_table(
            ["model", "RE (tok/s)", "CA (tok/s)", "speedup", "paper"],
            rows,
            title="Figure 15 — prefill throughput",
        )
    )
    # Shape: large gains everywhere; 65B smallest (PCIe-bound KV loads).
    assert all(s > 1.5 for s in speedups.values())
    assert speedups["llama-65b"] == min(speedups.values())
