"""Table 2: downstream accuracy of CA vs TT vs NKVT after overflow.

Paper: on MMLU / LongEval / PIQA, CA and TT answer equally well after
context truncation while NKVT collapses (e.g. LongEval 66 % / 66 % / 12 %
for LLaMA-7B) — scrambled positions disrupt retrieval from context.

Substitute (see DESIGN.md): the word-recall benchmark — a LongEval-style
probe where the model must retrieve the spelling of document-specific
words from the *kept* context after truncation — plus overall next-token
accuracy on two long copy corpora standing in for the multiple-choice
benchmarks.  Two model sizes mirror the paper's 7B/13B rows.
"""

from dataclasses import replace

import pytest
from _shared import MODEL_CACHE_DIR, once

from repro.analysis import format_table, percent
from repro.model import (
    COPY_CORPORA,
    ModelConfig,
    Scheme,
    TrainConfig,
    VOCAB_SIZE,
    evaluate_corpus,
    make_copy_corpus,
    make_trained_model,
    run_word_recall_benchmark,
)

# Two model sizes mirror the paper's LLaMA-7B/13B rows.  The narrow MLPs
# and many small heads accelerate induction-head formation (the circuit
# behind in-context copying) at this scale.
MODEL_PRESETS = {
    "tiny-48": ModelConfig(
        vocab_size=VOCAB_SIZE, d_model=48, n_layers=2, n_heads=6, d_ff=48,
        context_window=96,
    ),
    "small-64": ModelConfig(
        vocab_size=VOCAB_SIZE, d_model=64, n_layers=2, n_heads=8, d_ff=64,
        context_window=96,
    ),
}
TRAIN = TrainConfig(steps=3000, batch_size=16, seq_len=96, lr=1e-3, lr_half_life=1500)
SCHEMES = (Scheme.CA, Scheme.TT, Scheme.NKVT)


def accuracy_corpus(corpus_name: str):
    spec = replace(COPY_CORPORA[corpus_name], doc_sentences=24, seed=4321)
    return make_copy_corpus(spec, 12)


def run_table():
    table = {}
    for size_name, model_config in MODEL_PRESETS.items():
        model = make_trained_model(
            "mixed", model_config, TRAIN, cache_dir=MODEL_CACHE_DIR
        )
        table[("synth-LongEval (word recall)", size_name)] = {
            s: run_word_recall_benchmark(model, s, n_cases=20).accuracy
            for s in SCHEMES
        }
        for corpus, label in (
            ("synth-wikitext", "synth-MMLU (next token)"),
            ("synth-ptb", "synth-PIQA (next token)"),
        ):
            docs = accuracy_corpus(corpus)
            table[(label, size_name)] = {
                s: evaluate_corpus(model, docs, s).accuracy for s in SCHEMES
            }
    return table


def test_tab2_accuracy(benchmark):
    table = once(benchmark, run_table)
    print()
    rows = [
        [
            bench,
            size,
            percent(row[Scheme.CA]),
            percent(row[Scheme.TT]),
            percent(row[Scheme.NKVT]),
        ]
        for (bench, size), row in table.items()
    ]
    print(
        format_table(
            ["benchmark", "model", "CA", "TT", "NKVT"],
            rows,
            title="Table 2 — accuracy after context-window overflow",
        )
    )
    for key, row in table.items():
        # Shape: CA ~= TT; NKVT clearly collapses.  The tiny model answers
        # less often — like the paper's smaller-model rows — but the
        # scheme separation is what the table tests.
        assert abs(row[Scheme.CA] - row[Scheme.TT]) < 0.08, key
        assert row[Scheme.NKVT] < row[Scheme.CA] - 0.10, key
        assert row[Scheme.CA] > 0.2, key
