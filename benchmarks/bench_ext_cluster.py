"""Extension: multi-instance cluster serving with cache-aware routing.

Scales the Fig-13 workload to 4x the arrival rate and 4x the sessions and
serves it on a 4-replica cluster (each replica a full paper testbed with a
quarter of the AttentionStore capacity), comparing session routers against
a single instance serving the 1x workload:

* **affinity** (cache-aware) — near-linear scaling: aggregate prefill
  throughput >= 3x the single instance, with the cache hit rate preserved
  (within 5 points) because sessions return to the replica holding their
  KV;
* **round-robin / least-loaded** — the same hardware loses most of its hit
  rate, because partitioned stores make locality-oblivious routing scatter
  turns away from their cached history.
"""

from _shared import N_SESSIONS, once

from repro.analysis import format_table, percent
from repro.cluster import ClusterConfig, ClusterEngine, RouterName
from repro.config import EngineConfig, HardwareConfig, StoreConfig
from repro.engine import ServingEngine
from repro.models import get_model
from repro.workload import WorkloadSpec, generate_trace

MODEL_NAME = "llama-13b"
N_INSTANCES = 4
SINGLE_SESSIONS = min(N_SESSIONS, 700)
BASE_RATE = 1.0


def single_trace():
    return generate_trace(
        WorkloadSpec(n_sessions=SINGLE_SESSIONS, arrival_rate=BASE_RATE, seed=42)
    )


def cluster_trace():
    """The single-instance workload scaled 4x in rate *and* volume."""
    return generate_trace(
        WorkloadSpec(
            n_sessions=N_INSTANCES * SINGLE_SESSIONS,
            arrival_rate=N_INSTANCES * BASE_RATE,
            seed=42,
        )
    )


def aggregate_throughput(summary) -> float:
    """Prompt tokens per wall-clock second (scales with replica count)."""
    if summary.makespan <= 0:
        return 0.0
    return summary.prompt_tokens_total / summary.makespan


def run_single():
    model = get_model(MODEL_NAME)
    engine = ServingEngine(
        model,
        hardware=HardwareConfig().for_model(model),
        engine_config=EngineConfig(batch_size=model.default_batch_size),
        store_config=StoreConfig(),
    )
    return engine.run(single_trace())


def run_cluster(router: RouterName):
    model = get_model(MODEL_NAME)
    engine = ClusterEngine(
        model,
        cluster=ClusterConfig(n_instances=N_INSTANCES, router=router),
        hardware=HardwareConfig().for_model(model),
        engine_config=EngineConfig(batch_size=model.default_batch_size),
        store_config=StoreConfig(),
    )
    return engine.run(cluster_trace())


def run_all():
    single = run_single()
    clusters = {router: run_cluster(router) for router in RouterName}
    return single, clusters


def test_ext_cluster_scaling(benchmark):
    single, clusters = once(benchmark, run_all)
    single_tput = aggregate_throughput(single.summary)

    print()
    rows = [
        [
            "1x single",
            f"{single.summary.n_turns}",
            percent(single.summary.hit_rate),
            f"{single.summary.mean_ttft * 1e3:.1f}",
            f"{single_tput:,.0f}",
            "1.00x",
            "-",
            "-",
        ]
    ]
    for router, result in clusters.items():
        rows.append(
            [
                f"4x {router.value}",
                f"{result.summary.n_turns}",
                percent(result.hit_rate),
                f"{result.summary.mean_ttft * 1e3:.1f}",
                f"{result.aggregate_prefill_throughput:,.0f}",
                f"{result.aggregate_prefill_throughput / single_tput:.2f}x",
                f"{result.migrations}",
                f"{result.scatter_drops}",
            ]
        )
    print(
        format_table(
            ["config", "turns", "hit rate", "mean TTFT (ms)",
             "agg tok/s", "scaling", "migrations", "stale drops"],
            rows,
            title=(
                "Extension — 4-replica cluster vs single instance "
                f"({MODEL_NAME}, {N_INSTANCES}x rate and volume)"
            ),
        )
    )

    affinity = clusters[RouterName.AFFINITY]
    rr = clusters[RouterName.ROUND_ROBIN]

    # Every turn of the 4x workload is served exactly once, whatever the
    # router.
    expected_turns = cluster_trace().n_turns_total
    for result in clusters.values():
        assert result.summary.n_turns == expected_turns

    # Near-linear scaling under cache-aware routing: >= 3x the single
    # instance's aggregate prefill throughput on 4x the hardware.
    assert affinity.aggregate_prefill_throughput >= 3.0 * single_tput

    # Affinity preserves the hit rate across the scale-out (within 5
    # points of the single instance over an un-partitioned store).
    assert affinity.hit_rate >= single.summary.hit_rate - 0.05

    # Locality-oblivious scatter over partitioned stores destroys it.
    assert rr.hit_rate < affinity.hit_rate - 0.2
    assert rr.scatter_drops > 0
    assert clusters[RouterName.LEAST_LOADED].hit_rate < affinity.hit_rate - 0.2

    # And the hit-rate gap shows up where it matters: TTFT.
    assert affinity.summary.mean_ttft < rr.summary.mean_ttft
