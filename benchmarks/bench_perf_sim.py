"""Perf harness: simulator hot-path wall-clock (BENCH_sim.json).

Times a Fig-13-size CA replay twice — once as shipped (O(1) closed-form
layer-wise pipeline, memoised :class:`PerfModel`/:class:`ModelSpec` hot
calls) and once with the legacy hot path restored (the O(L) per-layer
recurrence, caches bypassed) — plus microbenchmarks of the two optimised
call sites in isolation, where the win is not buried under event-loop and
store bookkeeping.  Results land in ``BENCH_sim.json`` at the repo root,
seeding the perf trajectory.

Runs standalone (``python benchmarks/bench_perf_sim.py``) or under pytest.
"""

from __future__ import annotations

import json
import os
import time

from repro.config import EngineConfig, HardwareConfig, StoreConfig
from repro.engine import ServingEngine
from repro.engine.overlap import (
    layerwise_prefill_time,
    layerwise_prefill_time_reference,
)
from repro.hardware.perf import PerfModel
from repro.models import ModelSpec, get_model
from repro.workload import WorkloadSpec, generate_trace

import repro.engine.engine as engine_module

MODEL_NAME = "llama-13b"
BENCH_SESSIONS = int(os.environ.get("REPRO_PERF_SESSIONS", "1200"))
REPLAY_ROUNDS = 3
MICRO_CALLS = 100_000
OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_sim.json")


def build_engine() -> ServingEngine:
    model = get_model(MODEL_NAME)
    return ServingEngine(
        model,
        hardware=HardwareConfig().for_model(model),
        engine_config=EngineConfig(batch_size=model.default_batch_size),
        store_config=StoreConfig(),
    )


def replay_once():
    trace = generate_trace(WorkloadSpec(n_sessions=BENCH_SESSIONS, seed=42))
    start = time.perf_counter()
    result = build_engine().run(trace)
    return time.perf_counter() - start, result


def best_of(rounds):
    walls = []
    result = None
    for _ in range(rounds):
        wall, result = replay_once()
        walls.append(wall)
    return min(walls), result


class legacy_hot_path:
    """Temporarily restore the pre-optimisation hot path: per-layer
    pipeline recurrence, no memoisation on PerfModel/ModelSpec."""

    def __enter__(self):
        self._layerwise = engine_module.layerwise_prefill_time
        self._prefill = PerfModel.prefill_time
        self._kv = ModelSpec.kv_bytes
        engine_module.layerwise_prefill_time = layerwise_prefill_time_reference
        PerfModel.prefill_time = (
            lambda self, n_new, n_past=0, batch=1: self._prefill_time(
                n_new, n_past, batch
            )
        )
        ModelSpec.kv_bytes = lambda self, n_tokens: self._kv_bytes(n_tokens)
        return self

    def __exit__(self, *exc):
        engine_module.layerwise_prefill_time = self._layerwise
        PerfModel.prefill_time = self._prefill
        ModelSpec.kv_bytes = self._kv
        return False


def micro(fn, *args):
    start = time.perf_counter()
    for _ in range(MICRO_CALLS):
        fn(*args)
    return time.perf_counter() - start


def run_harness() -> dict:
    optimized_wall, optimized = best_of(REPLAY_ROUNDS)
    with legacy_hot_path():
        legacy_wall, legacy = best_of(REPLAY_ROUNDS)

    # Identical simulations modulo the last-ulp closed-form difference.
    assert optimized.events_processed == legacy.events_processed
    assert optimized.summary.n_turns == legacy.summary.n_turns
    assert abs(optimized.summary.mean_ttft - legacy.summary.mean_ttft) <= (
        1e-9 * legacy.summary.mean_ttft
    )

    model = get_model(MODEL_NAME)
    perf = PerfModel(model, HardwareConfig().for_model(model))
    layerwise_closed = micro(
        layerwise_prefill_time, model.n_layers, 0.35, 0.21, 15
    )
    layerwise_loop = micro(
        layerwise_prefill_time_reference, model.n_layers, 0.35, 0.21, 15
    )
    prefill_cached = micro(perf.prefill_time, 512, 2048)
    prefill_uncached = micro(perf._prefill_time, 512, 2048, 1)

    return {
        "model": MODEL_NAME,
        "sessions": BENCH_SESSIONS,
        "turns": optimized.summary.n_turns,
        "events": optimized.events_processed,
        "replay": {
            "optimized_wall_s": round(optimized_wall, 4),
            "legacy_wall_s": round(legacy_wall, 4),
            "speedup": round(legacy_wall / optimized_wall, 4),
            "events_per_s": round(optimized.events_processed / optimized_wall),
        },
        "layerwise_prefill_time": {
            "micro_calls": MICRO_CALLS,
            "closed_form_s": round(layerwise_closed, 4),
            "reference_loop_s": round(layerwise_loop, 4),
            "speedup": round(layerwise_loop / layerwise_closed, 2),
        },
        "perfmodel_prefill_time": {
            "micro_calls": MICRO_CALLS,
            "memoized_s": round(prefill_cached, 4),
            "unmemoized_s": round(prefill_uncached, 4),
            "speedup": round(prefill_uncached / prefill_cached, 2),
        },
    }


def write_report(payload: dict) -> None:
    with open(OUT_PATH, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def test_perf_sim():
    payload = run_harness()
    write_report(payload)
    print()
    print(json.dumps(payload, indent=2))
    # The isolated hot paths must be decisively faster; the whole-replay
    # wall-clock is recorded but only sanity-bounded (the event loop and
    # store dominate it, so its delta is small and machine-noisy).
    assert payload["layerwise_prefill_time"]["speedup"] > 2.0
    assert payload["perfmodel_prefill_time"]["speedup"] > 1.2
    assert payload["replay"]["speedup"] > 0.85


if __name__ == "__main__":
    report = run_harness()
    write_report(report)
    print(json.dumps(report, indent=2))
