"""Perf harness: simulator hot-path wall-clock (BENCH_sim.json).

Times a Fig-13-size CA replay twice — once as shipped (O(1) closed-form
layer-wise pipeline, memoised :class:`PerfModel`/:class:`ModelSpec` hot
calls) and once with the legacy hot path restored (the O(L) per-layer
recurrence, caches bypassed) — plus microbenchmarks of the two optimised
call sites in isolation, where the win is not buried under event-loop and
store bookkeeping.  Results land in ``BENCH_sim.json`` at the repo root,
seeding the perf trajectory.

Two further sections measure the PR-3 performance layer:

* **sweep** — a grid of replay points run serially and via the
  :mod:`repro.runner` process pool; per-point results must be
  bit-identical and the wall-clock speedup is floored at a fraction of
  ``min(jobs, cpus)`` (on a single-CPU host parallelism cannot beat
  serial, so the floor only guards against pathological overhead there).
* **metrics_modes** — the same replay with the exact and the streaming
  :class:`MetricsCollector`: identical counters, p95 TTFT within
  tolerance, and the streaming run retaining no per-turn records.

The **scheduler** section microbenchmarks the calendar-queue simulation
core against the legacy heap — now also the default production core via
``Simulator(core="auto")`` — (push/pop and cancel throughput on the bare
queues; batched vs legacy dispatch on unique-timestamp,
shared-timestamp and self-scheduling-chain patterns), and **profile**
writes one :class:`EventLoopProfiler` report of a gate-size replay to
``BENCH_profile.txt`` for CI to upload as an artifact, plus the
top-callback *shares* so the continuation refactor's profile shape
(slotted continuation classes instead of ``_after_epoch.<locals>.fire``
closures at 77% of estimated cost) is asserted per-commit.

The **trace_modes** section exercises the streaming workload layer:
a streamed :func:`repro.workload.stream_trace` replay must be
bit-identical to materialising the same stream up front, and a large
streamed replay (``REPRO_PERF_STREAM_SESSIONS`` sessions, run in a
subprocess so its peak RSS is measured in isolation) must use
sub-linear memory versus a quarter-size run — the O(live-sessions)
claim, since finished sessions are dropped as the stream advances.

Env knobs (all optional): ``REPRO_PERF_SESSIONS``, ``REPRO_PERF_JOBS``,
``REPRO_PERF_SWEEP_FLOOR`` (override the sweep speedup floor),
``REPRO_PERF_EVENTS_FLOOR`` (minimum streaming-replay events/s; 0 = off),
``REPRO_PERF_MAX_RSS_MB`` (peak-RSS ceiling for the process; 0 = off),
``REPRO_PERF_STREAM_SESSIONS`` (streamed-replay size; default 20000),
``REPRO_PROFILE_OUT`` (profile artifact path).

Runs standalone (``python benchmarks/bench_perf_sim.py``) or under pytest.
"""

from __future__ import annotations

import dataclasses
import json
import os
import resource
import subprocess
import sys
import time
import tracemalloc

from repro.config import EngineConfig, HardwareConfig, StoreConfig
from repro.engine import ServingEngine
from repro.engine.overlap import (
    layerwise_prefill_time,
    layerwise_prefill_time_reference,
)
from repro.hardware.perf import PerfModel
from repro.models import ModelSpec, get_model
from repro.obs import EventLoopProfiler
from repro.runner import SweepPoint, run_sweep, unwrap
from repro.sim import EventQueue, LegacyEventQueue, Simulator
from repro.workload import Trace, WorkloadSpec, generate_trace, stream_trace

import repro.engine.engine as engine_module

MODEL_NAME = "llama-13b"
BENCH_SESSIONS = int(os.environ.get("REPRO_PERF_SESSIONS", "1200"))
REPLAY_ROUNDS = 3
MICRO_CALLS = 100_000
SCHED_EVENTS = 200_000
SCHED_ROUNDS = 3
PROFILE_OUT = os.environ.get(
    "REPRO_PROFILE_OUT",
    os.path.join(os.path.dirname(__file__), "..", "BENCH_profile.txt"),
)
SWEEP_JOBS = int(os.environ.get("REPRO_PERF_JOBS", "4"))
SWEEP_SESSION_GRID = (400, 600, 800, 1000)
# The regression gate's replay size is fixed (not REPRO_PERF_SESSIONS):
# its baselines in BENCH_sim.json must mean the same thing on every host
# and in every CI job, whatever replay size the perf smoke test uses.
GATE_SESSIONS = 300
STREAM_SESSIONS = int(os.environ.get("REPRO_PERF_STREAM_SESSIONS", "20000"))
OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_sim.json")

# The profile shape before the continuation refactor (PR 8): the
# epoch-guard closure dominated the estimated event-loop cost.  Kept as
# a constant so the before/after share comparison survives baseline
# regeneration.
PRIOR_TOP_CALLBACK = "ServingEngine._after_epoch.<locals>.fire"
PRIOR_TOP_SHARE = 0.773


def load_benchmark_module(name: str):
    """Import a sibling ``benchmarks/<name>.py`` by path (the directory is
    not a package, and under pytest its modules are top-level)."""
    import importlib.util

    path = os.path.join(os.path.dirname(__file__), f"{name}.py")
    spec = importlib.util.spec_from_file_location(name, path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_engine(streaming_metrics: bool = False) -> ServingEngine:
    model = get_model(MODEL_NAME)
    return ServingEngine(
        model,
        hardware=HardwareConfig().for_model(model),
        engine_config=EngineConfig(batch_size=model.default_batch_size),
        store_config=StoreConfig(),
        streaming_metrics=streaming_metrics,
    )


def replay_once():
    trace = generate_trace(WorkloadSpec(n_sessions=BENCH_SESSIONS, seed=42))
    start = time.perf_counter()
    result = build_engine().run(trace)
    return time.perf_counter() - start, result


def best_of(rounds):
    walls = []
    result = None
    for _ in range(rounds):
        wall, result = replay_once()
        walls.append(wall)
    return min(walls), result


class legacy_hot_path:
    """Temporarily restore the pre-optimisation hot path: per-layer
    pipeline recurrence, no memoisation on PerfModel/ModelSpec."""

    def __enter__(self):
        self._layerwise = engine_module.layerwise_prefill_time
        self._prefill = PerfModel.prefill_time
        self._kv = ModelSpec.kv_bytes
        engine_module.layerwise_prefill_time = layerwise_prefill_time_reference
        PerfModel.prefill_time = (
            lambda self, n_new, n_past=0, batch=1: self._prefill_time(
                n_new, n_past, batch
            )
        )
        ModelSpec.kv_bytes = lambda self, n_tokens: self._kv_bytes(n_tokens)
        return self

    def __exit__(self, *exc):
        engine_module.layerwise_prefill_time = self._layerwise
        PerfModel.prefill_time = self._prefill
        ModelSpec.kv_bytes = self._kv
        return False


def micro(fn, *args):
    start = time.perf_counter()
    for _ in range(MICRO_CALLS):
        fn(*args)
    return time.perf_counter() - start


def _replay_point_worker(point: SweepPoint, seed: int):
    """Sweep worker: one replay at ``point.params`` sessions (spawn-safe)."""
    del seed  # the replay trace seed is part of the config, not per-point
    trace = generate_trace(WorkloadSpec(n_sessions=point.params, seed=42))
    result = build_engine().run(trace)
    return (result.summary, result.store_stats, result.events_processed)


def sweep_benchmark() -> dict:
    """Serial vs parallel grid replay: wall-clock and bit-identity."""
    points = [SweepPoint(f"sessions={n}", n) for n in SWEEP_SESSION_GRID]
    start = time.perf_counter()
    serial = unwrap(run_sweep(_replay_point_worker, points, jobs=1))
    serial_wall = time.perf_counter() - start
    start = time.perf_counter()
    parallel = unwrap(run_sweep(_replay_point_worker, points, jobs=SWEEP_JOBS))
    parallel_wall = time.perf_counter() - start
    return {
        "jobs": SWEEP_JOBS,
        "cpus": available_cpus(),
        "points": [p.key for p in points],
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": round(parallel_wall, 4),
        "speedup": round(serial_wall / parallel_wall, 4),
        "bit_identical": all(serial[k] == parallel[k] for k in serial),
    }


def metrics_modes_benchmark() -> dict:
    """Exact vs streaming MetricsCollector on the full replay.

    Timing runs first (untraced); a second pair of runs under tracemalloc
    measures the memory still *retained* when the run finishes — the
    collector's record list is the only difference between the modes, so
    the retained-bytes gap is the streaming win.
    """
    trace = generate_trace(WorkloadSpec(n_sessions=BENCH_SESSIONS, seed=42))

    def timed(streaming: bool):
        engine = build_engine(streaming_metrics=streaming)
        start = time.perf_counter()
        result = engine.run(trace)
        return time.perf_counter() - start, result, engine

    exact_wall, exact, _ = timed(False)
    streaming_wall, streaming, _ = timed(True)

    retained = {}
    records = {}
    for label, flag in (("exact", False), ("streaming", True)):
        tracemalloc.start()
        _, result, engine = timed(flag)
        retained[label], _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        records[label] = len(engine.metrics.records)
        del result, engine

    exact_summary, streaming_summary = exact.summary, streaming.summary
    counters_identical = all(
        getattr(streaming_summary, f) == getattr(exact_summary, f)
        for f in (
            "n_turns",
            "n_lookups",
            "hits_dram",
            "hits_disk",
            "hits_hbm",
            "misses",
            "fallbacks",
            "mean_ttft",
            "mean_queue_delay",
            "prompt_tokens_total",
            "reused_tokens_total",
            "prefill_gpu_time",
            "decode_gpu_time",
            "save_block_time",
            "makespan",
        )
    )
    p95_rel_err = (
        abs(streaming_summary.p95_ttft - exact_summary.p95_ttft)
        / exact_summary.p95_ttft
        if exact_summary.p95_ttft
        else 0.0
    )
    return {
        "exact_wall_s": round(exact_wall, 4),
        "streaming_wall_s": round(streaming_wall, 4),
        "streaming_events_per_s": round(streaming.events_processed / streaming_wall),
        "exact_retained_kb": round(retained["exact"] / 1024),
        "streaming_retained_kb": round(retained["streaming"] / 1024),
        "records_exact": records["exact"],
        "records_streaming": records["streaming"],
        "p95_ttft_exact": round(exact_summary.p95_ttft, 6),
        "p95_ttft_streaming": round(streaming_summary.p95_ttft, 6),
        "p95_rel_err": round(p95_rel_err, 6),
        "counters_identical": counters_identical,
    }


# Subprocess body for the isolated streamed-replay memory measurement:
# peak RSS (ru_maxrss) is process-lifetime-monotone, so measuring it
# inside the harness process would report whichever earlier section
# peaked highest.  Streaming metrics keep the collector O(1) too — the
# point is that *nothing* scales with total sessions.
_STREAM_RSS_SCRIPT = """\
import json, resource, sys, time
from repro.engine import ServingEngine
from repro.config import EngineConfig, HardwareConfig, StoreConfig
from repro.models import get_model
from repro.workload import stream_trace

n = int(sys.argv[1])
model = get_model(sys.argv[2])
engine = ServingEngine(
    model,
    hardware=HardwareConfig().for_model(model),
    engine_config=EngineConfig(batch_size=model.default_batch_size),
    store_config=StoreConfig(),
    streaming_metrics=True,
)
start = time.perf_counter()
result = engine.run(stream_trace(n_sessions=n, seed=42))
wall = time.perf_counter() - start
print(json.dumps({
    "wall_s": wall,
    "events": result.events_processed,
    "n_turns": result.summary.n_turns,
    "peak_live_sessions": engine._peak_live_sessions,
    "sessions_retained": len(engine.sessions),
    "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024,
}))
"""


def _stream_replay_subprocess(n_sessions: int) -> dict:
    """Run one streamed replay in a fresh process; return its self-report."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    out = subprocess.run(
        [sys.executable, "-c", _STREAM_RSS_SCRIPT, str(n_sessions), MODEL_NAME],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout)


def trace_modes_benchmark() -> dict:
    """Streamed vs materialised workload traces.

    Two claims, checked separately:

    * **Identity** — feeding ``stream_trace`` straight to the engine and
      materialising the same stream into a :class:`Trace` first produce
      bit-identical results (same events, same summary, same store
      stats); streaming changes memory behaviour, never the simulation.
    * **O(live-sessions) memory** — a streamed replay's peak RSS is set
      by the live-session high-water mark, not the trace length: a
      replay 4x the size must stay well under 4x the memory.  Both
      replays run in subprocesses so each peak is measured in isolation.
    """
    n_id = min(BENCH_SESSIONS, 800)
    streamed_engine = build_engine()
    start = time.perf_counter()
    streamed = streamed_engine.run(stream_trace(n_sessions=n_id, seed=42))
    streamed_wall = time.perf_counter() - start
    materialized_engine = build_engine()
    trace = Trace(conversations=list(stream_trace(n_sessions=n_id, seed=42)))
    start = time.perf_counter()
    materialized = materialized_engine.run(trace)
    materialized_wall = time.perf_counter() - start
    identical = (
        streamed.events_processed == materialized.events_processed
        and dataclasses.asdict(streamed.summary)
        == dataclasses.asdict(materialized.summary)
        and dataclasses.asdict(streamed_engine.store.stats)
        == dataclasses.asdict(materialized_engine.store.stats)
    )

    big = _stream_replay_subprocess(STREAM_SESSIONS)
    quarter = _stream_replay_subprocess(max(STREAM_SESSIONS // 4, 1))
    return {
        "identity_sessions": n_id,
        "bit_identical": identical,
        "streamed_wall_s": round(streamed_wall, 4),
        "materialized_wall_s": round(materialized_wall, 4),
        "streamed_peak_live_sessions": streamed_engine._peak_live_sessions,
        "streamed_sessions_retained": len(streamed_engine.sessions),
        "stream_sessions": STREAM_SESSIONS,
        "stream_events": big["events"],
        "stream_turns": big["n_turns"],
        "stream_wall_s": round(big["wall_s"], 4),
        "stream_events_per_s": round(big["events"] / big["wall_s"]),
        "stream_peak_live_sessions": big["peak_live_sessions"],
        "stream_sessions_retained": big["sessions_retained"],
        "stream_peak_rss_mb": round(big["peak_rss_mb"], 1),
        "quarter_sessions": max(STREAM_SESSIONS // 4, 1),
        "quarter_peak_rss_mb": round(quarter["peak_rss_mb"], 1),
        "quarter_peak_live_sessions": quarter["peak_live_sessions"],
    }


def _noop() -> None:
    pass


def _dispatch_pattern(mode: str, legacy: bool, n: int) -> float:
    """Events/s for one dispatch pattern on one simulation core.

    ``unique``: pre-scheduled events, every timestamp distinct (worst case
    for batching, every far-future event transits the overflow heap).
    ``shared8``: pre-scheduled, eight events per timestamp (the batched
    loop advances the clock and re-reads hooks once per eight events).
    ``steady``: one self-scheduling chain, queue length one (the pattern
    that collapses naive calendar-queue width heuristics).
    """
    sim = Simulator(legacy_core=legacy)
    if mode == "unique":
        for i in range(n):
            sim.at(i * 0.001, _noop)
    elif mode == "shared8":
        for i in range(n):
            sim.at((i // 8) * 0.001, _noop)
    else:  # steady
        state = [n]

        def chain() -> None:
            state[0] -= 1
            if state[0] > 0:
                sim.after(0.001, chain)

        sim.after(0.001, chain)
    start = time.perf_counter()
    sim.run()
    return n / (time.perf_counter() - start)


def scheduler_microbench() -> dict:
    """Calendar queue vs legacy heap: raw ops and end-to-end dispatch.

    Best-of-``SCHED_ROUNDS`` events/s for push+pop pairs and for mass
    cancellation on the bare queues, then for full ``Simulator.run``
    drains (batched loop + calendar queue vs legacy loop + heap) on the
    three canonical patterns.  These are *pathology guards* more than
    races: the structures are within small factors of each other on
    every pattern, and the asserts in :func:`test_perf_sim` hold each
    ratio above the cliff line (a bad width heuristic made ``steady``
    18x slower than the heap during development — exactly what this
    section exists to catch).
    """
    n = SCHED_EVENTS

    def push_pop(queue_cls) -> float:
        q = queue_cls()
        start = time.perf_counter()
        for i in range(n):
            q.push((i % 64) * 0.25, _noop)
        while q:
            q.pop()
        return n / (time.perf_counter() - start)

    def cancel(queue_cls) -> float:
        q = queue_cls()
        events = [q.push(float(i), _noop) for i in range(n)]
        start = time.perf_counter()
        for event in events:
            event.cancel()
        return n / (time.perf_counter() - start)

    out: dict = {"events": n, "rounds": SCHED_ROUNDS}
    for label, cls in (("calendar", EventQueue), ("legacy_heap", LegacyEventQueue)):
        out[label] = {
            "push_pop_events_per_s": round(
                max(push_pop(cls) for _ in range(SCHED_ROUNDS))
            ),
            "cancel_per_s": round(max(cancel(cls) for _ in range(SCHED_ROUNDS))),
        }
    for mode in ("unique", "shared8", "steady"):
        out[f"dispatch_{mode}"] = {
            "batched_events_per_s": round(
                max(_dispatch_pattern(mode, False, n) for _ in range(SCHED_ROUNDS))
            ),
            "legacy_events_per_s": round(
                max(_dispatch_pattern(mode, True, n) for _ in range(SCHED_ROUNDS))
            ),
        }
    return out


def profile_section() -> dict:
    """One profiled gate-size replay; full table written to PROFILE_OUT.

    CI uploads the text report as a build artifact so hot-path cost
    shifts are visible per-commit without rerunning anything locally.
    """
    trace = generate_trace(WorkloadSpec(n_sessions=GATE_SESSIONS, seed=42))
    engine = build_engine()
    profiler = EventLoopProfiler(sample_every=16)
    profiler.install(engine.sim)
    engine.run(trace)
    report = profiler.report()
    with open(PROFILE_OUT, "w") as fh:
        fh.write(report.format())
        fh.write("\n")
    # Continuation classes report as their type name (DecodeChunkDone,
    # NextTurnTimer, ...); any surviving closure would show a qualname
    # with "<locals>".  The epoch-guard share tracks what is left of the
    # pre-refactor hot spot (PRIOR_TOP_SHARE of estimated cost).
    epoch_guard_share = sum(
        row.share for row in report.rows if "_after_epoch" in row.name
    )
    return {
        "sessions": GATE_SESSIONS,
        "events": report.n_events,
        "events_per_s": round(report.events_per_s),
        "out_path": os.path.basename(PROFILE_OUT),
        "top_callbacks": [row.name for row in report.rows[:3]],
        "top_shares": {row.name: round(row.share, 4) for row in report.rows[:3]},
        "epoch_guard_share": round(epoch_guard_share, 4),
        "prior_top_callback": PRIOR_TOP_CALLBACK,
        "prior_top_share": PRIOR_TOP_SHARE,
    }


def gates_section() -> dict:
    """Baselines for ``bench_regression_gate.py`` (checked into
    BENCH_sim.json by the local harness run).

    The figure ratios and the replay hit rate are fully deterministic, so
    the gate holds them to tight absolute tolerances; ``events_per_s`` is
    host wall-clock, gated only as a generous fraction floor.
    """
    fig19 = load_benchmark_module("bench_fig19_preload")
    fig20 = load_benchmark_module("bench_fig20_asyncsave")
    no_pl, by_buffer, _perfect, _load, _compute = fig19.compute()
    reductions = [1 - asyn / sync for _, sync, asyn, _ in fig20.compute()]

    sharing = load_benchmark_module("bench_ext_sharing")
    capacity = sharing.capacity_sweep(sharing.GATE_N)
    share_ref = sharing.run_one(
        sharing.GATE_N, 0.5, sharing.REFERENCE_DRAM_GIB, sharing=True
    )

    trace = generate_trace(WorkloadSpec(n_sessions=GATE_SESSIONS, seed=42))
    start = time.perf_counter()
    result = build_engine().run(trace)
    wall = time.perf_counter() - start
    return {
        "sessions": GATE_SESSIONS,
        "fig19_r0": round(1 - by_buffer[0] / no_pl, 6),
        "fig19_r15": round(1 - by_buffer[15] / no_pl, 6),
        "fig20_reduction_min": round(min(reductions), 6),
        "fig20_reduction_max": round(max(reductions), 6),
        "hit_rate": round(result.summary.hit_rate, 6),
        "events": result.events_processed,
        "events_per_s": round(result.events_processed / wall),
        "sharing_sessions": sharing.GATE_N,
        "sharing_hit_rate": round(share_ref.hit_rate, 6),
        "sharing_capacity_ratio": round(capacity["capacity_ratio"], 6),
    }


def run_harness() -> dict:
    optimized_wall, optimized = best_of(REPLAY_ROUNDS)
    with legacy_hot_path():
        legacy_wall, legacy = best_of(REPLAY_ROUNDS)

    # Identical simulations modulo the last-ulp closed-form difference.
    assert optimized.events_processed == legacy.events_processed
    assert optimized.summary.n_turns == legacy.summary.n_turns
    assert abs(optimized.summary.mean_ttft - legacy.summary.mean_ttft) <= (
        1e-9 * legacy.summary.mean_ttft
    )

    model = get_model(MODEL_NAME)
    perf = PerfModel(model, HardwareConfig().for_model(model))
    layerwise_closed = micro(
        layerwise_prefill_time, model.n_layers, 0.35, 0.21, 15
    )
    layerwise_loop = micro(
        layerwise_prefill_time_reference, model.n_layers, 0.35, 0.21, 15
    )
    prefill_cached = micro(perf.prefill_time, 512, 2048)
    prefill_uncached = micro(perf._prefill_time, 512, 2048, 1)

    return {
        "model": MODEL_NAME,
        "sessions": BENCH_SESSIONS,
        "turns": optimized.summary.n_turns,
        "events": optimized.events_processed,
        "replay": {
            "optimized_wall_s": round(optimized_wall, 4),
            "legacy_wall_s": round(legacy_wall, 4),
            "speedup": round(legacy_wall / optimized_wall, 4),
            "events_per_s": round(optimized.events_processed / optimized_wall),
        },
        "layerwise_prefill_time": {
            "micro_calls": MICRO_CALLS,
            "closed_form_s": round(layerwise_closed, 4),
            "reference_loop_s": round(layerwise_loop, 4),
            "speedup": round(layerwise_loop / layerwise_closed, 2),
        },
        "perfmodel_prefill_time": {
            "micro_calls": MICRO_CALLS,
            "memoized_s": round(prefill_cached, 4),
            "unmemoized_s": round(prefill_uncached, 4),
            "speedup": round(prefill_uncached / prefill_cached, 2),
        },
        "scheduler": scheduler_microbench(),
        "profile": profile_section(),
        "sweep": sweep_benchmark(),
        "metrics_modes": metrics_modes_benchmark(),
        "trace_modes": trace_modes_benchmark(),
        "gates": gates_section(),
        "peak_rss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
        ),
    }


def write_report(payload: dict) -> None:
    with open(OUT_PATH, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def sweep_speedup_floor(sweep: dict) -> float:
    """The minimum acceptable parallel-sweep speedup on this host.

    Ideal is ``min(jobs, cpus)``; 75 % of that allows scheduling and
    spawn overhead.  A single-CPU host cannot go faster than serial at
    all — there the floor only rejects pathological overhead (> ~2x
    slower than serial).
    """
    override = os.environ.get("REPRO_PERF_SWEEP_FLOOR")
    if override is not None:
        return float(override)
    effective = min(sweep["jobs"], sweep["cpus"])
    # Single CPU: jobs serialise anyway and each spawned worker re-imports
    # the package, so "parallel" = serial + fixed startup overhead.  A
    # floor of 0.25 rejects only pathological (>4x) regressions there.
    return 0.75 * effective if effective > 1 else 0.25


def test_perf_sim():
    payload = run_harness()
    write_report(payload)
    print()
    print(json.dumps(payload, indent=2))
    # The isolated hot paths must be decisively faster; the whole-replay
    # wall-clock is recorded but only sanity-bounded (the event loop and
    # store dominate it, so its delta is small and machine-noisy).
    assert payload["layerwise_prefill_time"]["speedup"] > 2.0
    assert payload["perfmodel_prefill_time"]["speedup"] > 1.2
    assert payload["replay"]["speedup"] > 0.85
    # Scheduler pathology guards: the calendar queue trades a small
    # constant factor on heap-friendly patterns for same-timestamp
    # batching and bounded lazy deletion; what must never regress is a
    # *cliff* (a width-heuristic bug once made `steady` 18x slower than
    # the heap).  Floors are generous fractions, not photo finishes.
    sched = payload["scheduler"]
    for mode, floor in (("unique", 0.35), ("shared8", 0.6), ("steady", 0.35)):
        section = sched[f"dispatch_{mode}"]
        ratio = section["batched_events_per_s"] / section["legacy_events_per_s"]
        assert ratio >= floor, (mode, section)
    assert (
        sched["calendar"]["push_pop_events_per_s"]
        >= 0.3 * sched["legacy_heap"]["push_pop_events_per_s"]
    ), sched
    assert (
        sched["calendar"]["cancel_per_s"]
        >= 0.2 * sched["legacy_heap"]["cancel_per_s"]
    ), sched
    assert os.path.exists(PROFILE_OUT)
    # Parallel sweeps must change wall-clock only, never results.
    sweep = payload["sweep"]
    assert sweep["bit_identical"]
    assert sweep["speedup"] >= sweep_speedup_floor(sweep), sweep
    # Streaming metrics: exact counters, bounded p95 error, O(1) records.
    modes = payload["metrics_modes"]
    assert modes["counters_identical"]
    assert modes["p95_rel_err"] <= 0.02
    assert modes["records_streaming"] == 0 < modes["records_exact"]
    assert modes["streaming_retained_kb"] < modes["exact_retained_kb"]
    # Profile shape: the epoch-guard closure that used to dominate the
    # event loop (PRIOR_TOP_SHARE) must stay demoted — continuations are
    # dispatched as slotted instances and the guard is a field check.
    profile = payload["profile"]
    assert profile["epoch_guard_share"] < 0.40, profile
    assert all("<locals>" not in name for name in profile["top_callbacks"]), profile
    # Streamed traces: identical simulation, O(live-sessions) memory.
    # The 4x-size replay may grow a little (live-session high-water mark
    # rises with a longer arrival window, allocator slack) but nothing
    # like linearly; the floor catches any O(total-sessions) structure
    # creeping back into the streamed path.
    traces = payload["trace_modes"]
    assert traces["bit_identical"], traces
    assert traces["stream_sessions_retained"] == 0, traces
    assert traces["stream_peak_rss_mb"] <= (
        1.6 * traces["quarter_peak_rss_mb"] + 96
    ), traces
    # Optional CI guard rails (off when unset).
    events_floor = int(os.environ.get("REPRO_PERF_EVENTS_FLOOR", "0"))
    if events_floor:
        assert modes["streaming_events_per_s"] >= events_floor, modes
    rss_ceiling_mb = int(os.environ.get("REPRO_PERF_MAX_RSS_MB", "0"))
    if rss_ceiling_mb:
        assert payload["peak_rss_mb"] <= rss_ceiling_mb, payload["peak_rss_mb"]


if __name__ == "__main__":
    report = run_harness()
    write_report(report)
    print(json.dumps(report, indent=2))
