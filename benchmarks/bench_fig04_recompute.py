"""Figure 4: recomputation inefficiency of the RE baseline.

(a) historical vs new tokens per turn — the historical share exceeds 99 %
in later turns; (b) GPU prefill time for all tokens vs only the new tokens
(the paper uses Mistral-7B on one A100).
"""

from _shared import paper_trace

from repro.analysis import format_table, percent
from repro.config import HardwareConfig
from repro.hardware import PerfModel
from repro.models import get_model
from repro.workload import per_turn_token_stats, repetition_fraction


def compute():
    trace = paper_trace()
    stats = per_turn_token_stats(trace, max_turn=16)
    pm = PerfModel(get_model("mistral-7b"), HardwareConfig(num_gpus=1))
    rows = []
    for s in stats:
        full = pm.prefill_time(int(s.mean_history + s.mean_new))
        new_only = pm.prefill_time(int(s.mean_new), int(s.mean_history))
        rows.append((s, full, new_only))
    return rows, repetition_fraction(trace)


def test_fig04_recompute_inefficiency(benchmark):
    rows, repeated = benchmark(compute)
    print()
    table = [
        [
            s.turn_index + 1,
            f"{s.mean_history:.0f}",
            f"{s.mean_new:.0f}",
            percent(s.history_fraction),
            f"{full * 1e3:.1f}",
            f"{new_only * 1e3:.1f}",
        ]
        for s, full, new_only in rows
    ]
    print(
        format_table(
            ["turn", "hist tokens", "new tokens", "hist share",
             "prefill all (ms)", "prefill new (ms)"],
            table,
            title="Figure 4 — historical vs new tokens (Mistral-7B, 1 GPU)",
        )
    )
    print(f"\nworkload-wide repeated prefill share: {percent(repeated)} (paper: ~99% in late turns)")

    late = rows[-1][0]
    assert late.history_fraction > 0.9
    # Prefilling only new tokens is an order of magnitude cheaper by turn 8.
    s8, full8, new8 = rows[7]
    assert full8 > 5 * new8
