"""Shared infrastructure for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper.  The
end-to-end figures (13-17) analyse the *same* eight serving runs (four
models x {RE, CA}), so runs are computed once per pytest session and
cached here.

Scale is controlled by ``REPRO_BENCH_SESSIONS`` (default 9000 sessions, the
paper's workload; warm-up is scaled proportionally from the paper's 10K
turns).  Set it lower (e.g. 2000) for a quick pass — hit-rate *levels*
shift with scale, but every comparative shape survives.

Parallelism is controlled by ``--jobs N`` (pytest) or ``REPRO_BENCH_JOBS``:
independent serving runs fan out across spawn-based worker processes via
:mod:`repro.runner`, with results bit-identical to a serial pass (each run
is a pure function of its config; the runner only changes *where* it
executes).
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.config import (
    EngineConfig,
    EvictionPolicyName,
    HardwareConfig,
    ServingMode,
    StoreConfig,
    TruncationPolicyName,
)
from repro.engine import RunResult, ServingEngine
from repro.models import get_model
from repro.runner import SweepPoint, in_sweep_worker, run_sweep, unwrap
from repro.workload import WorkloadSpec, generate_trace

N_SESSIONS = int(os.environ.get("REPRO_BENCH_SESSIONS", "9000"))
#: The paper warms AttentionStore with the first 10K of its ~52K turns
#: (~19 %); scale the same fraction to the configured session count.
WARMUP_TURNS = int(N_SESSIONS * 5.75 * 10 / 52)
MODEL_CACHE_DIR = os.path.join(os.path.dirname(__file__), "..", ".model_cache")

EVAL_MODEL_NAMES = ("llama-13b", "llama-65b", "llama-70b", "falcon-40b")


def bench_jobs() -> int:
    """Worker processes for independent serving runs (1 = serial).

    Set by pytest's ``--jobs`` option (see ``benchmarks/conftest.py``) or
    the ``REPRO_BENCH_JOBS`` environment variable.  Inside a sweep worker
    this always reports 1 so nothing nests a second process pool.
    """
    if in_sweep_worker():
        return 1
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@lru_cache(maxsize=1)
def paper_trace():
    """The ShareGPT-like workload used by the end-to-end figures."""
    return generate_trace(WorkloadSpec(n_sessions=N_SESSIONS, seed=42))


def build_engine(
    model_name: str,
    mode: ServingMode = ServingMode.CACHED,
    store_config: StoreConfig | None = None,
    engine_overrides: dict | None = None,
) -> ServingEngine:
    model = get_model(model_name)
    overrides = dict(engine_overrides or {})
    overrides.setdefault("batch_size", model.default_batch_size)
    if mode is ServingMode.RECOMPUTE:
        config = EngineConfig.recompute_baseline(**overrides)
    else:
        config = EngineConfig(**overrides)
    return ServingEngine(
        model,
        hardware=HardwareConfig().for_model(model),
        engine_config=config,
        store_config=store_config,
        warmup_turns=WARMUP_TURNS,
    )


def _run_spec(params: dict) -> RunResult:
    """Execute one serving run described by a picklable spec dict."""
    engine = build_engine(
        params["model_name"],
        params["mode"],
        store_config=params.get("store_config"),
        engine_overrides=params.get("engine_overrides"),
    )
    return engine.run(paper_trace())


def _bench_worker(point: SweepPoint, seed: int) -> RunResult:
    """Spawn-safe sweep worker: rebuild the run from its spec.

    Serving runs are fully determined by their config (the trace seed is
    fixed), so the runner-derived ``seed`` is unused here — it exists for
    sweeps with stochastic per-point components (e.g. fault streams).
    """
    del seed
    return _run_spec(point.params)


def parallel_runs(
    specs: dict[str, dict], jobs: int | None = None
) -> dict[str, RunResult]:
    """Run several independent serving runs, fanned out across processes.

    ``specs`` maps a label to a spec dict (``model_name``, ``mode``, and
    optional ``store_config`` / ``engine_overrides``).  With ``jobs=1``
    (the default unless ``--jobs``/``REPRO_BENCH_JOBS`` says otherwise)
    everything runs inline — the bit-identical reference.  Any failed
    point raises with every failure named.
    """
    jobs = bench_jobs() if jobs is None else jobs
    points = [SweepPoint(key=label, params=spec) for label, spec in specs.items()]
    return unwrap(run_sweep(_bench_worker, points, jobs=jobs))


#: End-to-end runs already computed this process (figures 13-17 analyse
#: the same eight runs, so they are computed once and shared).
_RUN_CACHE: dict[tuple[str, ServingMode], RunResult] = {}


def end_to_end_run(model_name: str, mode: ServingMode) -> RunResult:
    """One end-to-end serving run at the paper's configuration (cached).

    On the first miss with ``--jobs`` > 1 the full eight-run grid (four
    evaluation models x {CA, RE}) is computed in one parallel sweep —
    every end-to-end figure needs all of them anyway — and the cache is
    primed from the results.
    """
    key = (model_name, mode)
    if key not in _RUN_CACHE:
        jobs = bench_jobs()
        if jobs > 1:
            missing = {
                f"{name}/{m.value}": dict(model_name=name, mode=m)
                for name in EVAL_MODEL_NAMES
                for m in (ServingMode.CACHED, ServingMode.RECOMPUTE)
                if (name, m) not in _RUN_CACHE
            }
            missing.setdefault(
                f"{model_name}/{mode.value}",
                dict(model_name=model_name, mode=mode),
            )
            for result in parallel_runs(missing, jobs=jobs).values():
                _RUN_CACHE[(result.model_name, result.mode)] = result
        else:
            _RUN_CACHE[key] = _run_spec(dict(model_name=model_name, mode=mode))
    return _RUN_CACHE[key]


def run_with_store(
    model_name: str,
    store_config: StoreConfig,
    engine_overrides: dict | None = None,
) -> RunResult:
    """A CA run with a custom AttentionStore configuration."""
    return _run_spec(
        dict(
            model_name=model_name,
            mode=ServingMode.CACHED,
            store_config=store_config,
            engine_overrides=engine_overrides,
        )
    )


def store_sweep(
    configs: dict, model_name: str = "llama-13b", jobs: int | None = None
) -> dict:
    """CA runs over a grid of store configs, in parallel when enabled.

    ``configs`` maps an arbitrary (hashable) label to a
    :class:`StoreConfig`; returns label -> :class:`RunResult`.  Labels are
    stringified for sweep keys, so distinct labels must stringify
    distinctly.
    """
    specs = {
        str(label): dict(
            model_name=model_name, mode=ServingMode.CACHED, store_config=config
        )
        for label, config in configs.items()
    }
    if len(specs) != len(configs):
        raise ValueError("store_sweep labels must stringify uniquely")
    by_key = parallel_runs(specs, jobs=jobs)
    return {label: by_key[str(label)] for label in configs}


def once(benchmark, fn, *args, **kwargs):
    """Run a heavy benchmark target exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
