"""Shared infrastructure for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper.  The
end-to-end figures (13-17) analyse the *same* eight serving runs (four
models x {RE, CA}), so runs are computed once per pytest session and
cached here.

Scale is controlled by ``REPRO_BENCH_SESSIONS`` (default 9000 sessions, the
paper's workload; warm-up is scaled proportionally from the paper's 10K
turns).  Set it lower (e.g. 2000) for a quick pass — hit-rate *levels*
shift with scale, but every comparative shape survives.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.config import (
    EngineConfig,
    EvictionPolicyName,
    HardwareConfig,
    ServingMode,
    StoreConfig,
    TruncationPolicyName,
)
from repro.engine import RunResult, ServingEngine
from repro.models import get_model
from repro.workload import WorkloadSpec, generate_trace

N_SESSIONS = int(os.environ.get("REPRO_BENCH_SESSIONS", "9000"))
#: The paper warms AttentionStore with the first 10K of its ~52K turns
#: (~19 %); scale the same fraction to the configured session count.
WARMUP_TURNS = int(N_SESSIONS * 5.75 * 10 / 52)
MODEL_CACHE_DIR = os.path.join(os.path.dirname(__file__), "..", ".model_cache")

EVAL_MODEL_NAMES = ("llama-13b", "llama-65b", "llama-70b", "falcon-40b")


@lru_cache(maxsize=1)
def paper_trace():
    """The ShareGPT-like workload used by the end-to-end figures."""
    return generate_trace(WorkloadSpec(n_sessions=N_SESSIONS, seed=42))


def build_engine(
    model_name: str,
    mode: ServingMode = ServingMode.CACHED,
    store_config: StoreConfig | None = None,
    engine_overrides: dict | None = None,
) -> ServingEngine:
    model = get_model(model_name)
    overrides = dict(engine_overrides or {})
    overrides.setdefault("batch_size", model.default_batch_size)
    if mode is ServingMode.RECOMPUTE:
        config = EngineConfig.recompute_baseline(**overrides)
    else:
        config = EngineConfig(**overrides)
    return ServingEngine(
        model,
        hardware=HardwareConfig().for_model(model),
        engine_config=config,
        store_config=store_config,
        warmup_turns=WARMUP_TURNS,
    )


@lru_cache(maxsize=None)
def end_to_end_run(model_name: str, mode: ServingMode) -> RunResult:
    """One end-to-end serving run at the paper's configuration (cached)."""
    engine = build_engine(model_name, mode)
    return engine.run(paper_trace())


def run_with_store(
    model_name: str,
    store_config: StoreConfig,
    engine_overrides: dict | None = None,
) -> RunResult:
    """A CA run with a custom AttentionStore configuration."""
    engine = build_engine(
        model_name,
        ServingMode.CACHED,
        store_config=store_config,
        engine_overrides=engine_overrides,
    )
    return engine.run(paper_trace())


def once(benchmark, fn, *args, **kwargs):
    """Run a heavy benchmark target exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
