"""Extension: graceful degradation of CachedAttention under storage faults.

Sweeps the fault rate (applied to both SSD transfer failures and KV-item
corruption) from 0 to 10 % and measures hit rate, reused tokens and TTFT
against the fault-free CA run and the RE (full recompute) envelope.  The
claim: faults degrade CA *smoothly towards* RE — every failed or corrupt
load falls back to recomputation, so throughput interpolates between the
two instead of collapsing — and at fault rate 0 the fault machinery is
bit-identical to a plain run.
"""

from _shared import N_SESSIONS, once

from repro.analysis import format_table
from repro.config import EngineConfig, HardwareConfig, ServingMode, StoreConfig
from repro.engine import ServingEngine
from repro.faults import FaultConfig
from repro.models import get_model
from repro.workload import WorkloadSpec, generate_trace

MODEL_NAME = "llama-13b"
FAULT_RATES = (0.0, 0.02, 0.05, 0.10)
BENCH_SESSIONS = min(N_SESSIONS, 1200)
WARMUP_TURNS = int(BENCH_SESSIONS * 5.75 * 10 / 52)


def fault_sweep_trace():
    return generate_trace(WorkloadSpec(n_sessions=BENCH_SESSIONS, seed=42))


def build_engine(mode: ServingMode, fault_config: FaultConfig | None = None):
    model = get_model(MODEL_NAME)
    if mode is ServingMode.RECOMPUTE:
        config = EngineConfig.recompute_baseline(batch_size=model.default_batch_size)
    else:
        config = EngineConfig(batch_size=model.default_batch_size)
    # DRAM sized well below the working set so the SSD tier (and therefore
    # the injected transfer faults) is actually exercised.
    store_config = StoreConfig(
        dram_bytes=60_000 * model.kv_bytes_per_token,
        ssd_bytes=2_000_000 * model.kv_bytes_per_token,
    )
    return ServingEngine(
        model,
        hardware=HardwareConfig().for_model(model),
        engine_config=config,
        store_config=store_config,
        warmup_turns=WARMUP_TURNS,
        fault_config=fault_config,
    )


def run_sweep():
    trace = fault_sweep_trace()
    rows = {}
    for rate in FAULT_RATES:
        fault_config = FaultConfig(
            seed=7, ssd_fault_rate=rate, corruption_rate=rate
        )
        engine = build_engine(ServingMode.CACHED, fault_config)
        rows[rate] = (engine.run(trace), engine.store.stats)
    re_result = build_engine(ServingMode.RECOMPUTE).run(trace)
    return rows, re_result


def test_ext_fault_degradation(benchmark):
    rows, re_result = once(benchmark, run_sweep)
    print()
    table_rows = []
    for rate, (result, stats) in rows.items():
        s = result.summary
        table_rows.append(
            [
                f"{rate:.0%}",
                f"{s.hit_rate:.3f}",
                f"{s.reused_tokens_total}",
                f"{s.mean_ttft * 1e3:.1f}",
                f"{stats.transfer_faults}",
                f"{stats.fallback_recomputes}",
            ]
        )
    table_rows.append(
        ["RE", "0.000", "0", f"{re_result.summary.mean_ttft * 1e3:.1f}", "-", "-"]
    )
    print(
        format_table(
            ["fault rate", "hit rate", "reused tokens", "mean TTFT (ms)",
             "ssd faults", "fallbacks"],
            table_rows,
            title="Extension — CA degradation under storage faults (vs RE)",
        )
    )

    summaries = {rate: result.summary for rate, (result, _) in rows.items()}
    # All turns are served at every fault rate: degradation, not failure.
    n_turns = {s.n_turns for s in summaries.values()}
    assert len(n_turns) == 1 and re_result.summary.n_turns in n_turns

    # Reuse decays smoothly as the fault rate rises (small tolerance for
    # scheduling noise), and TTFT moves the other way.
    rates = sorted(summaries)
    for lo, hi in zip(rates, rates[1:]):
        assert summaries[hi].hit_rate <= summaries[lo].hit_rate + 0.02
        assert summaries[hi].reused_tokens_total <= (
            summaries[lo].reused_tokens_total * 1.02
        )
        assert summaries[hi].mean_ttft >= summaries[lo].mean_ttft * 0.95

    # Faulty CA stays inside the CA..RE envelope: never better than clean
    # CA, never meaningfully worse than recomputing everything (the retry
    # attempts add a little SSD queueing on top).
    clean, worst = summaries[rates[0]], summaries[rates[-1]]
    assert worst.hit_rate < clean.hit_rate  # 10 % faults visibly degrade
    assert clean.mean_ttft <= worst.mean_ttft * 1.001
    assert worst.mean_ttft <= re_result.summary.mean_ttft * 1.10

    # Injected fault classes actually fired at every non-zero rate.
    for rate, (_, stats) in rows.items():
        if rate > 0:
            assert stats.corrupt_misses > 0
            assert stats.fallback_recomputes > 0
    _, zero_stats = rows[0.0]
    assert zero_stats.transfer_faults == zero_stats.corrupt_misses == 0
