"""Figure 25: impact of session arrival rates (LLaMA-13B, 128G/10T).

Paper: raising the arrival rate from 0.5/s to 2.0/s only nudges the hit
rate down (82 % -> 77 %), TTFT up (0.122 s -> 0.154 s), prefill throughput
down (858K/s -> 681K/s) and GPU time up (6.25 H -> 7.01 H): more distinct
sessions per unit time need more cache, but CachedAttention keeps working.
"""

from _shared import N_SESSIONS, WARMUP_TURNS, build_engine, once

from repro.analysis import format_table, percent
from repro.config import ServingMode
from repro.workload import WorkloadSpec, generate_trace

RATES = (0.5, 1.0, 1.5, 2.0)
MODEL = "llama-13b"


def run_sweep():
    results = {}
    for rate in RATES:
        trace = generate_trace(
            WorkloadSpec(n_sessions=N_SESSIONS, seed=42, arrival_rate=rate)
        )
        engine = build_engine(MODEL, ServingMode.CACHED)
        results[rate] = engine.run(trace)
    return results


def test_fig25_arrival_rates(benchmark):
    results = once(benchmark, run_sweep)
    print()
    rows = []
    for rate in RATES:
        s = results[rate].summary
        rows.append(
            [
                f"{rate:.1f}/s",
                percent(s.hit_rate),
                f"{s.mean_ttft:.3f}",
                f"{s.prefill_throughput:,.0f}",
                f"{s.gpu_time / 3600:.2f}",
            ]
        )
    print(
        format_table(
            ["arrival rate", "hit rate", "TTFT (s)", "prefill tok/s", "GPU (h)"],
            rows,
            title=(
                "Figure 25 — session arrival rates (LLaMA-13B, "
                f"{N_SESSIONS} sessions, warm-up {WARMUP_TURNS})"
            ),
        )
    )
    first = results[RATES[0]].summary
    last = results[RATES[-1]].summary
    # Shape: the impact is minimal — hit rate stays high across the sweep.
    assert last.hit_rate > 0.6
    assert last.hit_rate <= first.hit_rate + 0.03
    # TTFT stays in the same order of magnitude.
    assert last.mean_ttft < 3 * first.mean_ttft
