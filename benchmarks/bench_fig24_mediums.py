"""Figure 24: impact of caching storage mediums.

Some prior systems cache KV only in HBM (10 GB budget here, per the
paper); adding DRAM helps a little; AttentionStore's SSD tier is what
delivers the high hit rates (86/71/89/90 % in the paper) and the GPU-time
wins.
"""

from _shared import EVAL_MODEL_NAMES, end_to_end_run, once, parallel_runs

from repro.analysis import format_table, percent
from repro.config import ServingMode, StoreConfig
from repro.models import GiB, TiB

CONFIGS = {
    "HBM only": StoreConfig(hbm_cache_bytes=10 * GiB, dram_bytes=0, ssd_bytes=0),
    "HBM+DRAM": StoreConfig(hbm_cache_bytes=10 * GiB, dram_bytes=128 * GiB, ssd_bytes=0),
    "HBM+DRAM+SSD": StoreConfig(
        hbm_cache_bytes=10 * GiB, dram_bytes=128 * GiB, ssd_bytes=10 * TiB
    ),
}


def run_all():
    specs = {
        f"{name}|{label}": dict(
            model_name=name, mode=ServingMode.CACHED, store_config=store
        )
        for name in EVAL_MODEL_NAMES
        for label, store in CONFIGS.items()
    }
    by_key = parallel_runs(specs)  # honours --jobs / REPRO_BENCH_JOBS
    return {
        (name, label): by_key[f"{name}|{label}"]
        for name in EVAL_MODEL_NAMES
        for label in CONFIGS
    }


def test_fig24_storage_mediums(benchmark):
    results = once(benchmark, run_all)
    print()
    rows = []
    for name in EVAL_MODEL_NAMES:
        for label in CONFIGS:
            s = results[(name, label)].summary
            rows.append(
                [name, label, percent(s.hit_rate), f"{s.gpu_time / 3600:.2f}"]
            )
    print(
        format_table(
            ["model", "cache tiers", "hit rate", "GPU (h)"],
            rows,
            title="Figure 24 — caching storage mediums",
        )
    )
    clear_wins = 0
    for name in EVAL_MODEL_NAMES:
        hbm = results[(name, "HBM only")].summary
        dram = results[(name, "HBM+DRAM")].summary
        full = results[(name, "HBM+DRAM+SSD")].summary
        # Shape: a strict hit-rate ladder; HBM alone is nearly useless.
        assert hbm.hit_rate < 0.35, name
        assert hbm.hit_rate <= dram.hit_rate + 0.02, name
        assert dram.hit_rate < full.hit_rate, name
        # GPU time: the SSD tier wins for every model except (at most)
        # LLaMA-65B, whose 2.5 MB/token loads leave CA's GPU time within a
        # few percent of recompute in this calibration.
        assert full.gpu_time < hbm.gpu_time * 1.05, name
        if full.gpu_time < hbm.gpu_time:
            clear_wins += 1
    assert clear_wins >= 3
