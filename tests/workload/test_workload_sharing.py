"""Shared-prefix fields of the workload generator and trace schema.

The sharing knobs must be strictly additive: a share-free spec draws the
exact same trace as before the knobs existed (bit-identical RNG
consumption), serialises to the pre-sharing JSON schema, and the prefix
tokens ride on top of the drawn first-turn question length so the
non-prefix draws stay comparable across share ratios.
"""

import pytest

from repro.workload import (
    Conversation,
    Trace,
    Turn,
    WorkloadSpec,
    generate_trace,
    stream_trace,
)

SPEC = WorkloadSpec(
    n_sessions=200,
    seed=13,
    shared_prefix_fraction=0.5,
    shared_prefix_len=100,
    n_shared_prefixes=3,
)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(SPEC)


class TestGeneration:
    def test_fraction_of_sessions_carry_a_prefix(self, trace):
        shared = [c for c in trace if c.shared_prefix_tokens > 0]
        # Bernoulli(0.5) over 200 sessions: far from both extremes.
        assert 0.3 * len(trace) < len(shared) < 0.7 * len(trace)
        assert all(
            c.shared_prefix_tokens == SPEC.shared_prefix_len for c in shared
        )

    def test_prefix_ids_span_the_template_pool(self, trace):
        ids = {c.shared_prefix_id for c in trace if c.shared_prefix_tokens}
        assert ids <= set(range(SPEC.n_shared_prefixes))
        assert len(ids) == SPEC.n_shared_prefixes

    def test_prefix_rides_on_turn_zero_question(self, trace):
        """Prefix tokens are added on top of the drawn q length, so turn
        0's question always exceeds the prefix (the engine needs at least
        one private token after the shared block)."""
        for c in trace:
            if c.shared_prefix_tokens:
                assert c.turns[0].q_tokens > c.shared_prefix_tokens

    def test_non_prefix_draws_unchanged_by_sharing(self, trace):
        """Same seed, sharing off: every conversation matches modulo the
        prefix bolted onto turn 0 — the knob never perturbs base draws."""
        from dataclasses import replace

        plain = generate_trace(
            replace(
                SPEC,
                shared_prefix_fraction=0.0,
                shared_prefix_len=0,
                n_shared_prefixes=1,
            )
        )
        assert len(plain) == len(trace)
        for a, b in zip(plain, trace):
            assert a.arrival_time == b.arrival_time
            assert a.n_turns == b.n_turns
            assert a.turns[0].q_tokens == (
                b.turns[0].q_tokens - b.shared_prefix_tokens
            )
            assert a.turns[1:] == b.turns[1:]

    def test_metadata_records_sharing_knobs(self, trace):
        assert trace.metadata["shared_prefix_fraction"] == 0.5
        assert trace.metadata["shared_prefix_len"] == 100
        assert trace.metadata["n_shared_prefixes"] == 3

    def test_share_free_trace_bit_identical_to_pre_knob(self):
        """fraction=0 consumes no RNG: identical object graph AND
        identical serialised bytes to a spec that never mentions
        sharing."""
        with_knob = generate_trace(
            WorkloadSpec(n_sessions=80, seed=4, shared_prefix_fraction=0.0)
        )
        without = generate_trace(WorkloadSpec(n_sessions=80, seed=4))
        assert with_knob.conversations == without.conversations
        assert with_knob.to_json() == without.to_json()
        assert "shared_prefix_fraction" not in with_knob.metadata


class TestSerialisation:
    def test_round_trip_preserves_prefix_fields(self, trace):
        back = Trace.from_json(trace.to_json())
        assert back.conversations == trace.conversations
        assert back.metadata == trace.metadata

    def test_share_free_json_omits_prefix_key(self):
        plain = generate_trace(WorkloadSpec(n_sessions=20, seed=2))
        assert "shared_prefix" not in plain.to_json()

    def test_prefix_key_only_on_prefix_sessions(self, trace):
        import json

        payload = json.loads(trace.to_json())
        by_id = {c.session_id: c for c in trace}
        for entry in payload["conversations"]:
            conv = by_id[entry["session_id"]]
            if conv.shared_prefix_tokens:
                assert entry["shared_prefix"] == [
                    conv.shared_prefix_id,
                    conv.shared_prefix_tokens,
                ]
            else:
                assert "shared_prefix" not in entry

    def test_prefix_must_leave_private_tokens(self):
        with pytest.raises(ValueError, match="shared_prefix_tokens"):
            Conversation(
                session_id=0,
                arrival_time=0.0,
                turns=(Turn(q_tokens=50, a_tokens=10, think_time=0.0),),
                shared_prefix_id=0,
                shared_prefix_tokens=50,
            )


class TestStreaming:
    def test_stream_draws_prefixes_like_the_generator(self):
        """Streamed draws carry the same prefix schema as generate_trace:
        the spec'd fraction (within Bernoulli noise), the spec'd length,
        ids from the template pool, and prefix tokens on turn 0 only."""
        streamed = list(stream_trace(SPEC, block_sessions=64))
        shared = [c for c in streamed if c.shared_prefix_tokens > 0]
        assert 0.3 * len(streamed) < len(shared) < 0.7 * len(streamed)
        for c in shared:
            assert c.shared_prefix_tokens == SPEC.shared_prefix_len
            assert 0 <= c.shared_prefix_id < SPEC.n_shared_prefixes
            assert c.turns[0].q_tokens > c.shared_prefix_tokens

    def test_prefix_stable_across_stream_lengths(self):
        """Prefix assignment is per-session stable: a short stream is a
        prefix of a longer one, shared flags and template ids included."""
        from dataclasses import replace

        short = list(
            stream_trace(replace(SPEC, n_sessions=90), block_sessions=32)
        )
        long_ = list(
            stream_trace(replace(SPEC, n_sessions=180), block_sessions=32)
        )
        assert short == long_[:90]
        assert any(c.shared_prefix_tokens for c in short)
