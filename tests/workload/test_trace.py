"""Tests for the conversation trace data model."""

import json

import pytest

from repro.workload.trace import Conversation, Trace, Turn, merge_traces


def conv(session_id=0, arrival=0.0, turns=((10, 20, 0.0), (5, 8, 3.0))):
    return Conversation(
        session_id=session_id,
        arrival_time=arrival,
        turns=tuple(Turn(q, a, t) for q, a, t in turns),
    )


class TestTurn:
    def test_total_tokens(self):
        assert Turn(10, 20).total_tokens == 30

    def test_rejects_zero_question(self):
        with pytest.raises(ValueError, match="q_tokens"):
            Turn(0, 5)

    def test_rejects_zero_answer(self):
        with pytest.raises(ValueError, match="a_tokens"):
            Turn(5, 0)

    def test_rejects_negative_think_time(self):
        with pytest.raises(ValueError, match="think_time"):
            Turn(5, 5, -1.0)

    def test_default_think_time_is_zero(self):
        assert Turn(1, 1).think_time == 0.0


class TestConversation:
    def test_counts(self):
        c = conv()
        assert c.n_turns == 2
        assert c.is_multi_turn
        assert c.total_tokens == 43

    def test_single_turn_not_multi(self):
        c = conv(turns=((10, 20, 0.0),))
        assert not c.is_multi_turn

    def test_history_before_first_turn_is_zero(self):
        assert conv().history_tokens_before(0) == 0

    def test_history_accumulates(self):
        assert conv().history_tokens_before(1) == 30

    def test_history_out_of_range(self):
        with pytest.raises(IndexError):
            conv().history_tokens_before(2)

    def test_rejects_empty_turns(self):
        with pytest.raises(ValueError, match="at least one turn"):
            Conversation(session_id=0, arrival_time=0.0, turns=())

    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError, match="arrival_time"):
            conv(arrival=-1.0)


class TestTrace:
    def test_sorted_by_arrival(self):
        t = Trace(conversations=[conv(1, 5.0), conv(0, 2.0)])
        assert [c.session_id for c in t] == [0, 1]

    def test_rejects_duplicate_session_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            Trace(conversations=[conv(0), conv(0, 1.0)])

    def test_totals(self):
        t = Trace(conversations=[conv(0), conv(1, 1.0)])
        assert t.n_turns_total == 4
        assert t.n_tokens_total == 86

    def test_json_roundtrip(self):
        t = Trace(conversations=[conv(0), conv(1, 1.0)], metadata={"seed": 1})
        restored = Trace.from_json(t.to_json())
        assert len(restored) == 2
        assert restored.metadata == {"seed": 1}
        assert restored.conversations[0].turns == t.conversations[0].turns

    def test_json_is_valid_json(self):
        payload = json.loads(Trace(conversations=[conv(0)]).to_json())
        assert "conversations" in payload

    def test_save_load(self, tmp_path):
        t = Trace(conversations=[conv(0)])
        path = tmp_path / "trace.json"
        t.save(path)
        assert len(Trace.load(path)) == 1


class TestMergeTraces:
    def test_renumbers_sessions(self):
        a = Trace(conversations=[conv(0)])
        b = Trace(conversations=[conv(0, 1.0)])
        merged = merge_traces([a, b])
        assert sorted(c.session_id for c in merged) == [0, 1]

    def test_preserves_turn_data(self):
        a = Trace(conversations=[conv(0)])
        merged = merge_traces([a])
        assert merged.conversations[0].total_tokens == 43

    def test_empty_merge(self):
        assert len(merge_traces([])) == 0
