"""Tests for the session arrival processes."""

import numpy as np
import pytest

from repro.workload import (
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    generate_trace,
    make_arrival_process,
)


def rng():
    return np.random.default_rng(0)


class TestPoissonArrivals:
    def test_monotone_increasing(self):
        times = PoissonArrivals(rate=2.0).sample(500, rng())
        assert np.all(np.diff(times) > 0)

    def test_mean_rate(self):
        times = PoissonArrivals(rate=2.0).sample(20_000, rng())
        measured = len(times) / times[-1]
        assert measured == pytest.approx(2.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(rate=1.0).sample(0, rng())


class TestMMPPArrivals:
    def test_monotone_increasing(self):
        times = MMPPArrivals(rate=1.0).sample(2000, rng())
        assert np.all(np.diff(times) > 0)

    def test_mean_rate_preserved(self):
        # Short state residencies give enough quiet/burst cycles for the
        # long-run average to stabilise.
        proc = MMPPArrivals(
            rate=1.0, burst_factor=4.0, mean_quiet=30.0, mean_burst=6.0
        )
        times = proc.sample(30_000, rng())
        measured = len(times) / times[-1]
        assert measured == pytest.approx(1.0, rel=0.1)

    def test_burstier_than_poisson(self):
        """Inter-arrival coefficient of variation exceeds Poisson's 1."""
        times = MMPPArrivals(
            rate=1.0, burst_factor=6.0, mean_quiet=200.0, mean_burst=50.0
        ).sample(30_000, rng())
        gaps = np.diff(times)
        cv = gaps.std() / gaps.mean()
        assert cv > 1.1

    def test_state_rates_bracket_mean(self):
        proc = MMPPArrivals(rate=1.0, burst_factor=4.0)
        quiet, burst = proc._state_rates()
        assert quiet < 1.0 < burst
        assert burst == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MMPPArrivals(burst_factor=1.0)
        with pytest.raises(ValueError):
            MMPPArrivals(mean_quiet=0.0)


class TestDiurnalArrivals:
    def test_monotone_increasing(self):
        times = DiurnalArrivals(rate=1.0, period=600.0).sample(2000, rng())
        assert np.all(np.diff(times) > 0)

    def test_mean_rate_preserved(self):
        times = DiurnalArrivals(rate=1.0, period=600.0, depth=0.6).sample(
            30_000, rng()
        )
        measured = len(times) / times[-1]
        assert measured == pytest.approx(1.0, rel=0.1)

    def test_rate_modulation_visible(self):
        """Arrivals concentrate in the sine peaks."""
        period = 1000.0
        times = DiurnalArrivals(rate=1.0, period=period, depth=0.9).sample(
            20_000, rng()
        )
        phase = (times % period) / period
        peak = np.mean((phase > 0.05) & (phase < 0.45))  # sin > 0 region
        trough = np.mean((phase > 0.55) & (phase < 0.95))
        assert peak > 1.5 * trough

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(depth=1.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(period=0.0)


class TestFactoryAndIntegration:
    @pytest.mark.parametrize("name", ["poisson", "mmpp", "diurnal"])
    def test_factory(self, name):
        proc = make_arrival_process(name, rate=2.0)
        assert proc.sample(10, rng()).shape == (10,)

    def test_factory_unknown(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            make_arrival_process("pareto", rate=1.0)

    def test_generate_trace_with_custom_process(self):
        trace = generate_trace(
            n_sessions=40, seed=3, arrival_process=MMPPArrivals(rate=2.0)
        )
        assert len(trace) == 40
        assert trace.metadata["arrival_process"] == "MMPPArrivals"

    def test_default_process_is_poisson(self):
        trace = generate_trace(n_sessions=10, seed=3)
        assert trace.metadata["arrival_process"] == "PoissonArrivals"

    def test_engine_runs_bursty_workload(self):
        from repro.config import EngineConfig
        from repro.engine import ServingEngine
        from repro.models import get_model

        trace = generate_trace(
            n_sessions=30,
            seed=5,
            arrival_process=MMPPArrivals(rate=2.0, burst_factor=5.0),
        )
        engine = ServingEngine(
            get_model("llama-13b"), engine_config=EngineConfig(batch_size=4)
        )
        result = engine.run(trace)
        assert result.summary.n_turns == trace.n_turns_total
