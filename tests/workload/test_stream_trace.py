"""Streaming trace generation and the engine's streamed-arrival path."""

import dataclasses

import pytest

from repro.config import EngineConfig
from repro.engine import ServingEngine
from repro.models import get_model
from repro.workload import Conversation, Trace, Turn, stream_trace


def build_engine() -> ServingEngine:
    return ServingEngine(
        get_model("llama-13b"), engine_config=EngineConfig(batch_size=8)
    )


class TestStreamGeneration:
    def test_prefix_stable_across_n_sessions(self):
        """A short stream is conversation-for-conversation a prefix of a
        longer one with the same seed, across block boundaries."""
        short = list(stream_trace(n_sessions=700, seed=5, block_sessions=256))
        long_ = list(stream_trace(n_sessions=1500, seed=5, block_sessions=256))
        assert short == long_[:700]

    def test_arrivals_monotone_and_ids_sequential(self):
        convs = list(stream_trace(n_sessions=900, seed=3, block_sessions=128))
        times = [c.arrival_time for c in convs]
        assert all(a <= b for a, b in zip(times, times[1:]))
        assert [c.session_id for c in convs] == list(range(900))

    def test_materialises_into_a_valid_trace(self):
        trace = Trace(conversations=list(stream_trace(n_sessions=50, seed=9)))
        assert len(trace) == 50
        assert trace.n_turns_total >= 50

    def test_block_sessions_must_be_positive(self):
        with pytest.raises(ValueError, match="block_sessions"):
            next(stream_trace(n_sessions=10, seed=1, block_sessions=0))

    def test_same_distributions_as_generate_trace(self):
        """Streamed draws obey the spec's clipping bounds (same helpers
        as generate_trace, so the hard bounds transfer exactly)."""
        from repro.workload import WorkloadSpec

        spec = WorkloadSpec(n_sessions=400, seed=21)
        for conv in stream_trace(spec):
            assert 1 <= conv.n_turns <= spec.max_turns
            for turn in conv.turns:
                assert spec.q_tokens.minimum <= turn.q_tokens <= spec.q_tokens.maximum
                assert spec.a_tokens.minimum <= turn.a_tokens <= spec.a_tokens.maximum


class TestEngineStreamedReplay:
    def test_streamed_replay_bit_identical_to_materialized(self):
        streamed_engine = build_engine()
        streamed = streamed_engine.run(stream_trace(n_sessions=300, seed=4))
        materialized_engine = build_engine()
        trace = Trace(conversations=list(stream_trace(n_sessions=300, seed=4)))
        materialized = materialized_engine.run(trace)
        assert streamed.events_processed == materialized.events_processed
        assert dataclasses.asdict(streamed.summary) == dataclasses.asdict(
            materialized.summary
        )
        assert dataclasses.asdict(streamed_engine.store.stats) == dataclasses.asdict(
            materialized_engine.store.stats
        )

    def test_streamed_replay_drops_finished_sessions(self):
        engine = build_engine()
        engine.run(stream_trace(n_sessions=300, seed=4))
        assert len(engine.sessions) == 0
        assert 0 < engine._peak_live_sessions < 300

    def test_materialized_replay_keeps_sessions(self):
        """The non-streamed path is unchanged: sessions stay queryable."""
        engine = build_engine()
        trace = Trace(conversations=list(stream_trace(n_sessions=50, seed=4)))
        engine.run(trace)
        assert len(engine.sessions) == 50

    def test_out_of_order_stream_rejected(self):
        turns = (Turn(q_tokens=10, a_tokens=10),)
        convs = [
            Conversation(session_id=0, arrival_time=5.0, turns=turns),
            Conversation(session_id=1, arrival_time=1.0, turns=turns),
        ]
        engine = build_engine()
        with pytest.raises(ValueError, match="arrival-ordered"):
            engine.run(iter(convs))

    def test_empty_stream_rejected(self):
        engine = build_engine()
        with pytest.raises(ValueError, match="empty"):
            engine.run(iter(()))

    def test_single_conversation_stream(self):
        turns = (Turn(q_tokens=64, a_tokens=32), Turn(q_tokens=16, a_tokens=16, think_time=3.0))
        conv = Conversation(session_id=0, arrival_time=0.0, turns=turns)
        engine = build_engine()
        result = engine.run(iter([conv]))
        assert result.summary.n_turns == 2
        assert len(engine.sessions) == 0
