"""Tests for workload specification and synthetic trace generation."""

import math

import numpy as np
import pytest

from repro.workload import (
    LognormalSpec,
    WorkloadSpec,
    fraction_multi_turn,
    generate_trace,
    mean_turns,
    session_length_survival,
)


class TestLognormalSpec:
    def test_mean(self):
        spec = LognormalSpec(mu=0.0, sigma=1.0)
        assert spec.mean == pytest.approx(math.exp(0.5))

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError, match="sigma"):
            LognormalSpec(mu=0.0, sigma=0.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError, match="maximum"):
            LognormalSpec(mu=0.0, sigma=1.0, minimum=10, maximum=5)


class TestWorkloadSpec:
    def test_defaults_match_paper(self):
        spec = WorkloadSpec()
        assert spec.p_multi_turn == 0.73
        assert spec.mean_turns == 5.75
        assert spec.arrival_rate == 1.0

    def test_multi_turn_mean_consistency(self):
        spec = WorkloadSpec()
        # E[turns] = (1-p)*1 + p*m must recover the configured mean.
        recovered = (
            (1 - spec.p_multi_turn) + spec.p_multi_turn * spec.multi_turn_mean
        )
        assert recovered == pytest.approx(spec.mean_turns)

    def test_geometric_p_in_unit_interval(self):
        spec = WorkloadSpec()
        assert 0.0 < spec.geometric_p <= 1.0

    def test_rejects_bad_arrival_rate(self):
        with pytest.raises(ValueError, match="arrival_rate"):
            WorkloadSpec(arrival_rate=0.0)

    def test_rejects_bad_p_multi(self):
        with pytest.raises(ValueError, match="p_multi_turn"):
            WorkloadSpec(p_multi_turn=1.5)

    def test_rejects_tiny_mean_turns(self):
        with pytest.raises(ValueError):
            WorkloadSpec(mean_turns=1.0)

    def test_think_time_mu_recovers_mean(self):
        spec = WorkloadSpec(think_time_mean=60.0, think_time_sigma=0.8)
        implied = math.exp(spec.think_time_mu + spec.think_time_sigma**2 / 2)
        assert implied == pytest.approx(60.0)


class TestGenerator:
    def test_session_count(self):
        assert len(generate_trace(n_sessions=25, seed=3)) == 25

    def test_deterministic_for_seed(self):
        a = generate_trace(n_sessions=30, seed=5)
        b = generate_trace(n_sessions=30, seed=5)
        assert a.to_json() == b.to_json()

    def test_different_seeds_differ(self):
        a = generate_trace(n_sessions=30, seed=5)
        b = generate_trace(n_sessions=30, seed=6)
        assert a.to_json() != b.to_json()

    def test_arrivals_increase(self):
        trace = generate_trace(n_sessions=50, seed=1)
        arrivals = [c.arrival_time for c in trace]
        assert arrivals == sorted(arrivals)

    def test_first_turn_has_no_think_time(self):
        trace = generate_trace(n_sessions=50, seed=1)
        assert all(c.turns[0].think_time == 0.0 for c in trace)

    def test_later_turns_have_think_time(self):
        trace = generate_trace(n_sessions=50, seed=1)
        laters = [t.think_time for c in trace for t in c.turns[1:]]
        assert laters and all(t > 0 for t in laters)

    def test_turn_cap_respected(self):
        trace = generate_trace(n_sessions=300, seed=2, max_turns=10)
        assert max(c.n_turns for c in trace) <= 10

    def test_token_bounds_respected(self):
        spec = WorkloadSpec(n_sessions=100, seed=4)
        trace = generate_trace(spec)
        for conv in trace:
            for turn in conv.turns:
                assert spec.q_tokens.minimum <= turn.q_tokens <= spec.q_tokens.maximum
                assert spec.a_tokens.minimum <= turn.a_tokens <= spec.a_tokens.maximum

    def test_marginals_match_paper_statistics(self):
        """The paper's ShareGPT marginals (Section 2.3 / Figure 2)."""
        trace = generate_trace(n_sessions=4000, seed=11)
        assert fraction_multi_turn(trace) == pytest.approx(0.73, abs=0.03)
        assert mean_turns(trace) == pytest.approx(5.75, abs=0.35)
        survival = session_length_survival(trace, [2048, 4096])
        assert survival[2048] == pytest.approx(0.47, abs=0.06)
        assert survival[4096] == pytest.approx(0.30, abs=0.06)

    def test_poisson_arrival_rate(self):
        trace = generate_trace(n_sessions=4000, seed=11, arrival_rate=2.0)
        span = trace.conversations[-1].arrival_time
        assert 4000 / span == pytest.approx(2.0, rel=0.1)
