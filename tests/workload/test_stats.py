"""Tests for workload statistics (Figures 2 and 4a)."""

import pytest

from repro.workload import (
    fraction_multi_turn,
    generate_trace,
    mean_turns,
    per_turn_token_stats,
    repetition_fraction,
    session_length_percentiles,
    session_length_survival,
    turn_count_histogram,
)
from repro.workload.trace import Conversation, Trace, Turn


def fixed_trace():
    """Two conversations with hand-computable statistics."""
    return Trace(
        conversations=[
            Conversation(0, 0.0, (Turn(10, 10), Turn(10, 10, 1.0))),
            Conversation(1, 1.0, (Turn(100, 100),)),
        ]
    )


class TestBasicStats:
    def test_turn_count_histogram(self):
        assert turn_count_histogram(fixed_trace()) == {1: 1, 2: 1}

    def test_fraction_multi_turn(self):
        assert fraction_multi_turn(fixed_trace()) == 0.5

    def test_mean_turns(self):
        assert mean_turns(fixed_trace()) == 1.5

    def test_survival(self):
        # Session 0 totals 40 tokens, session 1 totals 200.
        s = session_length_survival(fixed_trace(), [50, 150, 300])
        assert s[50] == 0.5
        assert s[150] == 0.5
        assert s[300] == 0.0

    def test_percentiles_monotone(self):
        p = session_length_percentiles(fixed_trace(), [10.0, 90.0])
        assert p[10.0] <= p[90.0]

    def test_empty_trace_raises(self):
        with pytest.raises(ValueError):
            fraction_multi_turn(Trace())
        with pytest.raises(ValueError):
            mean_turns(Trace())
        with pytest.raises(ValueError):
            session_length_survival(Trace(), [10])


class TestPerTurnStats:
    def test_first_turn_has_no_history(self):
        stats = per_turn_token_stats(fixed_trace())
        assert stats[0].turn_index == 0
        assert stats[0].mean_history == 0.0
        assert stats[0].history_fraction == 0.0

    def test_second_turn_history(self):
        stats = per_turn_token_stats(fixed_trace())
        # Only session 0 has a second turn: history = 20 tokens, new q = 10.
        assert stats[1].mean_history == 20.0
        assert stats[1].mean_new == 10.0
        assert stats[1].history_fraction == pytest.approx(20 / 30)

    def test_observation_counts(self):
        stats = per_turn_token_stats(fixed_trace())
        assert stats[0].n_observations == 2
        assert stats[1].n_observations == 1

    def test_history_fraction_grows_with_turns(self):
        """Figure 4a: historical share approaches 1 in later turns."""
        trace = generate_trace(n_sessions=2000, seed=3)
        stats = per_turn_token_stats(trace, max_turn=12)
        fractions = [s.history_fraction for s in stats]
        assert fractions[0] == 0.0
        assert fractions[3] > 0.8
        assert fractions[-1] > 0.9
        # Monotone over the well-populated early turns (later turns are a
        # shrinking, survivor-biased subsample).
        early = fractions[:6]
        assert early == sorted(early)


class TestRepetitionFraction:
    def test_hand_computed(self):
        # Session 0 turn 2 prefills 20 repeated + 10 new; turn 1 and the
        # single-turn session have no repeats.
        # repeated = 20, total = 10 + 30 + 100 = 140.
        assert repetition_fraction(fixed_trace()) == pytest.approx(20 / 140)

    def test_realistic_trace_mostly_repetition(self):
        """Section 2.3: up to 99 % of prefill is repeated computation."""
        trace = generate_trace(n_sessions=2000, seed=3)
        assert repetition_fraction(trace) > 0.90

    def test_single_turn_only_trace_has_no_repetition(self):
        trace = Trace(
            conversations=[Conversation(0, 0.0, (Turn(5, 5),))]
        )
        assert repetition_fraction(trace) == 0.0
