"""Config objects reject nonsensical values at construction (satellite of
the fault-injection PR: bad configs should fail fast, not corrupt a run)."""

import pytest

from repro.config import (
    EngineConfig,
    GPUSpec,
    HardwareConfig,
    StoreConfig,
)


class TestGPUSpec:
    def test_defaults_valid(self):
        GPUSpec()

    @pytest.mark.parametrize("attr", ["peak_flops", "hbm_bytes", "hbm_bandwidth"])
    def test_capabilities_must_be_positive(self, attr):
        with pytest.raises(ValueError):
            GPUSpec(**{attr: 0})
        with pytest.raises(ValueError):
            GPUSpec(**{attr: -1})

    @pytest.mark.parametrize("attr", ["mfu", "mbu"])
    def test_utilisations_are_fractions(self, attr):
        with pytest.raises(ValueError):
            GPUSpec(**{attr: 0.0})
        with pytest.raises(ValueError):
            GPUSpec(**{attr: 1.5})
        GPUSpec(**{attr: 1.0})  # boundary is inclusive


class TestHardwareConfig:
    def test_defaults_valid(self):
        HardwareConfig()

    def test_num_gpus_positive(self):
        with pytest.raises(ValueError):
            HardwareConfig(num_gpus=0)

    @pytest.mark.parametrize("attr", ["pcie_bandwidth", "ssd_bandwidth"])
    def test_bandwidths_positive(self, attr):
        with pytest.raises(ValueError):
            HardwareConfig(**{attr: 0.0})

    @pytest.mark.parametrize("attr", ["dram_bytes", "ssd_bytes"])
    def test_capacities_non_negative(self, attr):
        with pytest.raises(ValueError):
            HardwareConfig(**{attr: -1})
        HardwareConfig(**{attr: 0})  # zero-sized tiers are allowed


class TestStoreConfig:
    def test_defaults_valid(self):
        StoreConfig()

    def test_block_bytes_positive(self):
        with pytest.raises(ValueError):
            StoreConfig(block_bytes=0)

    @pytest.mark.parametrize("attr", ["dram_bytes", "ssd_bytes", "hbm_cache_bytes"])
    def test_capacities_non_negative(self, attr):
        with pytest.raises(ValueError):
            StoreConfig(**{attr: -1})

    def test_ttl_positive_or_none(self):
        with pytest.raises(ValueError):
            StoreConfig(ttl_seconds=0.0)
        StoreConfig(ttl_seconds=None)

    def test_fractions_bounded(self):
        with pytest.raises(ValueError):
            StoreConfig(dram_buffer_fraction=1.0)
        with pytest.raises(ValueError):
            StoreConfig(dram_buffer_fraction=-0.1)
        with pytest.raises(ValueError):
            StoreConfig(prefetch_capacity_fraction=0.0)
        with pytest.raises(ValueError):
            StoreConfig(prefetch_capacity_fraction=1.1)


class TestEngineConfig:
    def test_defaults_valid(self):
        EngineConfig()

    def test_batch_size_positive(self):
        with pytest.raises(ValueError):
            EngineConfig(batch_size=0)

    def test_truncation_ratio_open_interval(self):
        with pytest.raises(ValueError):
            EngineConfig(truncation_ratio=0.0)
        with pytest.raises(ValueError):
            EngineConfig(truncation_ratio=1.0)

    def test_buffer_layers_non_negative(self):
        with pytest.raises(ValueError):
            EngineConfig(read_buffer_layers=-1)
        with pytest.raises(ValueError):
            EngineConfig(write_buffer_layers=-1)

    def test_chunked_prefill_tokens(self):
        with pytest.raises(ValueError):
            EngineConfig(chunked_prefill_tokens=0)
        EngineConfig(chunked_prefill_tokens=None)

    def test_decode_chunk_iters_positive(self):
        with pytest.raises(ValueError):
            EngineConfig(decode_chunk_iters=0)

    def test_prefill_efficiency_factor_bounded(self):
        with pytest.raises(ValueError):
            EngineConfig(prefill_efficiency_factor=0.0)
        with pytest.raises(ValueError):
            EngineConfig(prefill_efficiency_factor=1.5)
