"""Tests for cost, capacity and report helpers."""

import pytest

from repro.analysis import (
    AWS_PRICES,
    CostBreakdown,
    PriceSheet,
    capacity_plan,
    ccps_bytes,
    cost_saving,
    distinct_sessions_per_unit_time,
    format_table,
    percent,
    run_cost,
    speedup,
)
from repro.analysis.capacity import CapacityPlan
from repro.config import EngineConfig, HardwareConfig, ServingMode, StoreConfig
from repro.engine import ServingEngine
from repro.models import GiB, get_model
from repro.workload import generate_trace
from repro.workload.trace import Conversation, Trace, Turn


class TestPriceSheet:
    def test_aws_defaults(self):
        assert AWS_PRICES.gpu_per_hour == 5.0
        assert AWS_PRICES.dram_per_gb_hour == 0.0088
        assert AWS_PRICES.ssd_per_gb_hour == 0.000082

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PriceSheet(gpu_per_hour=-1)


class TestCostBreakdown:
    def test_total_and_storage_fraction(self):
        c = CostBreakdown(gpu=90.0, dram=8.0, ssd=2.0)
        assert c.total == 100.0
        assert c.storage_fraction == pytest.approx(0.10)

    def test_zero_total(self):
        assert CostBreakdown(0, 0, 0).storage_fraction == 0.0

    def test_cost_saving(self):
        a = CostBreakdown(gpu=30, dram=0, ssd=0)
        b = CostBreakdown(gpu=100, dram=0, ssd=0)
        assert cost_saving(a, b) == pytest.approx(0.7)

    def test_cost_saving_bad_baseline(self):
        with pytest.raises(ValueError):
            cost_saving(CostBreakdown(1, 0, 0), CostBreakdown(0, 0, 0))


class TestRunCost:
    @pytest.fixture(scope="class")
    def runs(self):
        # Overloaded arrivals: the makespan is GPU-bound, the regime the
        # paper's cost analysis (and Figure 17) operates in.
        trace = generate_trace(n_sessions=60, seed=5, arrival_rate=8.0)
        model = get_model("llama-13b")
        # Store sized for the miniature workload (billing a 10 TB SSD for
        # 60 sessions would swamp the GPU savings).
        store = StoreConfig(dram_bytes=32 * GiB, ssd_bytes=512 * GiB)
        hardware = HardwareConfig().for_model(model)
        ca = ServingEngine(
            model, engine_config=EngineConfig(batch_size=8), store_config=store
        ).run(trace)
        re = ServingEngine(
            model, engine_config=EngineConfig.recompute_baseline(batch_size=8)
        ).run(trace)
        return ca, re, hardware, store

    def test_ca_has_storage_cost(self, runs):
        ca, _, hardware, store = runs
        cost = run_cost(ca, hardware, store)
        assert cost.dram > 0 and cost.ssd > 0
        assert 0 < cost.storage_fraction < 0.5

    def test_re_is_gpu_only(self, runs):
        _, re, hardware, store = runs
        cost = run_cost(re, hardware, store)
        assert cost.dram == 0 and cost.ssd == 0
        assert cost.total == cost.gpu

    def test_gpu_cost_formula(self, runs):
        ca, _, hardware, store = runs
        cost = run_cost(ca, hardware, store)
        hours = ca.summary.total_gpu_busy_time / 3600
        assert cost.gpu == pytest.approx(hardware.num_gpus * 5.0 * hours)

    def test_ca_cheaper_overall(self, runs):
        ca, re, hardware, store = runs
        assert cost_saving(
            run_cost(ca, hardware, store), run_cost(re, hardware, store)
        ) > 0


class TestCapacity:
    def test_ccps(self):
        model = get_model("llama-13b")
        assert ccps_bytes(model) == 4096 * model.kv_bytes_per_token

    def test_dsput_counts_window(self):
        trace = Trace(
            conversations=[
                Conversation(i, t, (Turn(5, 5),))
                for i, t in enumerate([0.0, 10.0, 20.0, 2000.0])
            ]
        )
        assert distinct_sessions_per_unit_time(trace, ttl_seconds=100.0) == 3.0
        assert distinct_sessions_per_unit_time(trace, ttl_seconds=5.0) == 1.0

    def test_dsput_validation(self):
        trace = Trace(
            conversations=[Conversation(0, 10.0, (Turn(5, 5),))]
        )
        with pytest.raises(ValueError):
            distinct_sessions_per_unit_time(trace, 0.0)
        with pytest.raises(ValueError):
            distinct_sessions_per_unit_time(trace, 10.0, horizon=1.0)

    def test_plan(self):
        trace = generate_trace(n_sessions=100, seed=9)
        plan = capacity_plan(get_model("llama-13b"), trace, ttl_seconds=600.0)
        assert plan.ccput_bytes == plan.dsput * plan.ccps_bytes
        assert plan.rcc_bytes(0.25) == int(0.25 * plan.ccput_bytes)
        with pytest.raises(ValueError):
            plan.rcc_bytes(0.0)


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(
            ["name", "value"], [["a", 1.0], ["bcd", 123456.0]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "123,456" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_percent(self):
        assert percent(0.857) == "85.7%"

    def test_speedup(self):
        assert speedup(10.0, 2.5) == "4.00x"
        assert speedup(1.0, 0.0) == "inf"
