"""The repo's own source tree must satisfy its own linter."""

import os
import subprocess
import sys
from pathlib import Path

from repro.lint import lint_paths
from repro.lint.diagnostics import format_report

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


def _env_with_src() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


def test_src_repro_lints_clean():
    diags = lint_paths([SRC])
    assert diags == [], "\n" + format_report(diags)


def test_cli_lint_exits_zero():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", str(SRC)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=_env_with_src(),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_cli_lint_nonzero_on_findings(tmp_path):
    bad = tmp_path / "repro" / "sim"
    bad.mkdir(parents=True)
    (bad / "dirty.py").write_text("import time\nt = time.time()\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(tmp_path)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=_env_with_src(),
    )
    assert proc.returncode == 1
    assert "wall-clock" in proc.stdout
