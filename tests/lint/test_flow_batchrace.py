"""Batch-race detection: effect extraction, expansion, conflicts."""

from __future__ import annotations

from flow_helpers import analyze_sources, index_of
from repro.lint.config import LintConfig

_HANDLER = (
    "class {name}:\n"
    '    __slots__ = ("engine",)\n\n'
    "    def __init__(self, engine: object) -> None:\n"
    "        self.engine = engine\n\n"
    "    def __call__(self) -> None:\n"
    "{body}"
)


def _races(source: str, config: LintConfig | None = None) -> list:
    return [
        f
        for f in analyze_sources({"mod": source}, config=config)
        if f.rule == "batch-race"
    ]


class TestConflicts:
    def test_write_write_conflict(self) -> None:
        src = _HANDLER.format(name="A", body="        self.engine.x = 1\n")
        src += "\n\n" + _HANDLER.format(
            name="B", body="        self.engine.x = 2\n"
        )
        findings = _races(src)
        assert [f.scope for f in findings] == ["mod.A|mod.B"]
        assert "engine.x" in findings[0].message

    def test_write_read_conflict(self) -> None:
        src = _HANDLER.format(name="A", body="        self.engine.x = 1\n")
        src += "\n\n" + _HANDLER.format(
            name="B", body="        y = self.engine.x\n"
        )
        assert len(_races(src)) == 1

    def test_read_read_no_conflict(self) -> None:
        src = _HANDLER.format(name="A", body="        y = self.engine.x\n")
        src += "\n\n" + _HANDLER.format(
            name="B", body="        z = self.engine.x\n"
        )
        assert _races(src) == []

    def test_disjoint_attrs_no_conflict(self) -> None:
        src = _HANDLER.format(name="A", body="        self.engine.x = 1\n")
        src += "\n\n" + _HANDLER.format(
            name="B", body="        self.engine.y = 2\n"
        )
        assert _races(src) == []

    def test_mutating_method_counts_as_write(self) -> None:
        src = _HANDLER.format(
            name="A", body="        self.engine.queue.append(1)\n"
        )
        src += "\n\n" + _HANDLER.format(
            name="B", body="        n = len(self.engine.queue)\n"
        )
        assert len(_races(src)) == 1

    def test_private_slots_not_shared_state(self) -> None:
        src = _HANDLER.format(name="A", body="        self.count = 1\n")
        src += "\n\n" + _HANDLER.format(name="B", body="        self.count = 2\n")
        assert _races(src) == []


class TestExpansion:
    def test_effects_through_engine_method(self) -> None:
        src = (
            "class Eng:\n"
            "    def bump(self) -> None:\n"
            "        self.counter = self.counter + 1\n\n\n"
        )
        src += _HANDLER.format(name="A", body="        self.engine.bump()\n")
        src += "\n\n" + _HANDLER.format(
            name="B", body="        self.engine.counter = 0\n"
        )
        assert [f.scope for f in _races(src)] == ["mod.A|mod.B"]

    def test_effects_through_local_alias(self) -> None:
        src = _HANDLER.format(
            name="A",
            body="        engine = self.engine\n        engine.x = 1\n",
        )
        src += "\n\n" + _HANDLER.format(
            name="B", body="        self.engine.x = 2\n"
        )
        assert len(_races(src)) == 1

    def test_ignore_attrs_option(self) -> None:
        src = _HANDLER.format(name="A", body="        self.engine.x = 1\n")
        src += "\n\n" + _HANDLER.format(
            name="B", body="        self.engine.x = 2\n"
        )
        cfg = LintConfig(rule_options={"batch-race": {"ignore-attrs": ["engine.x"]}})
        assert _races(src, config=cfg) == []

    def test_suppression_on_class_line(self) -> None:
        src = _HANDLER.format(name="A", body="        self.engine.x = 1\n")
        src = src.replace(
            "class A:",
            "class A:  # repro-lint: allow=batch-race (fixture: commutes)",
        )
        src += "\n\n" + _HANDLER.format(
            name="B", body="        self.engine.x = 2\n"
        )
        assert _races(src) == []


class TestHandlerSelection:
    def test_non_callable_class_excluded(self) -> None:
        index, _, _ = index_of(
            {
                "mod": (
                    "class Plain:\n"
                    '    __slots__ = ("engine",)\n\n'
                    "    def fire(self) -> None:\n"
                    "        self.engine.x = 1\n"
                )
            }
        )
        from repro.lint.flow.batchrace import handler_classes

        assert handler_classes(index) == []

    def test_callable_without_engine_slot_excluded(self) -> None:
        index, _, _ = index_of(
            {
                "mod": (
                    "class Fn:\n"
                    '    __slots__ = ("x",)\n\n'
                    "    def __call__(self) -> None:\n"
                    "        self.x = 1\n"
                )
            }
        )
        from repro.lint.flow.batchrace import handler_classes

        assert handler_classes(index) == []
