"""Epoch-guard verifier: guard shapes, exemptions, suppressions."""

from __future__ import annotations

from flow_helpers import analyze_sources


def _cls(body: str, slots: str = '("engine", "epoch")') -> str:
    return (
        "class Cont:\n"
        f"    __slots__ = {slots}\n\n"
        "    def __init__(self, engine: object, epoch: int) -> None:\n"
        "        self.engine = engine\n"
        "        self.epoch = epoch\n\n"
        "    def __call__(self) -> None:\n"
        f"{body}"
    )


def _epoch_findings(source: str) -> list:
    return [
        f
        for f in analyze_sources({"mod": source})
        if f.rule == "epoch-guard"
    ]


class TestGuardShapes:
    def test_unguarded_mutation_flagged(self) -> None:
        src = _cls("        self.engine.fire()\n")
        findings = _epoch_findings(src)
        assert len(findings) == 1
        assert findings[0].scope == "mod.Cont"

    def test_eq_guard_accepted(self) -> None:
        src = _cls(
            "        engine = self.engine\n"
            "        if engine._epoch == self.epoch:\n"
            "            engine.fire()\n"
        )
        assert _epoch_findings(src) == []

    def test_neq_early_return_accepted(self) -> None:
        src = _cls(
            "        engine = self.engine\n"
            "        if engine._epoch != self.epoch:\n"
            "            return\n"
            "        engine.fire()\n"
        )
        assert _epoch_findings(src) == []

    def test_alias_through_local_is_tracked(self) -> None:
        src = _cls(
            "        engine = self.engine\n"
            "        engine.fire()\n"
        )
        assert len(_epoch_findings(src)) == 1

    def test_mutation_in_else_of_eq_guard_flagged(self) -> None:
        src = _cls(
            "        engine = self.engine\n"
            "        if engine._epoch == self.epoch:\n"
            "            engine.fire()\n"
            "        else:\n"
            "            engine.cleanup()\n"
        )
        findings = _epoch_findings(src)
        assert len(findings) == 1
        assert "engine.cleanup()" in findings[0].message

    def test_helper_call_counts_as_mutation(self) -> None:
        # A bare helper call can launder engine access; strict mode
        # requires it under the guard too.
        src = _cls("        fire_helper(self)\n")
        assert len(_epoch_findings(src)) == 1

    def test_benign_builtins_ignored(self) -> None:
        src = _cls(
            "        n = len([])\n"
            "        engine = self.engine\n"
            "        if engine._epoch == self.epoch:\n"
            "            engine.fire(n)\n"
        )
        assert _epoch_findings(src) == []


class TestScope:
    def test_class_without_epoch_slot_exempt(self) -> None:
        src = _cls("        self.engine.fire()\n", slots='("engine",)')
        assert _epoch_findings(src) == []

    def test_class_without_call_exempt(self) -> None:
        src = (
            "class Plain:\n"
            '    __slots__ = ("engine", "epoch")\n\n'
            "    def fire(self) -> None:\n"
            "        self.engine.fire()\n"
        )
        assert _epoch_findings(src) == []

    def test_suppression_on_violation_line(self) -> None:
        src = _cls(
            "        self.engine.drop()  # repro-lint: allow=epoch-guard"
            " (idempotent under stale epoch)\n"
        )
        assert _epoch_findings(src) == []


class TestRealTree:
    def test_checked_in_continuations_are_clean(self) -> None:
        from pathlib import Path

        from repro.lint.config import load_config
        from repro.lint.flow import analyze_paths

        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        cfg = load_config(src)
        result = analyze_paths([src / "engine"], cfg, use_cache=False)
        assert [f for f in result.findings if f.rule == "epoch-guard"] == []
