"""Fixture: functions with missing annotations."""


def no_return_annotation(x: int):
    return x


def missing_param(x, y: int) -> int:
    return x + y


class Widget:
    def method(self, size) -> None:
        self.size = size

    def varargs(self, *args, **kwargs) -> None:
        pass
