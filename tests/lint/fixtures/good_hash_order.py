"""Fixture: stable digests instead of salted builtin hash()."""

import hashlib


def stable_bucket(name: str, n_buckets: int) -> int:
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n_buckets


ordered = sorted(["a", "b"])  # natural ordering, no hash involved
