"""Fixture: cluster code honouring the store migration API."""


def migrate(source, target, session_id):  # repro-lint: allow=untyped-def (fixture exercises only the isolation rule)
    if source.store is None or target.store is None:
        return
    item = source.store.extract(session_id)
    if item is None:
        source.store.discard_stale(session_id)
        return
    admitted = target.store.admit_migrated(session_id, item.n_tokens, 0.0)
    if admitted is None:
        source.store.record_migration_loss()
