"""Good variant: the continuation compares epochs before mutating."""


class GuardedSaveDone:
    __slots__ = ("engine", "epoch", "session_id")

    def __init__(self, engine: object, epoch: int, session_id: int) -> None:
        self.engine = engine
        self.epoch = epoch
        self.session_id = session_id

    def __call__(self) -> None:
        engine = self.engine
        if engine._epoch == self.epoch:
            engine._on_save_block_done(self.session_id)


class EarlyReturnSaveDone:
    __slots__ = ("engine", "epoch", "session_id")

    def __init__(self, engine: object, epoch: int, session_id: int) -> None:
        self.engine = engine
        self.epoch = epoch
        self.session_id = session_id

    def __call__(self) -> None:
        engine = self.engine
        if engine._epoch != self.epoch:
            return
        engine._on_save_block_done(self.session_id)
