"""Seeded bug: an extracted copy reaches function exit unaccounted.

Neither admitted, discarded, loss-recorded nor handed off — the one
copy of the session's KV is silently dropped on the floor.
"""


def forgetful(source: object, session_id: int) -> int:
    item = source.store.extract(session_id)
    return 0
