"""Seeded bug: a path reaches admit_migrated with nothing extracted.

When the conditional is false the admit call has no copy to admit —
the automaton requires an extract on the same flow path.
"""


def flaky_admit(source: object, dest: object, session_id: int, fast: bool) -> None:
    item = None
    if fast:
        item = source.store.extract(session_id)
    dest.store.admit_migrated(session_id)
