"""Seeded bug: the same session is extracted twice on one flow path.

``extract`` hands over the *only* copy; a second extract before the
first is admitted/discarded violates the exactly-one-copy protocol.
"""


def migrate_twice(source: object, dest: object, session_id: int) -> None:
    item = source.store.extract(session_id)
    other = source.store.extract(session_id)
    dest.store.admit_migrated(item)
    dest.store.admit_migrated(other)
