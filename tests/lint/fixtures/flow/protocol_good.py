"""Good variant: the full migration shape the cluster layer uses.

Extract, None-check early return, lossy-transfer accounting in the
except arm, admit on success — every path accounts for the copy.
"""


class TransferError(Exception):
    pass


def migrate(source: object, dest: object, link: object, session_id: int) -> None:
    item = source.store.extract(session_id)
    if item is None:
        return
    try:
        done = link.transfer(item.n_bytes)
    except TransferError:
        source.store.record_migration_loss()
        return
    dest.store.admit_migrated(item, ready_at=done)
