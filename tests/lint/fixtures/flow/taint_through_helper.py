"""Seeded bug: wall clock laundered through a helper function.

The per-file linter flags only the ``time.time()`` line; the flow pass
must flag every transitive call site of the helper.
"""

import time


def _now() -> float:
    return time.time()


def step(clock: float) -> float:
    return _now() + clock


def schedule(deadline: float) -> float:
    return step(deadline)
