"""Good variant: handlers touching disjoint state commute freely."""


class ArrivalCounter:
    __slots__ = ("engine",)

    def __init__(self, engine: object) -> None:
        self.engine = engine

    def __call__(self) -> None:
        self.engine.n_arrivals = self.engine.n_arrivals + 1


class DepartureCounter:
    __slots__ = ("engine",)

    def __init__(self, engine: object) -> None:
        self.engine = engine

    def __call__(self) -> None:
        self.engine.n_departures = self.engine.n_departures + 1
