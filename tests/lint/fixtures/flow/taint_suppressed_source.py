"""Good variant: the wall-clock source carries a justified suppression.

Silence propagates — callers of the vouched helper must not be flagged.
"""

import time


def _profiling_now() -> float:
    return time.time()  # repro-lint: allow=wall-clock (fixture: observability-only timestamp, never enters simulated state)


def annotate(label: str) -> tuple[str, float]:
    return (label, _profiling_now())
