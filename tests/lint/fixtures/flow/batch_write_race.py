"""Seeded bug: two same-timestamp handlers write the same attribute.

Whichever fires last wins — intra-batch dispatch order becomes
observable program state.
"""


class BumpHandler:
    __slots__ = ("engine",)

    def __init__(self, engine: object) -> None:
        self.engine = engine

    def __call__(self) -> None:
        self.engine.pending_turns = 1


class ResetHandler:
    __slots__ = ("engine",)

    def __init__(self, engine: object) -> None:
        self.engine = engine

    def __call__(self) -> None:
        self.engine.pending_turns = 0
