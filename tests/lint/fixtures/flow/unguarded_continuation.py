"""Seeded bug: a continuation stores an epoch slot but fires unguarded.

After a crash bumps the engine epoch, this stale continuation would
mutate post-restart state — exactly the bug class the epoch-guard
verifier exists for.
"""


class UnguardedSaveDone:
    __slots__ = ("engine", "epoch", "session_id")

    def __init__(self, engine: object, epoch: int, session_id: int) -> None:
        self.engine = engine
        self.epoch = epoch
        self.session_id = session_id

    def __call__(self) -> None:
        engine = self.engine
        engine._on_save_block_done(self.session_id)
