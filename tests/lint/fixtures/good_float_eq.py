"""Fixture: tolerance comparisons and integer equality stay legal."""

import math


def prefill_done(load_time: float, elapsed: float, n_events: int) -> bool:
    if load_time > 0.0:  # zero/nonzero restructure, no equality
        return False
    if math.isclose(elapsed, 1.0, rel_tol=1e-9):
        return True
    return n_events == 0  # int equality is exact and fine
