"""Fixture: every RNG is constructed from an explicit seed."""

import random

import numpy as np

rng = random.Random(42)
value = rng.random()
gen = np.random.default_rng(42)
other = np.random.default_rng(seed=7)
noise = gen.normal(size=3)
