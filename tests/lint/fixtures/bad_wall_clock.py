"""Fixture: every statement here reads the host wall clock."""

import time
from datetime import date, datetime
from time import perf_counter as pc

started = time.time()
mono = time.monotonic()
precise = pc()
stamp = datetime.now()
today = date.today()
