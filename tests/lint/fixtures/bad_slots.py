"""Fixture: hot-path dataclasses without slots.

Linted with module="repro.engine.fixture" so the slots scope applies.
"""

import dataclasses
from dataclasses import dataclass


@dataclass
class PlainRecord:
    value: int


@dataclass(frozen=True)
class FrozenRecord:
    value: int


@dataclasses.dataclass(frozen=True, slots=False)
class ExplicitlyUnslotted:
    value: int
