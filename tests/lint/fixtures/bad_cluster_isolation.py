"""Fixture: cluster code groping around inside a replica's store.

Linted with module="repro.cluster.fixture" so the isolation scope applies.
"""


def poke(source, target, session_id):  # repro-lint: allow=untyped-def (fixture exercises only the isolation rule)
    if source.store.get(session_id) is not None:  # lookup bypasses the API
        source.store.drop(session_id)  # direct drop
        source.store.stats.scatter_drops += 1  # foreign stats mutation
    target.store.save(session_id, 10, 0.0)  # direct save
