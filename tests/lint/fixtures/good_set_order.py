"""Fixture: sets used for membership, sorted before ordered use."""

ids = [3, 1, 2, 1]
seen = set(ids)

if 3 in seen:  # membership only: no ordering observed
    found = True

ordered = sorted(set(ids))  # explicit total order before iteration
for sid in ordered:
    print(sid)
