"""Fixture: builtin hash() feeding values and orderings."""

bucket = hash("session-7") % 16
ordered = sorted(["a", "b"], key=hash)
