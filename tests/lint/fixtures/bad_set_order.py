"""Fixture: set iteration order leaking into ordered state."""

ids = [3, 1, 2, 1]

for sid in set(ids):
    print(sid)

first = list({sid for sid in ids})
pairs = [(x, x) for x in {1, 2, 3}]
as_tuple = tuple(frozenset(ids))
