"""Fixture: unseeded and global-state randomness."""

import os
import random
import uuid

import numpy as np

value = random.random()
pick = random.choice([1, 2, 3])
random.seed(0)  # reseeding the *global* RNG is still shared state
rng = random.Random()  # entropy-seeded
gen = np.random.default_rng()  # entropy-seeded
legacy = np.random.rand(3)
token = os.urandom(16)
ident = uuid.uuid4()
