"""Fixture: slotted dataclasses and non-dataclass classes."""

import dataclasses
from dataclasses import dataclass


@dataclass(slots=True)
class SlottedRecord:
    value: int


@dataclasses.dataclass(frozen=True, slots=True)
class FrozenSlottedRecord:
    value: int


class HandRolled:
    """Not a dataclass; manual __slots__ (or none) is its own business."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value
