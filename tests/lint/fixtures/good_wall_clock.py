"""Fixture: simulated time and non-clock uses of the time module."""

import time


def wait_until(sim_now: float, deadline: float) -> float:
    """Only the simulated clock is consulted."""
    return max(sim_now, deadline)


def nap() -> None:
    time.sleep(0)  # sleeping is not *reading* a clock
