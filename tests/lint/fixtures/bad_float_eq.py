"""Fixture: exact float equality on a (nominal) hot path.

Linted with module="repro.engine.fixture" so the float-eq scope applies.
"""


def prefill_done(load_time: float, elapsed: float) -> bool:
    if load_time == 0.0:
        return True
    if elapsed != 1.0:
        return False
    return elapsed == load_time / 2
