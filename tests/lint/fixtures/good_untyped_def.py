"""Fixture: fully annotated functions (self/cls exempt)."""

from typing import Any


def annotated(x: int, *rest: float, flag: bool = True, **extra: Any) -> int:
    return x


class Widget:
    def method(self, size: int) -> None:
        self.size = size

    @classmethod
    def build(cls, size: int) -> "Widget":
        inst = cls()
        inst.method(size)
        return inst
