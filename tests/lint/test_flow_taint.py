"""Transitive determinism taint: propagation, chains, suppression flow."""

from __future__ import annotations

from flow_helpers import analyze_sources

WALL_HELPER = '''
import time


def _now() -> float:
    return time.time()


def caller() -> float:
    return _now()


def transitive() -> float:
    return caller()
'''


def _rules(findings: list) -> list[str]:
    return [f.rule for f in findings]


class TestPropagation:
    def test_helper_flagged_at_every_transitive_call_site(self) -> None:
        findings = analyze_sources({"mod": WALL_HELPER})
        flow = [f for f in findings if f.rule == "flow-wall-clock"]
        assert [f.scope for f in flow] == ["mod:caller", "mod:transitive"]

    def test_chain_and_origin_in_message(self) -> None:
        findings = analyze_sources({"mod": WALL_HELPER})
        deep = next(f for f in findings if f.scope == "mod:transitive")
        assert "time.time()" in deep.message
        assert "mod.transitive -> mod.caller -> mod._now" in deep.message

    def test_cross_module_propagation(self) -> None:
        sources = {
            "pkg.clock": (
                "import time\n\n\ndef wall() -> float:\n"
                "    return time.time()\n"
            ),
            "pkg.user": (
                "from pkg.clock import wall\n\n\ndef tick() -> float:\n"
                "    return wall()\n"
            ),
        }
        findings = analyze_sources(sources)
        scopes = [f.scope for f in findings if f.rule == "flow-wall-clock"]
        assert scopes == ["pkg.user:tick"]

    def test_unseeded_random_and_order_rules_map(self) -> None:
        sources = {
            "mod": (
                "import random\n\n\ndef roll() -> float:\n"
                "    return random.random()\n\n\ndef use() -> float:\n"
                "    return roll()\n"
            )
        }
        findings = analyze_sources(sources)
        assert "flow-unseeded-random" in _rules(findings)

    def test_recursion_terminates(self) -> None:
        sources = {
            "mod": (
                "import time\n\n\ndef a() -> float:\n    return b()\n\n\n"
                "def b() -> float:\n    return a() + time.time()\n"
            )
        }
        findings = analyze_sources(sources)
        assert any(f.rule == "flow-wall-clock" for f in findings)


class TestSuppressionFlow:
    def test_suppressed_source_silences_all_callers(self) -> None:
        sources = {
            "mod": (
                "import time\n\n\ndef _now() -> float:\n"
                "    return time.time()  # repro-lint: allow=wall-clock"
                " (observability only)\n\n\ndef caller() -> float:\n"
                "    return _now()\n"
            )
        }
        assert analyze_sources(sources) == []

    def test_call_site_suppression_blocks_that_edge_only(self) -> None:
        sources = {
            "mod": (
                "import time\n\n\ndef _now() -> float:\n"
                "    return time.time()\n\n\ndef vouched() -> float:\n"
                "    return _now()  # repro-lint: allow=flow-wall-clock"
                " (result discarded)\n\n\ndef naive() -> float:\n"
                "    return _now()\n"
            )
        }
        findings = analyze_sources(sources)
        flow = [f for f in findings if f.rule == "flow-wall-clock"]
        assert [f.scope for f in flow] == ["mod:naive"]

    def test_call_site_suppression_stops_transitive_taint(self) -> None:
        sources = {
            "mod": (
                "import time\n\n\ndef _now() -> float:\n"
                "    return time.time()\n\n\ndef vouched() -> float:\n"
                "    return _now()  # repro-lint: allow=flow-wall-clock"
                " (boundary: value never enters simulated state)\n\n\n"
                "def above() -> float:\n    return vouched()\n"
            )
        }
        findings = analyze_sources(sources)
        assert [f.scope for f in findings if f.rule == "flow-wall-clock"] == []
