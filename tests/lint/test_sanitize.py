"""SimSan runtime sanitizer: detection, equivalence, activation."""

import pytest

from repro.cluster.config import ClusterConfig, RouterName
from repro.cluster.engine import ClusterEngine
from repro.config import StoreConfig
from repro.engine.engine import ServingEngine
from repro.engine.overlap import async_save_blocking_time, layerwise_prefill_time
from repro.models import MODEL_REGISTRY
from repro.sanitize import (
    SimSanError,
    check_exactly_one_copy,
    check_overlap_envelope,
    check_save_blocking_envelope,
    for_simulator,
    sanitize_enabled,
)
from repro.sim import Channel
from repro.sim.loop import Simulator
from repro.store.attention_store import AttentionStore
from repro.workload.generator import generate_trace
from repro.workload.spec import WorkloadSpec

MODEL = MODEL_REGISTRY["llama-13b"]
KB = 1000


def small_trace(n_sessions=20, seed=5):
    return generate_trace(WorkloadSpec(n_sessions=n_sessions, seed=seed))


def make_store(monkeypatch=None):
    config = StoreConfig(
        dram_bytes=40 * KB,
        ssd_bytes=160 * KB,
        block_bytes=KB,
        dram_buffer_fraction=0.0,
    )
    return AttentionStore(config, KB, Channel("ssd", 1e9))


class TestSchedulingGuards:
    def test_past_event_raises_simsan_error(self):
        sim = Simulator()
        for_simulator(sim).install()
        sim.after(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimSanError, match="past"):
            sim.at(1.0, lambda: None)

    def test_negative_delay_raises_simsan_error(self):
        sim = Simulator()
        for_simulator(sim).install()
        with pytest.raises(SimSanError, match="negative"):
            sim.after(-0.5, lambda: None)

    def test_clock_monotonicity_guard(self):
        sim = Simulator()
        simsan = for_simulator(sim)
        simsan.install()
        sim.after(2.0, lambda: None)
        sim.run()
        # Force the recorded high-water mark past the next event's time to
        # emulate a clock that ran backwards.
        simsan._last_event_time = 10.0
        sim.at(sim.now + 1.0, lambda: None)
        with pytest.raises(SimSanError, match="backwards"):
            sim.run()

    def test_installed_sim_still_runs_clean_traces(self):
        fired = []
        sim = Simulator()
        for_simulator(sim).install()
        sim.after(1.0, lambda: fired.append(1))
        sim.after(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1, 2]


class TestStoreAccounting:
    def test_corrupted_byte_accounting_detected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE_STRIDE", "1")
        sim = Simulator()
        simsan = for_simulator(sim)
        store = make_store()
        simsan.install_store(store)
        store.save(1, 10, now=0.0)
        # Corrupt the conservation counter behind the store's back; the
        # next mutation's invariant sweep must catch it.
        store._total_item_bytes += 1
        with pytest.raises(SimSanError, match="invariants violated after save"):
            store.save(2, 10, now=1.0)

    def test_tier_residency_corruption_detected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE_STRIDE", "1")
        sim = Simulator()
        simsan = for_simulator(sim)
        store = make_store()
        simsan.install_store(store)
        store.save(1, 10, now=0.0)
        # Evict the item from its tier's tracking without telling the store.
        store.dram_tier.remove(1)
        with pytest.raises(SimSanError):
            store.save(2, 10, now=1.0)

    def test_clean_mutations_pass(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE_STRIDE", "1")
        store = make_store()
        for_simulator(Simulator()).install_store(store)
        store.save(1, 10, now=0.0)
        store.save(2, 10, now=1.0)
        store.drop(1)
        assert store.get(2) is not None


class TestOneCopy:
    def test_duplicate_residency_detected(self):
        cluster = ClusterEngine(
            MODEL,
            cluster=ClusterConfig(n_instances=2, router=RouterName.AFFINITY),
        )
        s0, s1 = cluster.engines[0].store, cluster.engines[1].store
        s0.save(7, 10, now=0.0)
        s1.save(7, 10, now=0.0)
        with pytest.raises(SimSanError, match="exactly-one-copy"):
            check_exactly_one_copy(cluster.engines)

    def test_single_residency_passes(self):
        cluster = ClusterEngine(
            MODEL,
            cluster=ClusterConfig(n_instances=2, router=RouterName.AFFINITY),
        )
        cluster.engines[0].store.save(7, 10, now=0.0)
        cluster.engines[1].store.save(8, 10, now=0.0)
        check_exactly_one_copy(cluster.engines)
        check_exactly_one_copy(cluster.engines, session_id=7)


class TestOccupancy:
    def test_negative_reservation_detected(self):
        engine = ServingEngine(MODEL, sanitize=True)
        engine._hbm_reserved_tokens = -1
        engine.sim.after(0.0, lambda: None)
        with pytest.raises(SimSanError, match="HBM reservation"):
            engine.sim.run()

    def test_over_budget_reservation_detected(self):
        engine = ServingEngine(MODEL, sanitize=True)
        engine._hbm_reserved_tokens = engine._hbm_budget_tokens + 1
        engine.sim.after(0.0, lambda: None)
        with pytest.raises(SimSanError, match="HBM reservation"):
            engine.sim.run()


class TestOverlapEnvelope:
    def test_envelope_violations_raise(self):
        with pytest.raises(SimSanError):
            check_overlap_envelope(0.5, compute_time=1.0, load_time=1.0)
        with pytest.raises(SimSanError):
            check_overlap_envelope(2.5, compute_time=1.0, load_time=1.0)
        with pytest.raises(SimSanError):
            check_save_blocking_envelope(-0.1, save_time=1.0)
        with pytest.raises(SimSanError):
            check_save_blocking_envelope(1.5, save_time=1.0)

    def test_overlap_models_stay_inside_envelope(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        for load in (0.0, 0.4, 1.0, 3.7):
            for buffers in (0, 5, 40):
                layerwise_prefill_time(40, 1.0, load, buffers)
        for window in (0.0, 0.5, 2.0):
            for buffers in (0, 15, 40):
                async_save_blocking_time(1.0, window, 40, buffers)


class TestEquivalenceAndActivation:
    def test_sanitized_run_bit_identical(self):
        trace = small_trace()
        plain = ServingEngine(MODEL).run(trace)
        sanitized = ServingEngine(MODEL, sanitize=True).run(trace)
        assert sanitized.summary == plain.summary
        assert sanitized.events_processed == plain.events_processed

    def test_sanitized_cluster_bit_identical(self):
        trace = small_trace()
        config = ClusterConfig(n_instances=2, router=RouterName.LEAST_LOADED)
        plain = ClusterEngine(MODEL, cluster=config).run(trace)
        sanitized = ClusterEngine(MODEL, cluster=config, sanitize=True).run(trace)
        assert sanitized.summary == plain.summary
        assert sanitized.scatter_drops == plain.scatter_drops

    def test_sanitized_affinity_cluster_with_faults_passes(self):
        from repro.faults import fault_profile

        trace = small_trace(n_sessions=30)
        config = ClusterConfig(n_instances=3, router=RouterName.AFFINITY)
        result = ClusterEngine(
            MODEL,
            cluster=config,
            fault_config=fault_profile("flaky-ssd", seed=3),
            sanitize=True,
        ).run(trace)
        assert result.summary.n_turns > 0

    def test_env_flag_activates(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled()
        engine = ServingEngine(MODEL)
        assert engine.sanitized

    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        engine = ServingEngine(MODEL)
        assert not engine.sanitized
        assert engine.sim.event_hook is None
