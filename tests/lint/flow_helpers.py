"""Shared helpers for the flow-analyzer tests: analyze inline sources."""

from __future__ import annotations

from repro.lint.config import LintConfig
from repro.lint.flow.baseline import FlowFinding
from repro.lint.flow.batchrace import run_batch_race_pass
from repro.lint.flow.callgraph import CallGraph, build_call_graph
from repro.lint.flow.epoch import run_epoch_pass
from repro.lint.flow.project import ProjectIndex, build_index, summarize_module
from repro.lint.flow.protocol import run_protocol_pass
from repro.lint.flow.taint import run_taint_pass


def index_of(
    sources: dict[str, str], config: LintConfig | None = None
) -> tuple[ProjectIndex, CallGraph, LintConfig]:
    cfg = config if config is not None else LintConfig()
    summaries = {
        name: summarize_module(
            text, f"{name.replace('.', '/')}.py", name, False, cfg
        )
        for name, text in sources.items()
    }
    index = build_index(summaries)
    return index, build_call_graph(index), cfg


def analyze_sources(
    sources: dict[str, str],
    config: LintConfig | None = None,
    max_paths: int = 256,
) -> list[FlowFinding]:
    """All four passes over in-memory modules keyed by dotted name."""
    index, graph, cfg = index_of(sources, config)
    findings = [
        *run_taint_pass(index, graph),
        *run_epoch_pass(index),
        *run_protocol_pass(index, max_paths)[0],
        *run_batch_race_pass(index, cfg),
    ]
    findings.sort(key=FlowFinding.sort_key)
    return findings
