"""mypy --strict gate.

mypy is not a runtime dependency and may be absent from minimal
environments; the test skips in that case and runs in the CI mypy job.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

pytestmark = pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None, reason="mypy not installed"
)


def test_mypy_strict_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
