"""Store-protocol typestate: the exactly-one-copy lifecycle automaton."""

from __future__ import annotations

from flow_helpers import analyze_sources


def _proto(source: str, max_paths: int = 256) -> list:
    return [
        f
        for f in analyze_sources({"mod": source}, max_paths=max_paths)
        if f.rule == "store-protocol"
    ]


class TestUseAfterExtract:
    def test_double_extract_flagged(self) -> None:
        src = (
            "def move(store: object, dest: object, sid: int) -> None:\n"
            "    a = store.kv.extract(sid)\n"
            "    b = store.kv.extract(sid)\n"
            "    dest.kv.admit_migrated(a)\n"
            "    dest.kv.admit_migrated(b)\n"
        )
        findings = _proto(src)
        assert [f.key for f in findings] == [
            "use-after-extract|store.kv.extract(sid)"
        ]

    def test_extract_after_admit_ok(self) -> None:
        src = (
            "def move(store: object, dest: object, sid: int) -> None:\n"
            "    a = store.kv.extract(sid)\n"
            "    dest.kv.admit_migrated(a)\n"
            "    b = store.kv.extract(sid)\n"
            "    dest.kv.admit_migrated(b)\n"
        )
        assert _proto(src) == []

    def test_different_sessions_ok(self) -> None:
        src = (
            "def move(store: object, dest: object, s1: int, s2: int) -> None:\n"
            "    a = store.kv.extract(s1)\n"
            "    b = store.kv.extract(s2)\n"
            "    dest.kv.admit_migrated(a)\n"
            "    dest.kv.admit_migrated(b)\n"
        )
        assert _proto(src) == []


class TestAdmitWithoutExtract:
    def test_branch_path_missing_extract(self) -> None:
        src = (
            "def move(store: object, dest: object, sid: int, fast: bool) -> None:\n"
            "    item = None\n"
            "    if fast:\n"
            "        item = store.kv.extract(sid)\n"
            "    dest.kv.admit_migrated(sid)\n"
        )
        findings = _proto(src)
        assert [f.key for f in findings] == [
            "admit-without-extract|admit_migrated(sid)"
        ]

    def test_matched_by_item_variable(self) -> None:
        src = (
            "def move(store: object, dest: object, sid: int) -> None:\n"
            "    item = store.kv.extract(sid)\n"
            "    dest.kv.admit_migrated(item)\n"
        )
        assert _proto(src) == []


class TestLeak:
    def test_unaccounted_copy_flagged(self) -> None:
        src = (
            "def lose(store: object, sid: int) -> None:\n"
            "    item = store.kv.extract(sid)\n"
        )
        findings = _proto(src)
        assert [f.key for f in findings] == [
            "unaccounted|store.kv.extract(sid)"
        ]

    def test_none_checked_early_return_not_a_leak(self) -> None:
        src = (
            "def move(store: object, dest: object, sid: int) -> None:\n"
            "    item = store.kv.extract(sid)\n"
            "    if item is None:\n"
            "        return\n"
            "    dest.kv.admit_migrated(item)\n"
        )
        assert _proto(src) == []

    def test_loss_recording_accounts_the_copy(self) -> None:
        src = (
            "def move(store: object, link: object, sid: int) -> None:\n"
            "    item = store.kv.extract(sid)\n"
            "    try:\n"
            "        link.transfer(item)\n"
            "    except ValueError:\n"
            "        store.kv.record_migration_loss()\n"
            "        return\n"
            "    store.kv.admit_migrated(item)\n"
        )
        assert _proto(src) == []

    def test_escape_through_call_is_not_a_leak(self) -> None:
        src = (
            "def stage(store: object, queue: object, sid: int) -> None:\n"
            "    item = store.kv.extract(sid)\n"
            "    queue.push(item)\n"
        )
        assert _proto(src) == []


class TestTerminalOps:
    def test_extract_after_wipe_flagged(self) -> None:
        src = (
            "def crash(store: object, sid: int) -> None:\n"
            "    store.kv.wipe_volatile()\n"
            "    item = store.kv.extract(sid)\n"
        )
        findings = _proto(src)
        assert any(f.key.startswith("after-terminal|") for f in findings)

    def test_restore_after_wipe_ok(self) -> None:
        src = (
            "def restart(store: object, sid: int) -> None:\n"
            "    store.kv.wipe_volatile()\n"
            "    store.kv.restore_offline()\n"
            "    item = store.kv.extract(sid)\n"
            "    store.kv.discard_stale(sid)\n"
        )
        assert _proto(src) == []

    def test_decommission_accounts_remaining_copies(self) -> None:
        src = (
            "def drain(store: object, sid: int) -> None:\n"
            "    item = store.kv.extract(sid)\n"
            "    store.kv.decommission()\n"
        )
        assert _proto(src) == []


class TestLimitsAndScope:
    def test_store_implementation_itself_exempt(self) -> None:
        src = (
            "class MiniStore:\n"
            "    def extract(self, sid: int) -> object | None:\n"
            "        return self.items.pop(sid, None)\n\n"
            "    def admit_migrated(self, item: object) -> None:\n"
            "        self.items[item.sid] = item\n\n"
            "    def decommission(self) -> None:\n"
            "        self.items.clear()\n\n"
            "    def helper(self, sid: int) -> None:\n"
            "        item = self.items.extract(sid)\n"
        )
        assert _proto(src) == []

    def test_path_budget_skips_function(self) -> None:
        branches = "".join(
            f"    if flags[{i}]:\n        store.kv.discard_stale({i})\n"
            for i in range(12)
        )
        src = (
            "def wide(store: object, flags: list, sid: int) -> None:\n"
            f"{branches}"
            "    item = store.kv.extract(sid)\n"
        )
        # 2**12 paths blows a budget of 16: the function is skipped, not
        # half-reported.
        assert _proto(src, max_paths=16) == []

    def test_suppression_applies(self) -> None:
        src = (
            "def lose(store: object, sid: int) -> None:\n"
            "    item = store.kv.extract(sid)"
            "  # repro-lint: allow=store-protocol (fixture: copy owned by caller)\n"
        )
        assert _proto(src) == []
