"""Suppressions, module-name inference, report plumbing."""

from pathlib import Path

from repro.lint import LintConfig, lint_paths, lint_source
from repro.lint.checker import module_name_for
from repro.lint.diagnostics import format_report


class TestSuppressions:
    def test_allow_with_justification_suppresses(self):
        source = (
            "import time\n"
            "t = time.time()  # repro-lint: allow=wall-clock (host-side metric only)\n"
        )
        assert lint_source(source, module="repro.sim.x") == []

    def test_allow_without_justification_does_not_suppress(self):
        source = (
            "import time\n"
            "t = time.time()  # repro-lint: allow=wall-clock\n"
        )
        diags = lint_source(source, module="repro.sim.x")
        # An unjustified allow is itself a finding AND fails to suppress.
        assert sorted(d.rule for d in diags) == ["bare-allow", "wall-clock"]

    def test_allow_only_covers_its_own_line(self):
        source = (
            "import time\n"
            "a = time.time()  # repro-lint: allow=wall-clock (timing the host)\n"
            "b = time.time()\n"
        )
        diags = lint_source(source, module="repro.sim.x")
        assert [d.rule for d in diags] == ["wall-clock"]
        assert diags[0].line == 3

    def test_allow_only_covers_named_rules(self):
        source = (
            "import time\n"
            "t = time.time() == 0.0  # repro-lint: allow=wall-clock (host metric)\n"
        )
        diags = lint_source(source, module="repro.engine.x")
        assert [d.rule for d in diags] == ["float-eq"]

    def test_allow_unknown_rule_is_a_finding(self):
        source = "x = 1  # repro-lint: allow=made-up-rule (because)\n"
        diags = lint_source(source, module="repro.sim.x")
        assert [d.rule for d in diags] == ["bare-allow"]
        assert "made-up-rule" in diags[0].message

    def test_multi_rule_allow(self):
        source = (
            "import time\n"
            "t = time.time() == 0.0"
            "  # repro-lint: allow=wall-clock,float-eq (fixture covers both)\n"
        )
        assert lint_source(source, module="repro.engine.x") == []


class TestModuleNames:
    def test_src_layout(self):
        path = Path("src/repro/store/attention_store.py")
        assert module_name_for(path) == "repro.store.attention_store"

    def test_package_init(self):
        assert module_name_for(Path("src/repro/sim/__init__.py")) == "repro.sim"

    def test_outside_repro(self):
        assert module_name_for(Path("scripts/helper.py")) == "helper"


class TestLintPaths:
    def test_walks_tree_and_reports_sorted(self, tmp_path):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "b.py").write_text("import time\nt = time.time()\n")
        (pkg / "a.py").write_text("import time\nt = time.time()\n")
        diags = lint_paths([tmp_path], config=LintConfig())
        assert [d.rule for d in diags] == ["wall-clock", "wall-clock"]
        assert diags[0].path < diags[1].path

    def test_syntax_error_is_reported_not_raised(self):
        diags = lint_source("def broken(:\n", module="repro.sim.x")
        assert [d.rule for d in diags] == ["syntax-error"]


class TestReport:
    def test_clean_report(self):
        assert format_report([]) == "repro-lint: clean"

    def test_report_has_locations_and_tally(self):
        source = "import time\nt = time.time()\n"
        diags = lint_source(source, path="mod.py", module="repro.sim.x")
        report = format_report(diags)
        assert "mod.py:2:" in report
        assert "[wall-clock]" in report
        assert "1 finding(s)" in report
