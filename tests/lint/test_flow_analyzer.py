"""End-to-end analyzer: golden fixtures, baseline ratchet, cache, CLI."""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.config import FlowOptions, LintConfig, load_config
from repro.lint.flow import analyze_paths
from repro.lint.flow.baseline import (
    BaselineGrowthError,
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lint.flow.cache import SummaryCache

FIXTURES = Path(__file__).parent / "fixtures" / "flow"
REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"


def _fixture_findings() -> list:
    result = analyze_paths([FIXTURES], LintConfig(), use_cache=False, root=FIXTURES)
    return result.findings


class TestGoldenFixtures:
    def test_every_seeded_bug_flagged_exactly_as_pinned(self) -> None:
        golden = json.loads((FIXTURES / "golden.json").read_text())
        actual = [
            {
                "file": Path(f.path).name,
                "line": f.line,
                "rule": f.rule,
                "scope": f.scope,
                "key": f.key,
            }
            for f in _fixture_findings()
        ]
        assert actual == golden["findings"]

    def test_good_variants_stay_silent(self) -> None:
        flagged_files = {Path(f.path).name for f in _fixture_findings()}
        for good in sorted(FIXTURES.glob("*good*.py")):
            assert good.name not in flagged_files
        assert "taint_suppressed_source.py" not in flagged_files
        assert "guarded_continuation.py" not in flagged_files


class TestTreeIsClean:
    def test_src_has_zero_unbaselined_findings(self) -> None:
        cfg = load_config(SRC)
        result = analyze_paths([SRC], cfg, use_cache=False, root=REPO)
        entries = load_baseline(REPO / cfg.flow.baseline)
        new, _, stale = apply_baseline(result.findings, entries, REPO)
        assert new == [], [f.to_diagnostic().format() for f in new]
        assert stale == []

    def test_seeded_bug_in_src_would_fail(self, tmp_path: Path) -> None:
        # The acceptance demo: copy src, introduce a fixture bug, and the
        # baseline-enforced run must go red.
        work = tmp_path / "src" / "repro"
        shutil.copytree(SRC, work)
        shutil.copy(REPO / "pyproject.toml", tmp_path / "pyproject.toml")
        shutil.copy(
            REPO / "lint-flow-baseline.json",
            tmp_path / "lint-flow-baseline.json",
        )
        bad = FIXTURES / "unguarded_continuation.py"
        (work / "engine" / "bad_continuation.py").write_text(bad.read_text())
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.lint",
                str(work),
                "--flow",
                "--no-cache",
            ],
            capture_output=True,
            text=True,
            cwd=tmp_path,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "epoch-guard" in proc.stdout


class TestBaselineRatchet:
    def test_round_trip_and_split(self, tmp_path: Path) -> None:
        findings = _fixture_findings()
        baseline = tmp_path / "baseline.json"
        import os

        os.environ["REPRO_LINT_BASELINE_GROW"] = "1"
        try:
            write_baseline(baseline, findings, FIXTURES)
        finally:
            del os.environ["REPRO_LINT_BASELINE_GROW"]
        entries = load_baseline(baseline)
        new, baselined, stale = apply_baseline(findings, entries, FIXTURES)
        assert new == [] and stale == []
        assert len(baselined) == len(findings)

    def test_write_refuses_growth_without_optin(
        self, tmp_path: Path, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        monkeypatch.delenv("REPRO_LINT_BASELINE_GROW", raising=False)
        findings = _fixture_findings()
        baseline = tmp_path / "baseline.json"
        with pytest.raises(BaselineGrowthError) as err:
            write_baseline(baseline, findings, FIXTURES)
        assert "refusing to grow" in str(err.value)

    def test_shrinking_is_always_allowed(
        self, tmp_path: Path, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        findings = _fixture_findings()
        baseline = tmp_path / "baseline.json"
        monkeypatch.setenv("REPRO_LINT_BASELINE_GROW", "1")
        write_baseline(baseline, findings, FIXTURES)
        monkeypatch.delenv("REPRO_LINT_BASELINE_GROW")
        kept, added = write_baseline(baseline, findings[:2], FIXTURES)
        assert added == 0 and kept == len(
            {fingerprint(f, FIXTURES) for f in findings[:2]}
        )

    def test_fingerprints_are_line_free(self) -> None:
        # Shifting a file by a blank line must not change any fingerprint.
        src = (FIXTURES / "extract_leak.py").read_text()
        shifted = "\n" + src
        from flow_helpers import analyze_sources

        base = analyze_sources({"extract_leak": src})
        moved = analyze_sources({"extract_leak": shifted})
        assert [
            (f.rule, f.scope, f.key) for f in base
        ] == [(f.rule, f.scope, f.key) for f in moved]
        assert [f.line for f in base] != [f.line for f in moved]


class TestCache:
    def test_cache_hit_after_cold_run(self, tmp_path: Path) -> None:
        cfg = LintConfig(
            flow=FlowOptions(cache=str(tmp_path / "flow.json"))
        )
        first = analyze_paths([FIXTURES], cfg, use_cache=True, root=tmp_path)
        assert first.limits["cache_misses"] > 0
        second = analyze_paths([FIXTURES], cfg, use_cache=True, root=tmp_path)
        assert second.limits["cache_misses"] == 0
        assert second.limits["cache_hits"] == first.limits["cache_misses"]
        assert [
            (f.rule, f.path, f.line, f.key) for f in second.findings
        ] == [(f.rule, f.path, f.line, f.key) for f in first.findings]

    def test_content_change_invalidates(self, tmp_path: Path) -> None:
        mod = tmp_path / "mod.py"
        mod.write_text(
            "def safe() -> int:\n    return 1\n"
        )
        cache_file = tmp_path / "cache" / "flow.json"
        cfg = LintConfig(flow=FlowOptions(cache=str(cache_file)))
        res = analyze_paths([mod], cfg, use_cache=True, root=tmp_path)
        assert res.findings == []
        mod.write_text(
            "import time\n\n\ndef unsafe() -> float:\n"
            "    return time.time()\n\n\ndef caller() -> float:\n"
            "    return unsafe()\n"
        )
        res2 = analyze_paths([mod], cfg, use_cache=True, root=tmp_path)
        assert [f.rule for f in res2.findings] == ["flow-wall-clock"]

    def test_corrupt_cache_ignored(self, tmp_path: Path) -> None:
        cache_file = tmp_path / "flow.json"
        cache_file.write_text("{not json")
        cfg = LintConfig(flow=FlowOptions(cache=str(cache_file)))
        cache = SummaryCache(cache_file, cfg)
        assert cache.files == {}


class TestOutputFormats:
    def test_json_format(self) -> None:
        from repro.lint.flow.output import findings_json

        diags = [f.to_diagnostic() for f in _fixture_findings()]
        payload = json.loads(findings_json(diags, baselined=[], limits={"x": 1}))
        assert payload["counts"]["new"] == len(diags)
        assert payload["limits"] == {"x": 1}
        assert all(not d["baselined"] for d in payload["findings"])

    def test_sarif_format(self) -> None:
        from repro.lint.flow.output import findings_sarif

        findings = _fixture_findings()
        diags = [f.to_diagnostic() for f in findings[1:]]
        base = [findings[0].to_diagnostic()]
        sarif = json.loads(findings_sarif(diags, baselined=base))
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        states = [r["baselineState"] for r in run["results"]]
        assert states.count("unchanged") == 1
        assert states.count("new") == len(diags)
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"epoch-guard", "store-protocol", "batch-race"} <= rule_ids


class TestCli:
    def _run(self, *argv: str, cwd: Path | None = None) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *argv],
            capture_output=True,
            text=True,
            cwd=cwd if cwd is not None else REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_flow_over_src_is_green(self) -> None:
        proc = self._run(str(SRC), "--flow", "--no-cache")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 new findings" in proc.stdout

    def test_flow_fixtures_red_with_sarif(self, tmp_path: Path) -> None:
        baseline = tmp_path / "empty-baseline.json"
        proc = self._run(
            str(FIXTURES),
            "--flow",
            "--no-cache",
            "--format",
            "sarif",
            "--baseline",
            str(baseline),
        )
        assert proc.returncode == 1
        sarif = json.loads(proc.stdout)
        assert sarif["runs"][0]["results"]

    def test_repro_cli_lint_flow_passthrough(self) -> None:
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "lint",
                str(SRC),
                "--flow",
                "--no-cache",
            ],
            capture_output=True,
            text=True,
            cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
