"""[tool.repro-lint] parsing and default synchronisation."""

from pathlib import Path

import pytest

from repro.lint import LintConfig
from repro.lint.config import config_from_mapping, find_pyproject, load_config

try:
    import tomllib
except ImportError:  # Python 3.10
    tomllib = None

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestMapping:
    def test_empty_mapping_is_defaults(self):
        assert config_from_mapping({}) == LintConfig()

    def test_overrides(self):
        cfg = config_from_mapping(
            {
                "disable": ["float-eq"],
                "hot-path-packages": ["repro.sim"],
                "store-migration-api": ["extract"],
            }
        )
        assert cfg.disable == frozenset({"float-eq"})
        assert cfg.hot_path_packages == ("repro.sim",)
        assert cfg.store_migration_api == frozenset({"extract"})

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError, match="typo-key"):
            config_from_mapping({"typo-key": []})

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            config_from_mapping({"disable": "float-eq"})


class TestScope:
    def test_in_scope_exact_and_nested(self):
        cfg = LintConfig()
        assert cfg.in_scope("repro.sim", cfg.hot_path_packages)
        assert cfg.in_scope("repro.sim.loop", cfg.hot_path_packages)
        assert not cfg.in_scope("repro.simulate", cfg.hot_path_packages)
        assert not cfg.in_scope("repro.workload.trace", cfg.hot_path_packages)


@pytest.mark.skipif(tomllib is None, reason="tomllib requires Python 3.11+")
class TestPyproject:
    def test_find_pyproject_from_nested_path(self):
        found = find_pyproject(REPO_ROOT / "src" / "repro" / "sim")
        assert found == REPO_ROOT / "pyproject.toml"

    def test_checked_in_table_matches_builtin_defaults(self):
        """The pyproject table and the code defaults must agree, so 3.10
        (which cannot read pyproject) lints identically to 3.11+."""
        assert load_config(REPO_ROOT / "src") == LintConfig()

    def test_missing_pyproject_falls_back_to_defaults(self, tmp_path):
        assert load_config(tmp_path) == LintConfig()
