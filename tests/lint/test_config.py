"""[tool.repro-lint] parsing and default synchronisation."""

from pathlib import Path

import pytest

from repro.lint import LintConfig
from repro.lint.config import config_from_mapping, find_pyproject, load_config

try:
    import tomllib
except ImportError:  # Python 3.10
    tomllib = None

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestMapping:
    def test_empty_mapping_is_defaults(self):
        assert config_from_mapping({}) == LintConfig()

    def test_overrides(self):
        cfg = config_from_mapping(
            {
                "disable": ["float-eq"],
                "hot-path-packages": ["repro.sim"],
                "store-migration-api": ["extract"],
            }
        )
        assert cfg.disable == frozenset({"float-eq"})
        assert cfg.hot_path_packages == ("repro.sim",)
        assert cfg.store_migration_api == frozenset({"extract"})

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError, match="typo-key"):
            config_from_mapping({"typo-key": []})

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            config_from_mapping({"disable": "float-eq"})

    def test_unknown_rule_in_disable_named_loudly(self):
        """A typo in ``disable`` must fail naming the offender, not leave
        the misspelled rule silently enforcing."""
        with pytest.raises(KeyError, match="flaot-eq"):
            config_from_mapping({"disable": ["float-eq", "flaot-eq"]})

    def test_flow_rule_names_are_disableable(self):
        cfg = config_from_mapping({"disable": ["batch-race", "epoch-guard"]})
        assert cfg.disable == frozenset({"batch-race", "epoch-guard"})


class TestRuleOptions:
    def test_valid_rule_options(self):
        cfg = config_from_mapping(
            {"rule-options": {"batch-race": {"ignore-attrs": ["engine.stats"]}}}
        )
        assert cfg.options_for("batch-race") == {
            "ignore-attrs": ["engine.stats"]
        }
        assert cfg.options_for("epoch-guard") == {}

    def test_unknown_rule_name_rejected(self):
        with pytest.raises(KeyError, match="no-such-rule"):
            config_from_mapping({"rule-options": {"no-such-rule": {}}})

    def test_unknown_option_key_rejected(self):
        with pytest.raises(KeyError, match="max-pahts"):
            config_from_mapping(
                {"rule-options": {"store-protocol": {"max-pahts": 5}}}
            )

    def test_rule_without_declared_options_accepts_none(self):
        with pytest.raises(KeyError, match="accepts no options"):
            config_from_mapping({"rule-options": {"wall-clock": {"x": 1}}})

    def test_option_table_must_be_table(self):
        with pytest.raises(TypeError):
            config_from_mapping({"rule-options": {"batch-race": "nope"}})


class TestFlowOptions:
    def test_defaults(self):
        cfg = config_from_mapping({})
        assert cfg.flow.baseline == "lint-flow-baseline.json"
        assert cfg.flow.max_paths == 256

    def test_overrides(self):
        cfg = config_from_mapping(
            {"flow": {"baseline": "b.json", "max-paths": 8, "cache": ""}}
        )
        assert cfg.flow.baseline == "b.json"
        assert cfg.flow.max_paths == 8
        assert cfg.flow.cache is None

    def test_unknown_flow_key_rejected(self):
        with pytest.raises(KeyError, match="cachepath"):
            config_from_mapping({"flow": {"cachepath": "x"}})

    def test_max_paths_must_be_positive_int(self):
        with pytest.raises(TypeError):
            config_from_mapping({"flow": {"max-paths": 0}})
        with pytest.raises(TypeError):
            config_from_mapping({"flow": {"max-paths": True}})


class TestScope:
    def test_in_scope_exact_and_nested(self):
        cfg = LintConfig()
        assert cfg.in_scope("repro.sim", cfg.hot_path_packages)
        assert cfg.in_scope("repro.sim.loop", cfg.hot_path_packages)
        assert not cfg.in_scope("repro.simulate", cfg.hot_path_packages)
        assert not cfg.in_scope("repro.workload.trace", cfg.hot_path_packages)


@pytest.mark.skipif(tomllib is None, reason="tomllib requires Python 3.11+")
class TestPyproject:
    def test_find_pyproject_from_nested_path(self):
        found = find_pyproject(REPO_ROOT / "src" / "repro" / "sim")
        assert found == REPO_ROOT / "pyproject.toml"

    def test_checked_in_table_matches_builtin_defaults(self):
        """The pyproject table and the code defaults must agree, so 3.10
        (which cannot read pyproject) lints identically to 3.11+."""
        assert load_config(REPO_ROOT / "src") == LintConfig()

    def test_missing_pyproject_falls_back_to_defaults(self, tmp_path):
        assert load_config(tmp_path) == LintConfig()
