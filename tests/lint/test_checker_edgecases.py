"""Checker edge cases: odd files, spans, suppressions, audit merging."""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths, lint_source
from repro.lint.checker import (
    Suppressions,
    lint_module,
    read_python_source,
    statement_spans,
    unused_suppression_report,
)


class TestOddFiles:
    def test_empty_file_is_clean(self) -> None:
        assert lint_source("", path="empty.py", module="repro.x") == []

    def test_whitespace_only_file_is_clean(self) -> None:
        assert lint_source("\n\n   \n", path="w.py", module="repro.x") == []

    def test_syntax_error_is_a_diagnostic_not_a_crash(self) -> None:
        diags = lint_source("def broken(:\n", path="bad.py", module="repro.x")
        assert len(diags) == 1
        assert diags[0].rule == "syntax-error"
        assert diags[0].path == "bad.py"

    def test_syntax_error_returns_no_suppression_state(self) -> None:
        _, suppressions = lint_module("def broken(:\n", path="bad.py")
        assert suppressions is None

    def test_bom_file_parses(self, tmp_path: Path) -> None:
        target = tmp_path / "bom.py"
        target.write_bytes(b"\xef\xbb\xbfx = 1\n")
        assert read_python_source(target) == "x = 1\n"
        assert lint_paths([target]) == []

    def test_coding_declaration_parses(self, tmp_path: Path) -> None:
        target = tmp_path / "enc.py"
        target.write_text("# -*- coding: utf-8 -*-\nname = 'é'\n")
        assert lint_paths([target]) == []


class TestStatementSpans:
    def test_multiline_statement_spans_all_lines(self) -> None:
        import ast

        src = "value = (\n    1\n    + 2\n)\n"
        spans = statement_spans(ast.parse(src))
        assert spans[1] == (1, 4)
        assert spans[4] == (1, 4)

    def test_decorated_def_header_includes_decorators(self) -> None:
        import ast

        src = (
            "@decorator(\n    arg=1,\n)\ndef fn() -> None:\n    body = 1\n"
        )
        spans = statement_spans(ast.parse(src))
        # Decorator lines and the def line share one span...
        assert spans[1] == spans[4]
        # ...which stops before the body.
        assert spans[5] == (5, 5)


class TestSuppressionsOnCompoundStatements:
    def test_allow_on_decorator_line_covers_the_def(self) -> None:
        src = (
            "import time\n"
            "from typing import Any, Callable\n"
            "\n"
            "\n"
            "def deco(fn: Callable[[], float]) -> Callable[[], float]:\n"
            "    return fn\n"
            "\n"
            "\n"
            "@deco  # repro-lint: allow=wall-clock (fixture: profiling decorator)\n"
            "def stamped() -> float:\n"
            "    return 1.0\n"
        )
        # The finding anchors on the def/decorator header span; an allow
        # anywhere on that span must match.
        sup = Suppressions("f.py", src, __import__("ast").parse(src))
        assert sup.allows(10, "wall-clock")

    def test_allow_on_continuation_line_of_multiline_call(self) -> None:
        src = (
            "import time\n"
            "\n"
            "deadline = time.time() + max(\n"
            "    1.0,\n"
            "    2.0,  # repro-lint: allow=wall-clock (fixture: wall deadline)\n"
            ")\n"
        )
        diags = lint_source(src, path="f.py", module="repro.sim.x")
        assert diags == []

    def test_unjustified_allow_is_bare_allow_finding(self) -> None:
        src = "import time\nt = time.time()  # repro-lint: allow=wall-clock\n"
        diags = lint_source(src, path="f.py", module="repro.sim.x")
        rules = sorted(d.rule for d in diags)
        assert rules == ["bare-allow", "wall-clock"]

    def test_unknown_rule_name_in_allow_reported(self) -> None:
        src = "x = 1  # repro-lint: allow=no-such-rule (why)\n"
        diags = lint_source(src, path="f.py", module="repro.x")
        assert [d.rule for d in diags] == ["bare-allow"]
        assert "no-such-rule" in diags[0].message


class TestUnusedSuppressionAudit:
    def test_dead_allow_reported(self) -> None:
        src = "x = 1  # repro-lint: allow=wall-clock (stale justification)\n"
        import ast

        sup = Suppressions("f.py", src, ast.parse(src))
        report = unused_suppression_report([{"f.py": sup}])
        assert [d.rule for d in report] == ["unused-suppression"]
        assert "wall-clock" in report[0].message

    def test_live_allow_not_reported(self) -> None:
        src = (
            "import time\n"
            "t = time.time()  # repro-lint: allow=wall-clock (fixture)\n"
        )
        diags, sup = lint_module(src, path="f.py", module="repro.sim.x")
        assert diags == [] and sup is not None
        assert unused_suppression_report([{"f.py": sup}]) == []

    def test_usage_merges_across_layers(self) -> None:
        # A flow-rule allow looks dead to the per-file layer; crediting
        # usage from the flow layer keeps it alive.
        import ast

        src = "x = f()  # repro-lint: allow=flow-wall-clock (boundary)\n"
        tree = ast.parse(src)
        per_file = Suppressions("f.py", src, tree)
        flow_layer = Suppressions("f.py", src, tree)
        assert unused_suppression_report(
            [{"f.py": per_file}, {"f.py": flow_layer}]
        ) != []
        flow_layer.allows(1, "flow-wall-clock")
        assert (
            unused_suppression_report([{"f.py": per_file}, {"f.py": flow_layer}])
            == []
        )
