"""Good/bad fixture pairs for every lint rule."""

from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_source

FIXTURES = Path(__file__).parent / "fixtures"

# (rule, bad fixture, good fixture, module scope to lint under)
PAIRS = [
    ("wall-clock", "bad_wall_clock.py", "good_wall_clock.py", "repro.sim.fixture"),
    (
        "unseeded-random",
        "bad_unseeded_random.py",
        "good_seeded_random.py",
        "repro.workload.fixture",
    ),
    ("hash-order", "bad_hash_order.py", "good_hash_order.py", "repro.runner.fixture"),
    ("set-order", "bad_set_order.py", "good_set_order.py", "repro.store.fixture"),
    ("float-eq", "bad_float_eq.py", "good_float_eq.py", "repro.engine.fixture"),
    ("slots-required", "bad_slots.py", "good_slots.py", "repro.engine.fixture"),
    (
        "cluster-isolation",
        "bad_cluster_isolation.py",
        "good_cluster_isolation.py",
        "repro.cluster.fixture",
    ),
    (
        "untyped-def",
        "bad_untyped_def.py",
        "good_untyped_def.py",
        "repro.engine.fixture",
    ),
]


def lint_fixture(filename: str, module: str) -> list:
    source = (FIXTURES / filename).read_text(encoding="utf-8")
    return lint_source(source, path=filename, module=module, config=LintConfig())


@pytest.mark.parametrize(
    "rule,bad,good,module", PAIRS, ids=[p[0] for p in PAIRS]
)
class TestFixturePairs:
    def test_bad_fixture_flagged(self, rule, bad, good, module):
        hits = [d for d in lint_fixture(bad, module) if d.rule == rule]
        assert hits, f"{bad} should trigger {rule}"

    def test_good_fixture_clean(self, rule, bad, good, module):
        hits = [d for d in lint_fixture(good, module) if d.rule == rule]
        assert hits == [], f"{good} unexpectedly triggers {rule}: {hits}"


class TestFindingCounts:
    """Pin the exact number of hits so rules neither over- nor under-fire."""

    def test_wall_clock_hits(self):
        hits = [
            d
            for d in lint_fixture("bad_wall_clock.py", "repro.sim.fixture")
            if d.rule == "wall-clock"
        ]
        assert len(hits) == 5

    def test_unseeded_random_hits(self):
        hits = [
            d
            for d in lint_fixture(
                "bad_unseeded_random.py", "repro.workload.fixture"
            )
            if d.rule == "unseeded-random"
        ]
        assert len(hits) == 8

    def test_float_eq_hits(self):
        hits = [
            d
            for d in lint_fixture("bad_float_eq.py", "repro.engine.fixture")
            if d.rule == "float-eq"
        ]
        assert len(hits) == 3

    def test_slots_hits_name_the_class(self):
        hits = [
            d
            for d in lint_fixture("bad_slots.py", "repro.engine.fixture")
            if d.rule == "slots-required"
        ]
        assert len(hits) == 3
        assert any("PlainRecord" in d.message for d in hits)

    def test_cluster_isolation_hits(self):
        hits = [
            d
            for d in lint_fixture(
                "bad_cluster_isolation.py", "repro.cluster.fixture"
            )
            if d.rule == "cluster-isolation"
        ]
        assert len(hits) == 4


class TestScoping:
    """Package-scoped rules must not fire outside their packages."""

    def test_float_eq_ignored_outside_hot_path(self):
        hits = [
            d
            for d in lint_fixture("bad_float_eq.py", "repro.analysis.fixture")
            if d.rule == "float-eq"
        ]
        assert hits == []

    def test_slots_ignored_outside_scope(self):
        hits = [
            d
            for d in lint_fixture("bad_slots.py", "repro.workload.fixture")
            if d.rule == "slots-required"
        ]
        assert hits == []

    def test_isolation_ignored_outside_cluster(self):
        hits = [
            d
            for d in lint_fixture(
                "bad_cluster_isolation.py", "repro.engine.fixture"
            )
            if d.rule == "cluster-isolation"
        ]
        assert hits == []

    def test_determinism_rules_apply_everywhere(self):
        hits = [
            d
            for d in lint_fixture("bad_wall_clock.py", "some.other.module")
            if d.rule == "wall-clock"
        ]
        assert hits

    def test_disable_turns_a_rule_off(self):
        source = (FIXTURES / "bad_wall_clock.py").read_text(encoding="utf-8")
        config = LintConfig(disable=frozenset({"wall-clock"}))
        hits = [
            d
            for d in lint_source(
                source, module="repro.sim.fixture", config=config
            )
            if d.rule == "wall-clock"
        ]
        assert hits == []
