"""Property tests: generated synthetic modules are classified correctly.

The generators mirror the analyzer's seeded bug patterns — epoch-guard
discipline and the store's exactly-one-copy protocol — and build small
random modules whose ground truth is known by construction.  The
property under test is *no false negatives on the seeded patterns* (and
no false positives on the corresponding safe constructions).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from flow_helpers import analyze_sources

# ---------------------------------------------------------------------------
# Epoch-guard generator
# ---------------------------------------------------------------------------

_MUTATIONS = (
    "engine.fire({arg})",
    "engine.retire({arg})",
    "engine.counter = {arg}",
)


@st.composite
def continuation_module(draw: st.DrawFn) -> tuple[str, bool]:
    """(module source, expects_finding) for one continuation class."""
    guard = draw(st.sampled_from(["eq", "neq-return", "none"]))
    n_mutations = draw(st.integers(min_value=1, max_value=3))
    alias = draw(st.booleans())
    receiver = "engine" if alias else "self.engine"
    mutations = [
        "        "
        + ("    " if guard == "eq" else "")
        + _MUTATIONS[i % len(_MUTATIONS)].format(arg=i).replace(
            "engine.", f"{receiver}."
        )
        for i in range(n_mutations)
    ]
    lines = [
        "class Generated:",
        '    __slots__ = ("engine", "epoch")',
        "",
        "    def __init__(self, engine: object, epoch: int) -> None:",
        "        self.engine = engine",
        "        self.epoch = epoch",
        "",
        "    def __call__(self) -> None:",
    ]
    if alias:
        lines.append("        engine = self.engine")
    if guard == "eq":
        lines.append(f"        if {receiver}._epoch == self.epoch:")
    elif guard == "neq-return":
        lines.append(f"        if {receiver}._epoch != self.epoch:")
        lines.append("            return")
    lines.extend(mutations)
    lines.append("")
    return "\n".join(lines), guard == "none"


@given(continuation_module())
@settings(max_examples=60, deadline=None)
def test_epoch_guard_classification(case: tuple[str, bool]) -> None:
    source, expects_finding = case
    findings = [
        f
        for f in analyze_sources({"gen": source})
        if f.rule == "epoch-guard"
    ]
    if expects_finding:
        assert findings, source
    else:
        assert not findings, source


# ---------------------------------------------------------------------------
# Store-protocol generator
# ---------------------------------------------------------------------------


@st.composite
def protocol_module(draw: st.DrawFn) -> tuple[str, set[str]]:
    """(module source, expected finding kinds) for one migration function."""
    expected: set[str] = set()
    body: list[str] = []
    body.append("    item = store.kv.extract(sid)")
    double = draw(st.booleans())
    if double:
        body.append("    item2 = store.kv.extract(sid)")
        expected.add("use-after-extract")
    outcome = draw(
        st.sampled_from(["admit", "discard", "loss", "escape", "leak"])
    )
    if outcome == "admit":
        body.append("    dest.kv.admit_migrated(item)")
    elif outcome == "discard":
        body.append("    store.kv.discard_stale(sid)")
    elif outcome == "loss":
        body.append("    store.kv.record_migration_loss()")
    elif outcome == "escape":
        body.append("    queue.push(item)")
    else:
        expected.add("unaccounted")
    if double:
        # The second copy follows the same fate as the first only in the
        # admit/escape cases; otherwise discard/loss/decommission already
        # account for every copy, and a leak leaks both.
        if outcome == "admit":
            body.append("    dest.kv.admit_migrated(item2)")
        elif outcome == "escape":
            body.append("    queue.push(item2)")
        elif outcome == "leak":
            pass  # both copies leak; one finding per extract site
    src = (
        "def generated(store: object, dest: object, queue: object, sid: int)"
        " -> None:\n" + "\n".join(body) + "\n"
    )
    return src, expected


@given(protocol_module())
@settings(max_examples=60, deadline=None)
def test_protocol_classification(case: tuple[str, set[str]]) -> None:
    source, expected = case
    findings = [
        f
        for f in analyze_sources({"gen": source})
        if f.rule == "store-protocol"
    ]
    kinds = {f.key.split("|", 1)[0] for f in findings}
    # No false negatives on the seeded kinds...
    assert expected <= kinds, (source, sorted(kinds))
    # ...and no invented kinds beyond the seeded ones.
    assert kinds <= expected, (source, sorted(kinds))


# ---------------------------------------------------------------------------
# Batch-race generator
# ---------------------------------------------------------------------------


@st.composite
def handler_pair_module(draw: st.DrawFn) -> tuple[str, bool]:
    attrs = ["queue", "stats", "pending"]
    a_attr = draw(st.sampled_from(attrs))
    b_attr = draw(st.sampled_from(attrs))
    a_writes = draw(st.booleans())
    b_writes = draw(st.booleans())

    def handler(name: str, attr: str, writes: bool) -> str:
        op = (
            f"        self.engine.{attr} = 1"
            if writes
            else f"        value = self.engine.{attr}"
        )
        return (
            f"class {name}:\n"
            '    __slots__ = ("engine",)\n\n'
            "    def __init__(self, engine: object) -> None:\n"
            "        self.engine = engine\n\n"
            "    def __call__(self) -> None:\n"
            f"{op}\n"
        )

    source = handler("A", a_attr, a_writes) + "\n\n" + handler(
        "B", b_attr, b_writes
    )
    conflict = a_attr == b_attr and (a_writes or b_writes)
    return source, conflict


@given(handler_pair_module())
@settings(max_examples=60, deadline=None)
def test_batch_race_classification(case: tuple[str, bool]) -> None:
    source, conflict = case
    findings = [
        f
        for f in analyze_sources({"gen": source})
        if f.rule == "batch-race"
    ]
    if conflict:
        assert findings, source
    else:
        assert not findings, source
