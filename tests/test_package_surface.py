"""The public API surface: every exported name resolves and is documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.cluster",
    "repro.engine",
    "repro.faults",
    "repro.hardware",
    "repro.model",
    "repro.obs",
    "repro.sim",
    "repro.store",
    "repro.workload",
]


@pytest.mark.parametrize("package", PACKAGES)
class TestPublicSurface:
    def test_all_exports_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), package
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name}"

    def test_all_is_sorted(self, package):
        module = importlib.import_module(package)
        assert list(module.__all__) == sorted(module.__all__), package

    def test_module_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and module.__doc__.strip(), package


class TestVersion:
    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2


class TestPublicClassesDocumented:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_exported_classes_have_docstrings(self, package):
        module = importlib.import_module(package)
        for name in module.__all__:
            obj = getattr(module, name)
            if isinstance(obj, type):
                assert obj.__doc__, f"{package}.{name} lacks a docstring"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_exported_functions_have_docstrings(self, package):
        module = importlib.import_module(package)
        for name in module.__all__:
            obj = getattr(module, name)
            if callable(obj) and not isinstance(obj, type):
                assert obj.__doc__, f"{package}.{name} lacks a docstring"
