"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_workload_args(self):
        args = build_parser().parse_args(
            ["workload", "--sessions", "10", "--out", "t.json"]
        )
        assert args.command == "workload"
        assert args.sessions == 10

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.mode == "ca"
        assert args.model == "llama-13b"

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--model", "gpt-99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "llama-13b" in out
        assert "falcon-40b" in out

    def test_workload_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert main(
            ["workload", "--sessions", "12", "--out", str(out_file)]
        ) == 0
        assert out_file.exists()
        assert "12 sessions" in capsys.readouterr().out

    def test_run_on_saved_trace(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        main(["workload", "--sessions", "10", "--out", str(out_file)])
        assert main(
            [
                "run",
                "--trace", str(out_file),
                "--model", "llama-13b",
                "--batch-size", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "cache hit rate" in out
        assert "mean TTFT" in out

    def test_run_re_mode(self, capsys):
        assert main(
            ["run", "--sessions", "8", "--mode", "re", "--batch-size", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "[re]" in out

    def test_run_with_ablation_flags(self, capsys):
        assert main(
            [
                "run", "--sessions", "8", "--batch-size", "4",
                "--no-prefetch", "--no-preload", "--sync-save",
                "--policy", "lru",
            ]
        ) == 0
        assert "store:" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(
            ["compare", "--sessions", "10", "--batch-size", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "CachedAttention" in out
        assert "cost saving" in out

    def test_capacity(self, capsys):
        assert main(
            ["capacity", "--sessions", "20", "--ttl", "600"]
        ) == 0
        out = capsys.readouterr().out
        assert "CCpUT" in out
        assert "DSpUT" in out
